"""Deprecated access to the Oahu case-study geography.

.. deprecated:: 1.5.0
    Import these names from :mod:`repro.geo` or, better, resolve the
    Oahu bundle through the scenario catalog::

        from repro.scenarios import get_region

        oahu = get_region("oahu")
        catalog = oahu.catalog()       # was build_oahu_catalog()
        region = oahu.coastal()        # was build_oahu_region()
        terrain = oahu.terrain()       # was build_oahu_terrain()

    Module-level access through ``repro.geo.oahu`` emits a
    :class:`DeprecationWarning` and will be removed in 2.0.0.  See
    ``docs/api_guide.md`` for the full migration table.

The data itself lives in :mod:`repro.geo._oahu_data`; this module is a
thin PEP 562 shim that forwards attribute access with a warning.
"""

from __future__ import annotations

from typing import Any

from repro._deprecation import warn_deprecated
from repro.geo import _oahu_data

_FORWARDED = (
    "HONOLULU_CC",
    "WAIAU_CC",
    "KAHE_CC",
    "DRFORTRESS",
    "ALOHANAP",
    "OahuCaseStudy",
    "build_oahu_region",
    "build_oahu_terrain",
    "build_oahu_catalog",
    "oahu_case_study",
)

__all__ = list(_FORWARDED)


def __getattr__(name: str) -> Any:
    if name in _FORWARDED:
        # The message (and the removal release it names) comes from the
        # shared deprecation registry, so the runway test covers it.
        warn_deprecated("repro.geo.oahu", detail=name)
        return getattr(_oahu_data, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
