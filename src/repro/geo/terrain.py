"""Synthetic terrain (digital elevation) models.

The paper's inundation analysis needs ground elevation at asset locations
and along the near-shore strip onto which the water surface elevation is
extended.  Real DEMs are not available offline, so we provide a synthetic
terrain substrate composed of:

* a coastal plain whose elevation rises with distance from the shoreline,
  and
* a set of Gaussian mountain ridges (Oahu has two: the Waianae range in
  the west and the Koolau range in the east).

Asset catalog entries may also pin an exact elevation (used for the case
study's control sites) independent of the interpolated terrain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.geo.coords import GeoPoint, LocalProjection
from repro.geo.region import CoastalRegion


@dataclass(frozen=True)
class Ridge:
    """A Gaussian mountain ridge between two end points.

    Elevation contribution at a point is ``height_m`` scaled by a Gaussian
    falloff of the distance to the ridge axis with scale ``width_km``.
    """

    start: GeoPoint
    end: GeoPoint
    height_m: float
    width_km: float

    def __post_init__(self) -> None:
        if self.height_m <= 0 or self.width_km <= 0:
            raise TopologyError("ridge height and width must be positive")

    def elevation_at(self, p: GeoPoint) -> float:
        proj = LocalProjection(self.start)
        px, py = proj.to_xy(p)
        ex, ey = proj.to_xy(self.end)
        seg_len_sq = ex * ex + ey * ey
        if seg_len_sq == 0.0:
            d = math.hypot(px, py)
        else:
            t = max(0.0, min(1.0, (px * ex + py * ey) / seg_len_sq))
            d = math.hypot(px - t * ex, py - t * ey)
        return self.height_m * math.exp(-0.5 * (d / self.width_km) ** 2)


@dataclass(frozen=True)
class TerrainModel:
    """Synthetic DEM: coastal plain slope plus mountain ridges.

    ``plain_slope_m_per_km`` is the rate at which the coastal plain rises
    inland from the shoreline; points offshore (outside the region ring)
    have elevation 0.
    """

    region: CoastalRegion
    ridges: tuple[Ridge, ...] = ()
    plain_slope_m_per_km: float = 4.0
    shoreline_elevation_m: float = 1.0

    def elevation_at(self, p: GeoPoint) -> float:
        """Ground elevation in metres above mean sea level at ``p``."""
        if not self.region.contains(p):
            return 0.0
        d_shore = self.region.distance_to_shore_km(p)
        elev = self.shoreline_elevation_m + self.plain_slope_m_per_km * d_shore
        for ridge in self.ridges:
            elev += ridge.elevation_at(p)
        return elev
