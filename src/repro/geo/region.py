"""Coastal regions: a named closed coastline with segment metadata.

A :class:`CoastalRegion` is the geographic substrate consumed by the
hurricane surge model.  It is a closed polygon of shoreline vertices
partitioned into named *segments* (e.g. "south-shore"), each carrying a
shelf factor that encodes how strongly the local bathymetry amplifies
wind-driven surge (broad shallow shelves amplify; steep drop-offs do not).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.geo.coords import GeoPoint, LocalProjection, segment_distance_km


@dataclass(frozen=True)
class ShorelineSegment:
    """A contiguous run of coastline vertices with shared surge behaviour.

    ``shelf_factor`` scales wind-setup surge locally: 1.0 is a typical open
    coast, >1 a shallow funnel-shaped embayment (harbours), <1 a steep
    shelf that sheds surge.

    ``onshore_bearing_override`` fixes the onshore forcing direction for
    the whole segment (compass bearing the surge-driving wind must blow
    toward).  Open coast segments leave it ``None`` and use the local edge
    perpendicular; embayments like Pearl Harbor set it to the bay axis,
    because surge inside a bay is driven by wind through its mouth, not by
    the zigzag orientation of the inner shoreline.
    """

    name: str
    vertices: tuple[GeoPoint, ...]
    shelf_factor: float = 1.0
    onshore_bearing_override: float | None = None

    def __post_init__(self) -> None:
        if len(self.vertices) < 2:
            raise TopologyError(f"segment {self.name!r} needs at least 2 vertices")
        if self.shelf_factor <= 0.0:
            raise TopologyError(f"segment {self.name!r} shelf factor must be positive")
        if self.onshore_bearing_override is not None and not (
            0.0 <= self.onshore_bearing_override < 360.0
        ):
            raise TopologyError(
                f"segment {self.name!r} onshore bearing must be in [0, 360)"
            )


@dataclass(frozen=True)
class CoastalRegion:
    """A named island / coastal region assembled from shoreline segments.

    Segments are ordered and chained: the last vertex of segment *i* should
    equal (or be adjacent to) the first vertex of segment *i+1*; the overall
    chain is treated as a closed ring.
    """

    name: str
    segments: tuple[ShorelineSegment, ...]
    centroid: GeoPoint = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.segments:
            raise TopologyError(f"region {self.name!r} has no shoreline segments")
        if self.centroid is None:
            lats = [v.lat for seg in self.segments for v in seg.vertices]
            lons = [v.lon for seg in self.segments for v in seg.vertices]
            object.__setattr__(
                self, "centroid", GeoPoint(sum(lats) / len(lats), sum(lons) / len(lons))
            )

    def segment(self, name: str) -> ShorelineSegment:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise TopologyError(f"region {self.name!r} has no segment named {name!r}")

    def all_vertices(self) -> list[GeoPoint]:
        return [v for seg in self.segments for v in seg.vertices]

    def distance_to_shore_km(self, p: GeoPoint) -> float:
        """Distance from ``p`` to the nearest shoreline segment edge."""
        best = math.inf
        for seg in self.segments:
            vs = seg.vertices
            for a, b in zip(vs, vs[1:]):
                best = min(best, segment_distance_km(p, a, b))
        return best

    def nearest_segment(self, p: GeoPoint) -> ShorelineSegment:
        """The shoreline segment whose edges pass closest to ``p``."""
        best_seg = self.segments[0]
        best = math.inf
        for seg in self.segments:
            vs = seg.vertices
            for a, b in zip(vs, vs[1:]):
                d = segment_distance_km(p, a, b)
                if d < best:
                    best = d
                    best_seg = seg
        return best_seg

    def contains(self, p: GeoPoint) -> bool:
        """Point-in-polygon test against the closed shoreline ring.

        Uses the even-odd rule in a local tangent plane centred on the
        region centroid.
        """
        proj = LocalProjection(self.centroid)
        px, py = proj.to_xy(p)
        ring = [proj.to_xy(v) for v in self.all_vertices()]
        inside = False
        n = len(ring)
        for i in range(n):
            x1, y1 = ring[i]
            x2, y2 = ring[(i + 1) % n]
            if (y1 > py) != (y2 > py):
                x_cross = x1 + (py - y1) * (x2 - x1) / (y2 - y1)
                if px < x_cross:
                    inside = not inside
        return inside
