"""Content fingerprints for geography objects.

Ensemble cache keys must cover the geography a hazard acts on, not just
the hazard's scenario parameters: two regions can share an identical
storm specification yet produce entirely different inundation fields.
These helpers reduce :class:`~repro.geo.region.CoastalRegion` and
:class:`~repro.geo.catalog.AssetCatalog` to canonical JSON-able payloads
and hash them, so generators can fold "which coastline, which assets"
into their ``cache_key``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.geo.catalog import AssetCatalog
from repro.geo.region import CoastalRegion

__all__ = [
    "catalog_fingerprint",
    "region_fingerprint",
    "geo_content_key",
]


def region_fingerprint(region: CoastalRegion) -> dict[str, Any]:
    """Canonical payload capturing every surge-relevant region field."""
    return {
        "name": region.name,
        "segments": [
            {
                "name": seg.name,
                "vertices": [[v.lat, v.lon] for v in seg.vertices],
                "shelf_factor": seg.shelf_factor,
                "onshore_bearing_override": seg.onshore_bearing_override,
            }
            for seg in region.segments
        ],
    }


def catalog_fingerprint(catalog: AssetCatalog) -> dict[str, Any]:
    """Canonical payload capturing every hazard-relevant asset field."""
    return {
        "region_name": catalog.region_name,
        "assets": [
            {
                "name": rec.name,
                "role": rec.role.value,
                "location": [rec.location.lat, rec.location.lon],
                "elevation_m": rec.elevation_m,
            }
            for rec in catalog
        ],
    }


def geo_content_key(
    catalog: AssetCatalog, region: CoastalRegion | None = None
) -> str:
    """Short content hash over a catalog (and optional coastline)."""
    payload: dict[str, Any] = {"catalog": catalog_fingerprint(catalog)}
    if region is not None:
        payload["region"] = region_fingerprint(region)
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )
    return digest.hexdigest()[:32]
