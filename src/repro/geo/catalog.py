"""Generic power-asset catalogs: the geospatial SCADA topology input.

The analysis framework (paper Fig. 5) takes a *geospatial SCADA topology*
as input: the set of power assets (control centers, data centers, power
plants, substations) with their locations and ground elevations.  This
module defines the region-agnostic catalog types; :mod:`repro.geo._oahu_data`
instantiates them for the case study.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import TopologyError
from repro.geo.coords import GeoPoint


class AssetRole(enum.Enum):
    """The function an asset serves in the power / SCADA infrastructure."""

    CONTROL_CENTER = "control_center"
    DATA_CENTER = "data_center"
    POWER_PLANT = "power_plant"
    SUBSTATION = "substation"

    @property
    def is_control_site(self) -> bool:
        """Whether assets of this role can host SCADA master replicas."""
        return self in (AssetRole.CONTROL_CENTER, AssetRole.DATA_CENTER)


@dataclass(frozen=True)
class AssetRecord:
    """A single power asset tracked by the inundation analysis.

    ``elevation_m`` is the ground elevation of the asset's critical
    equipment pad above mean sea level.  The paper assumes an asset fails
    when peak inundation at its location exceeds 0.5 m (typical switch
    height in plants and substations).
    """

    name: str
    role: AssetRole
    location: GeoPoint
    elevation_m: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("asset name must be non-empty")
        if self.elevation_m < 0.0:
            raise TopologyError(f"asset {self.name!r} has negative elevation")


@dataclass
class AssetCatalog:
    """An ordered, name-indexed collection of :class:`AssetRecord`.

    Names are unique; insertion order is preserved so reports are stable.
    """

    region_name: str
    _assets: dict[str, AssetRecord] = field(default_factory=dict)

    @classmethod
    def from_records(cls, region_name: str, records: Iterable[AssetRecord]) -> "AssetCatalog":
        catalog = cls(region_name)
        for record in records:
            catalog.add(record)
        return catalog

    def add(self, record: AssetRecord) -> None:
        if record.name in self._assets:
            raise TopologyError(f"duplicate asset name {record.name!r}")
        self._assets[record.name] = record

    def get(self, name: str) -> AssetRecord:
        try:
            return self._assets[name]
        except KeyError:
            raise TopologyError(
                f"no asset named {name!r} in catalog {self.region_name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._assets

    def __iter__(self) -> Iterator[AssetRecord]:
        return iter(self._assets.values())

    def __len__(self) -> int:
        return len(self._assets)

    @property
    def names(self) -> list[str]:
        return list(self._assets)

    def with_role(self, role: AssetRole) -> list[AssetRecord]:
        return [a for a in self._assets.values() if a.role == role]

    def control_sites(self) -> list[AssetRecord]:
        """Assets capable of hosting SCADA masters (control + data centers)."""
        return [a for a in self._assets.values() if a.role.is_control_site]
