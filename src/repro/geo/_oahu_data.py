"""Synthetic reconstruction of the Oahu, Hawaii case-study geography.

The paper's Fig. 4 shows the real Oahu power-asset topology (control
center, power plants, substations, and the DRFortress / AlohaNAP data
centers).  That GIS dataset is not publicly available, so this module
reconstructs a geographically faithful synthetic equivalent:

* a closed coastline polygon approximating Oahu, partitioned into named
  shoreline segments with bathymetry-derived shelf factors (Pearl Harbor
  and the Ewa plain sit on a broad shallow shelf; the Waianae coast drops
  off steeply),
* a terrain model with the island's two mountain ranges (Waianae range in
  the west, Koolau range in the east), and
* an asset catalog with the control sites named by the paper (Honolulu,
  Waiau, Kahe, DRFortress, AlohaNAP) plus representative power plants and
  substations.

Coordinates are real-world approximations; elevations are synthetic but
ordered consistently with the paper's findings (Honolulu and Waiau are
low-lying and share the southern-shore surge exposure; Kahe and the data
centers sit higher).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.catalog import AssetCatalog, AssetRecord, AssetRole
from repro.geo.coords import GeoPoint
from repro.geo.region import CoastalRegion, ShorelineSegment
from repro.geo.terrain import Ridge, TerrainModel

# Names used throughout the case study (placements, figures, tests).
HONOLULU_CC = "Honolulu Control Center"
WAIAU_CC = "Waiau Control Center"
KAHE_CC = "Kahe Control Center"
DRFORTRESS = "DRFortress Data Center"
ALOHANAP = "AlohaNAP Data Center"

_KAENA = GeoPoint(21.575, -158.281)
_MAKAHA = GeoPoint(21.475, -158.221)
_WAIANAE = GeoPoint(21.440, -158.186)
_KAHE_PT = GeoPoint(21.355, -158.131)
_BARBERS_PT = GeoPoint(21.297, -158.106)
_EWA = GeoPoint(21.305, -158.020)
_PEARL_MOUTH = GeoPoint(21.320, -157.968)
_PEARL_WEST = GeoPoint(21.355, -157.985)
_PEARL_HEAD = GeoPoint(21.385, -157.955)
_PEARL_EAST = GeoPoint(21.360, -157.935)
_PEARL_EXIT = GeoPoint(21.325, -157.950)
_HONOLULU_HARBOR = GeoPoint(21.305, -157.870)
_WAIKIKI = GeoPoint(21.275, -157.825)
_DIAMOND_HEAD = GeoPoint(21.255, -157.805)
_KOKO_HEAD = GeoPoint(21.260, -157.700)
_MAKAPUU = GeoPoint(21.310, -157.650)
_WAIMANALO = GeoPoint(21.345, -157.695)
_KAILUA = GeoPoint(21.400, -157.735)
_KANEOHE = GeoPoint(21.460, -157.780)
_LAIE = GeoPoint(21.645, -157.920)
_KAHUKU = GeoPoint(21.710, -157.980)
_WAIMEA = GeoPoint(21.640, -158.065)
_HALEIWA = GeoPoint(21.595, -158.110)
_MOKULEIA = GeoPoint(21.580, -158.190)


def build_oahu_region() -> CoastalRegion:
    """The Oahu coastline as a ring of named shoreline segments.

    Shelf factors encode local surge amplification: the south shore and
    the Pearl Harbor embayment sit on a broad shallow shelf that funnels
    wind-driven surge; the Waianae (leeward-west) coast has a steep
    offshore drop-off that sheds it.
    """
    segments = (
        ShorelineSegment(
            "waianae-coast",
            (_KAENA, _MAKAHA, _WAIANAE, _KAHE_PT, _BARBERS_PT),
            shelf_factor=0.70,
        ),
        ShorelineSegment(
            "ewa-south-shore",
            (_BARBERS_PT, _EWA, _PEARL_MOUTH),
            shelf_factor=1.30,
            # The Ewa plain fronts a broad south-facing reef shelf: surge is
            # driven by southerly flow regardless of polygon edge direction.
            onshore_bearing_override=0.0,
        ),
        ShorelineSegment(
            "pearl-harbor",
            (_PEARL_MOUTH, _PEARL_WEST, _PEARL_HEAD, _PEARL_EAST, _PEARL_EXIT),
            shelf_factor=1.55,
            # Pearl Harbor is an embayment opening due south: surge inside
            # the lochs is driven by southerly flow through the mouth, so
            # the whole segment is forced along the bay axis (toward north)
            # rather than by the zigzag inner-shore perpendiculars.
            onshore_bearing_override=0.0,
        ),
        ShorelineSegment(
            "honolulu-waterfront",
            (_PEARL_EXIT, _HONOLULU_HARBOR, _WAIKIKI, _DIAMOND_HEAD),
            shelf_factor=1.25,
            # Like the Ewa shore, the Honolulu waterfront's fringing reef
            # responds to southerly onshore flow (the coarse polygon's
            # WNW-ESE trend would otherwise mis-aim the local normals).
            onshore_bearing_override=0.0,
        ),
        ShorelineSegment(
            "southeast-coast",
            (_DIAMOND_HEAD, _KOKO_HEAD, _MAKAPUU),
            shelf_factor=0.85,
        ),
        ShorelineSegment(
            "windward-coast",
            (_MAKAPUU, _WAIMANALO, _KAILUA, _KANEOHE, _LAIE, _KAHUKU),
            shelf_factor=1.05,
        ),
        ShorelineSegment(
            "north-shore",
            (_KAHUKU, _WAIMEA, _HALEIWA, _MOKULEIA, _KAENA),
            shelf_factor=1.00,
        ),
    )
    return CoastalRegion("Oahu", segments)


def build_oahu_terrain(region: CoastalRegion | None = None) -> TerrainModel:
    """Synthetic Oahu DEM: coastal plain plus the two mountain ranges."""
    region = region or build_oahu_region()
    ridges = (
        # Waianae range (west), crest ~1200 m.
        Ridge(GeoPoint(21.42, -158.15), GeoPoint(21.52, -158.20), 1200.0, 4.0),
        # Koolau range (east), crest ~900 m, long spine.
        Ridge(GeoPoint(21.32, -157.72), GeoPoint(21.62, -157.95), 900.0, 4.5),
    )
    return TerrainModel(
        region=region,
        ridges=ridges,
        plain_slope_m_per_km=5.0,
        shoreline_elevation_m=1.0,
    )


def build_oahu_catalog() -> AssetCatalog:
    """The power assets tracked by the case study (paper Fig. 4).

    Control-site elevations drive the headline result: Honolulu and Waiau
    are low-lying (2-3 m pads near the southern shore) so a strong
    southern-shore surge floods both; Kahe's control facility sits on a
    bluff above the plant and the commercial data centers are in elevated
    inland facilities.
    """
    records = [
        # --- Control sites -------------------------------------------------
        AssetRecord(
            HONOLULU_CC,
            AssetRole.CONTROL_CENTER,
            GeoPoint(21.307, -157.858),
            elevation_m=2.6,
            description="Primary utility control center, downtown Honolulu waterfront",
        ),
        AssetRecord(
            WAIAU_CC,
            AssetRole.CONTROL_CENTER,
            GeoPoint(21.372, -157.940),
            # Same pad elevation as Honolulu: the paper attributes their
            # correlated flooding to "similar altitude levels".
            elevation_m=2.6,
            description="Backup control facility at the Waiau plant, Pearl Harbor shore",
        ),
        AssetRecord(
            KAHE_CC,
            AssetRole.CONTROL_CENTER,
            GeoPoint(21.356, -158.127),
            elevation_m=16.0,
            description="Control facility on the bluff above Kahe Point plant",
        ),
        AssetRecord(
            DRFORTRESS,
            AssetRole.DATA_CENTER,
            GeoPoint(21.330, -157.870),
            elevation_m=12.0,
            description="Commercial colocation data center, Iwilei (hardened, elevated)",
        ),
        AssetRecord(
            ALOHANAP,
            AssetRole.DATA_CENTER,
            GeoPoint(21.332, -158.022),
            elevation_m=10.0,
            description="Commercial data center, Kapolei",
        ),
        # --- Power plants --------------------------------------------------
        AssetRecord(
            "Kahe Power Plant",
            AssetRole.POWER_PLANT,
            GeoPoint(21.354, -158.129),
            elevation_m=6.0,
            description="Largest oil-fired plant, leeward coast",
        ),
        AssetRecord(
            "Waiau Power Plant",
            AssetRole.POWER_PLANT,
            GeoPoint(21.371, -157.938),
            elevation_m=2.2,
            description="Oil-fired plant on Pearl Harbor's East Loch",
        ),
        AssetRecord(
            "Kalaeloa Power Plant",
            AssetRole.POWER_PLANT,
            GeoPoint(21.303, -158.091),
            elevation_m=4.5,
            description="Combined-cycle plant, Campbell Industrial Park",
        ),
        AssetRecord(
            "Honolulu Power Plant",
            AssetRole.POWER_PLANT,
            GeoPoint(21.306, -157.866),
            elevation_m=2.3,
            description="Downtown waterfront peaking plant",
        ),
        AssetRecord(
            "H-POWER Plant",
            AssetRole.POWER_PLANT,
            GeoPoint(21.308, -158.100),
            elevation_m=5.0,
            description="Waste-to-energy plant, Kapolei",
        ),
        # --- Substations ----------------------------------------------------
        AssetRecord(
            "Archer Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.315, -157.855),
            elevation_m=3.5,
        ),
        AssetRecord(
            "Iwilei Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.318, -157.868),
            elevation_m=2.8,
        ),
        AssetRecord(
            "Makalapa Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.355, -157.945),
            elevation_m=2.5,
        ),
        AssetRecord(
            "Halawa Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.375, -157.915),
            elevation_m=8.0,
        ),
        AssetRecord(
            "Ewa Nui Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.330, -158.030),
            elevation_m=6.5,
        ),
        AssetRecord(
            "Kamoku Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.290, -157.825),
            elevation_m=4.0,
        ),
        AssetRecord(
            "Koolau Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.400, -157.790),
            elevation_m=60.0,
        ),
        AssetRecord(
            "Kaneohe Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.420, -157.795),
            elevation_m=12.0,
        ),
        AssetRecord(
            "Waimanalo Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.345, -157.715),
            elevation_m=5.5,
        ),
        AssetRecord(
            "Wahiawa Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.500, -158.020),
            elevation_m=270.0,
        ),
        AssetRecord(
            "Mililani Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.450, -158.010),
            elevation_m=180.0,
        ),
        AssetRecord(
            "Waialua Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.575, -158.120),
            elevation_m=9.0,
        ),
        AssetRecord(
            "Kahuku Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.690, -157.975),
            elevation_m=7.0,
        ),
        AssetRecord(
            "Waianae Substation",
            AssetRole.SUBSTATION,
            GeoPoint(21.438, -158.180),
            elevation_m=8.5,
        ),
    ]
    return AssetCatalog.from_records("Oahu", records)


@dataclass(frozen=True)
class OahuCaseStudy:
    """Bundle of the three geographic inputs used by the case study."""

    region: CoastalRegion
    terrain: TerrainModel
    catalog: AssetCatalog


def oahu_case_study() -> OahuCaseStudy:
    """Build the full synthetic Oahu geography used across the repo."""
    region = build_oahu_region()
    return OahuCaseStudy(
        region=region,
        terrain=build_oahu_terrain(region),
        catalog=build_oahu_catalog(),
    )
