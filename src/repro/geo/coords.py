"""Geographic primitives: points, distances, bearings, local projections.

The analysis operates at island scale (tens of kilometres), so a spherical
Earth model and a local equirectangular tangent-plane projection are
accurate to well under one percent -- far below the uncertainty of the
hazard model itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TopologyError

EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface in decimal degrees.

    Latitude is positive north, longitude positive east (Oahu longitudes
    are therefore negative).
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise TopologyError(f"latitude {self.lat} out of range [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise TopologyError(f"longitude {self.lon} out of range [-180, 180]")

    def __str__(self) -> str:
        ns = "N" if self.lat >= 0 else "S"
        ew = "E" if self.lon >= 0 else "W"
        return f"{abs(self.lat):.4f}{ns} {abs(self.lon):.4f}{ew}"


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres."""
    phi1 = math.radians(a.lat)
    phi2 = math.radians(b.lat)
    dphi = math.radians(b.lat - a.lat)
    dlam = math.radians(b.lon - a.lon)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` in degrees [0, 360)."""
    phi1 = math.radians(a.lat)
    phi2 = math.radians(b.lat)
    dlam = math.radians(b.lon - a.lon)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    return math.degrees(math.atan2(y, x)) % 360.0


def destination_point(origin: GeoPoint, bearing_deg: float, distance_km: float) -> GeoPoint:
    """Point reached by travelling ``distance_km`` along ``bearing_deg``."""
    delta = distance_km / EARTH_RADIUS_KM
    theta = math.radians(bearing_deg)
    phi1 = math.radians(origin.lat)
    lam1 = math.radians(origin.lon)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    lon = math.degrees(lam2)
    lon = (lon + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(phi2), lon)


@dataclass(frozen=True)
class LocalProjection:
    """Equirectangular projection onto a tangent plane around ``origin``.

    Maps (lat, lon) to planar (x, y) kilometres with x pointing east and
    y pointing north.  Adequate for island-scale geometry.
    """

    origin: GeoPoint

    def to_xy(self, p: GeoPoint) -> tuple[float, float]:
        kx = math.cos(math.radians(self.origin.lat))
        x = math.radians(p.lon - self.origin.lon) * EARTH_RADIUS_KM * kx
        y = math.radians(p.lat - self.origin.lat) * EARTH_RADIUS_KM
        return x, y

    def to_point(self, x: float, y: float) -> GeoPoint:
        kx = math.cos(math.radians(self.origin.lat))
        lon = self.origin.lon + math.degrees(x / (EARTH_RADIUS_KM * kx))
        lat = self.origin.lat + math.degrees(y / EARTH_RADIUS_KM)
        return GeoPoint(lat, lon)


def segment_distance_km(p: GeoPoint, a: GeoPoint, b: GeoPoint) -> float:
    """Distance from ``p`` to the great-circle segment ``a``--``b``.

    Computed in a local tangent plane centred at ``a``; exact enough at
    island scale.
    """
    proj = LocalProjection(a)
    px, py = proj.to_xy(p)
    bx, by = proj.to_xy(b)
    seg_len_sq = bx * bx + by * by
    if seg_len_sq == 0.0:
        return math.hypot(px, py)
    t = max(0.0, min(1.0, (px * bx + py * by) / seg_len_sq))
    return math.hypot(px - t * bx, py - t * by)


def unit_vector_deg(bearing_deg: float) -> tuple[float, float]:
    """Planar (east, north) unit vector for a compass bearing."""
    theta = math.radians(bearing_deg)
    return math.sin(theta), math.cos(theta)
