"""Geospatial substrate: coordinates, regions, terrain, asset catalogs."""

from repro.geo.catalog import AssetCatalog, AssetRecord, AssetRole
from repro.geo.coords import (
    EARTH_RADIUS_KM,
    GeoPoint,
    LocalProjection,
    destination_point,
    haversine_km,
    initial_bearing_deg,
    segment_distance_km,
    unit_vector_deg,
)
from repro.geo._oahu_data import (
    ALOHANAP,
    DRFORTRESS,
    HONOLULU_CC,
    KAHE_CC,
    WAIAU_CC,
    OahuCaseStudy,
    build_oahu_catalog,
    build_oahu_region,
    build_oahu_terrain,
    oahu_case_study,
)
from repro.geo.region import CoastalRegion, ShorelineSegment
from repro.geo.terrain import Ridge, TerrainModel

__all__ = [
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "LocalProjection",
    "haversine_km",
    "initial_bearing_deg",
    "destination_point",
    "segment_distance_km",
    "unit_vector_deg",
    "AssetCatalog",
    "AssetRecord",
    "AssetRole",
    "CoastalRegion",
    "ShorelineSegment",
    "Ridge",
    "TerrainModel",
    "OahuCaseStudy",
    "oahu_case_study",
    "build_oahu_region",
    "build_oahu_terrain",
    "build_oahu_catalog",
    "HONOLULU_CC",
    "WAIAU_CC",
    "KAHE_CC",
    "DRFORTRESS",
    "ALOHANAP",
]
