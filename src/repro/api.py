"""The supported public entrypoint: ``run_study(StudyConfig(...))``.

One call runs the paper's whole workflow -- hurricane ensemble ->
post-disaster states -> worst-case cyberattack -> outcome matrix -- and
wires the observability layer (:mod:`repro.obs`) through every stage in
one place, so scripts and sweeps never instrument by hand::

    from repro import StudyConfig, run_study

    result = run_study(StudyConfig(n_realizations=1000, jobs=4))
    print(result.report())        # the paper's scenario x architecture tables
    print(result.run_report())    # stage timings, retry/cache counters

The result is bit-identical to driving ``standard_oahu_ensemble()`` +
``CompoundThreatAnalysis`` by hand (the legacy surface, which remains
exported): the facade changes how telemetry and configuration travel,
never the numbers.  Every run can persist a ``run_manifest.json``
(config hash, seed, versions, per-stage wall clock, metric snapshot)
via ``manifest_out`` -- see ``docs/observability.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hazards.base import Hazard
    from repro.sampling.impact import ExceedanceCurve, ExpectedAnnualLoss, LossModel
    from repro.sampling.plans import SamplingPlan
    from repro.scenarios.hazards import HazardFamily
    from repro.scenarios.regions import Region

import numpy as np

from repro.core.chain import ThreatChain
from repro.core.chain import resolve_chain as _resolve_chain
from repro.core.outcomes import ScenarioMatrix
from repro.core.pipeline import Attacker, CompoundThreatAnalysis
from repro.core.report import format_matrix_report
from repro.core.threat import PAPER_SCENARIOS, ThreatScenario, get_scenario
from repro.errors import ConfigurationError
from repro.hazards.base import HazardEnsemble
from repro.hazards.fragility import FragilityModel
from repro.hazards.hurricane.ensemble import EnsembleGenerator
from repro.hazards.hurricane.standard import (
    DEFAULT_REALIZATIONS,
    DEFAULT_SEED,
    shared_standard_generator,
    standard_oahu_generator,
)
from repro.obs.manifest import (
    build_run_manifest,
    format_run_report,
    write_json_artifact,
    write_run_manifest,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObservability,
    Observability,
    activate,
)
from repro.scada.architectures import (
    PAPER_CONFIGURATIONS,
    ArchitectureSpec,
    get_architecture,
)
from repro.scada.placement import (
    PLACEMENT_WAIAU,
    Placement,
    get_placement,
)


@dataclass(frozen=True, kw_only=True)
class StudyConfig:
    """Everything one compound-threat study run depends on.

    All fields are keyword-only and default to the paper's case study:
    ``StudyConfig()`` is the five-configuration, four-scenario Oahu
    matrix over the standard 1000-realization ensemble.

    Architectures, scenarios, and the placement accept either the
    library objects or their registry names (``"6+6+6"``,
    ``"hurricane+intrusion"``, ``"waiau"``).
    """

    # What to analyze.
    configurations: Sequence[ArchitectureSpec | str] = PAPER_CONFIGURATIONS
    placement: Placement | str = PLACEMENT_WAIAU
    scenarios: Sequence[ThreatScenario | str] = PAPER_SCENARIOS
    # The natural-disaster input data.  ``region``/``hazard`` select a
    # registered region and hazard family from the scenario catalog
    # (:mod:`repro.scenarios`); naming either defaults the other to the
    # paper's cell ("oahu" / "hurricane").  ``generator`` and
    # ``ensemble`` remain the escape hatches for hand-built hazard data
    # and are mutually exclusive with catalog selection.
    n_realizations: int = DEFAULT_REALIZATIONS
    seed: int = DEFAULT_SEED
    region: str | None = None
    hazard: str | None = None
    generator: EnsembleGenerator | None = None
    ensemble: HazardEnsemble | None = field(default=None, compare=False)
    # Pipeline models (defaults: 0.5 m threshold, worst-case attacker).
    fragility: FragilityModel | None = None
    attacker: Attacker | None = None
    analysis_seed: int = 0
    # The threat chain each realization runs through: a registered name
    # ("paper", "grid-coupled", "earthquake", ...), a ThreatChain object,
    # or None for the paper's exact Fig. 5 pipeline.
    chain: ThreatChain | str | None = None
    # How realizations are drawn and weighted: a registered plan name
    # ("plain", "stratified", "importance", "adaptive"), a
    # :class:`~repro.sampling.SamplingPlan`, a spec dict, or None.
    # None and "plain" are the paper's sampler and take the exact legacy
    # code path (bitwise identical, same study/cache hashes); any other
    # plan reshapes the track-offset draw and aggregates under unbiased
    # importance weights (see docs/tail_risk.md).
    sampling: "SamplingPlan | str | dict | None" = None
    # Executor selection (never changes the numbers): None auto-selects
    # the fused batched executor when the whole chain supports it, False
    # forces the per-realization loop, True requires batching (raises
    # when unavailable).  Excluded from study_config_hash -- both
    # executors are bitwise identical.
    batch: bool | None = None
    # How the ensemble arrives (never changes its bits).
    jobs: int = 1
    cache_dir: str | None = None
    resume: bool = False
    max_retries: int | None = None
    task_timeout: float | None = None
    # Telemetry.
    observability: bool = True
    manifest_out: str | Path | None = None
    metrics_out: str | Path | None = None
    trace_out: str | Path | None = None

    def __post_init__(self) -> None:
        # Construction-time validation reports *every* problem at once:
        # a sweep author fixing a 50-cell grid should see all the typos
        # in one traceback, not one per run attempt.
        problems: list[str] = []
        if self.n_realizations < 1:
            problems.append("n_realizations must be at least 1")
        if self.jobs < 1:
            problems.append("jobs must be at least 1")
        if not self.configurations:
            problems.append("study needs at least one configuration")
        if not self.scenarios:
            problems.append("study needs at least one scenario")
        if self.generator is not None and (
            self.region is not None or self.hazard is not None
        ):
            problems.append(
                "generator= cannot be combined with region=/hazard= "
                "(pass an explicit generator or a catalog name, not both)"
            )
        if self.ensemble is not None and (
            self.region is not None or self.hazard is not None
        ):
            problems.append(
                "ensemble= cannot be combined with region=/hazard= "
                "(pass prebuilt hazard data or a catalog name, not both)"
            )
        # Registry-name lookups resolve (or raise, listing the available
        # names) at construction, so a typo'd architecture, scenario,
        # placement, region, or hazard fails here rather than minutes
        # into a run.
        for check in (
            self.resolve_configurations,
            self.resolve_placement,
            self.resolve_scenarios,
            self._validate_catalog_names,
            self.resolve_chain,
            self._validate_sampling,
            self._validate_batch,
        ):
            try:
                check()
            except ConfigurationError as exc:
                problems.append(str(exc))
        problems = list(dict.fromkeys(problems))
        if len(problems) == 1:
            raise ConfigurationError(problems[0])
        if problems:
            raise ConfigurationError(
                f"invalid StudyConfig ({len(problems)} problems): "
                + "; ".join(problems)
            )

    # ------------------------------------------------------------------
    # Normalization (names -> library objects)
    # ------------------------------------------------------------------
    def resolve_configurations(self) -> list[ArchitectureSpec]:
        return [
            get_architecture(c) if isinstance(c, str) else c
            for c in self.configurations
        ]

    def resolve_placement(self) -> Placement:
        if isinstance(self.placement, str):
            return get_placement(self.placement)
        return self.placement

    def resolve_scenarios(self) -> list[ThreatScenario]:
        return [
            get_scenario(s) if isinstance(s, str) else s for s in self.scenarios
        ]

    def resolve_chain(self) -> ThreatChain:
        chain = self.chain
        if chain is None:
            family = self.resolve_hazard_family()
            if family is not None and family.default_chain is not None:
                chain = family.default_chain
        return _resolve_chain(chain)

    def resolve_sampling(self) -> "SamplingPlan | None":
        """The normalized sampling plan (None means the plain legacy path)."""
        from repro.sampling.plans import resolve_sampling

        return resolve_sampling(self.sampling)

    def _validate_sampling(self) -> None:
        from repro.sampling.plans import AdaptivePlan, StratifiedPlan, is_plain

        plan = self.resolve_sampling()
        if is_plain(plan):
            return
        assert plan is not None
        if self.ensemble is not None:
            raise ConfigurationError(
                "sampling= cannot reshape a prebuilt ensemble=; pass a "
                "generator or a region/hazard selection instead"
            )
        generator = self.resolve_generator() or shared_standard_generator()
        if not isinstance(generator, EnsembleGenerator):
            raise ConfigurationError(
                f"sampling plan {plan.name!r} reshapes hurricane track "
                f"parameters; the resolved generator "
                f"({type(generator).__name__}) does not sample them"
            )
        # A stratified allocation must fit the realization budget; check
        # at construction so a sweep cell fails here, not mid-run.
        if isinstance(plan, StratifiedPlan):
            plan.allocate(self.n_realizations)
        elif isinstance(plan, AdaptivePlan):
            base = plan.resolved_base()
            if isinstance(base, StratifiedPlan):
                base.allocate(plan.round_size)

    def _validate_batch(self) -> None:
        """Construction-time preflight for ``batch=True``.

        The full capability verdict is per-context
        (:meth:`~repro.core.chain.ThreatChain.batch_plan` needs the
        ensemble's depth grid), but the *model-level* obstacles are
        knowable now: a stochastic fragility model that disclaims the
        RNG-draw batch-sampling contract, or a stochastic attacker
        without a batched kernel, can never batch.  Requiring the
        batched executor with one configured should fail here, not
        minutes into a run.
        """
        if self.batch is not True:
            return
        try:
            chain = self.resolve_chain()
        except ConfigurationError:
            return  # resolve_chain's own check already reported it
        problems: list[str] = []
        for stage in chain.stages:
            model = getattr(stage, "fragility", None)
            if model is None and getattr(stage, "captures", None) == "post_disaster":
                model = self.resolve_fragility()
            if (
                model is not None
                and not getattr(model, "deterministic", False)
                and not getattr(model, "batch_sampling", False)
            ):
                problems.append(
                    f"fragility model {type(model).__name__} does not "
                    "declare the RNG-draw batch-sampling contract"
                )
            attacker = getattr(stage, "attacker", None)
            if attacker is None and type(stage).__name__ == "CyberAttackStage":
                attacker = self.attacker
            if (
                attacker is not None
                and not getattr(attacker, "deterministic", False)
                and not (
                    callable(getattr(attacker, "attack_batch", None))
                    and callable(getattr(attacker, "batch_draws", None))
                )
            ):
                label = getattr(attacker, "name", type(attacker).__name__)
                problems.append(
                    f"attacker {label!r} is stochastic without an "
                    "RNG-draw batched kernel (attack_batch + batch_draws)"
                )
        if problems:
            raise ConfigurationError(
                "batch=True cannot be honored: " + "; ".join(sorted(set(problems)))
            )

    # ------------------------------------------------------------------
    # Scenario-catalog resolution (region/hazard names -> objects)
    # ------------------------------------------------------------------
    def _effective_catalog_names(self) -> tuple[str | None, str | None]:
        """(region, hazard) with either defaulting the other to the paper's."""
        region, hazard = self.region, self.hazard
        if region is None and hazard is not None:
            region = "oahu"
        if hazard is None and region is not None:
            hazard = "hurricane"
        return region, hazard

    def _validate_catalog_names(self) -> None:
        region = self.resolve_region()
        family = self.resolve_hazard_family()
        if region is not None and family is not None:
            if family.name not in region.available_hazards():
                raise ConfigurationError(
                    f"region {region.name!r} has no {family.name!r} hazard "
                    f"scenario; available hazards: {region.available_hazards()}"
                )
        self.resolve_fragility()

    def resolve_region(self) -> "Region | None":
        """The registered :class:`~repro.scenarios.Region`, or None."""
        region_name, _ = self._effective_catalog_names()
        if region_name is None:
            return None
        from repro.scenarios import get_region

        return get_region(region_name)

    def resolve_hazard_family(self) -> "HazardFamily | None":
        """The registered hazard family, or None when not catalog-driven."""
        _, hazard_name = self._effective_catalog_names()
        if hazard_name is None:
            return None
        from repro.scenarios import get_hazard_family

        return get_hazard_family(hazard_name)

    def resolve_generator(self) -> "Hazard | None":
        """The hazard generator this study uses, or None for the default.

        An explicit ``generator=`` wins; otherwise a region/hazard
        selection resolves through the scenario catalog (memoized per
        region, so repeated studies share one built generator); with
        neither, None -- callers fall back to the paper's standard Oahu
        hurricane generator.
        """
        if self.generator is not None:
            return self.generator
        region_name, hazard_name = self._effective_catalog_names()
        if region_name is None or hazard_name is None:
            return None
        from repro.scenarios import get_region

        return get_region(region_name).hazard(hazard_name)

    def resolve_fragility(self) -> FragilityModel | None:
        """The fragility model, honoring the hazard family's default.

        ``fragility=None`` historically meant "the paper's 0.5 m depth
        threshold"; with a hazard family selected it means that family's
        natural default instead (e.g. PGA capacity for earthquakes), so
        ``StudyConfig(hazard="earthquake")`` never thresholds PGA in
        metres of water.
        """
        if self.fragility is not None:
            return self.fragility
        family = self.resolve_hazard_family()
        if family is None:
            return None
        return family.default_fragility()

    # ------------------------------------------------------------------
    # Supported derivation API (the sweep engine builds on these)
    # ------------------------------------------------------------------
    def replace(self, **overrides) -> "StudyConfig":
        """A copy with ``overrides`` applied, re-validated on construction.

        The grid builder (:func:`repro.sweep.sweep_grid`) derives every
        sweep cell this way; user code can too::

            kahe = StudyConfig().replace(placement="kahe")
        """
        return dataclasses.replace(self, **overrides)

    def cache_key(self) -> str:
        """The hazard-determining hash: which ensemble this study consumes.

        Two configs with the same ``cache_key()`` analyze bit-identical
        hazard data -- only hazard-side fields (the generator's scenario
        and physics, ``n_realizations``, ``seed``, or a prebuilt
        ``ensemble``'s contents) enter the hash; analysis-side fields
        (architectures, scenarios, placement, fragility, attacker,
        ``chain``, ``analysis_seed``) and delivery knobs (``jobs``,
        ``cache_dir``, telemetry) never do.  The sweep engine partitions
        its grid by this key so every group generates its ensemble
        exactly once -- which is why the chain stays out: two studies
        differing only in chain consume the same hazard bits (the chain
        enters :func:`study_config_hash` instead, so they are still
        distinct studies).
        """
        if self.ensemble is not None:
            return _prebuilt_ensemble_key(self.ensemble)
        generator = self.resolve_generator() or shared_standard_generator()
        plan = self.resolve_sampling()
        if plan is not None and plan.name != "plain":
            # A plan-sampled ensemble has different bits than the plain
            # one; fold the plan into the key so sweep groups and disk
            # caches never mix them.  Plain/None keep the legacy key.
            from repro.sampling.generation import PlanSampledGenerator

            generator = PlanSampledGenerator(generator, plan)  # type: ignore[arg-type]
        return generator.cache_key(self.n_realizations, self.seed)


@dataclass(frozen=True)
class StudyResult:
    """What one :func:`run_study` call produced."""

    config: StudyConfig
    matrix: ScenarioMatrix
    manifest: dict
    ensemble: HazardEnsemble
    observability: Observability | NullObservability
    #: Per-realization importance weights (index order), or None for the
    #: plain unweighted path.  Recomputable from the ensemble's stored
    #: parameters, so results stay bit-reproducible across cache loads
    #: and checkpoint resumes.
    weights: np.ndarray | None = field(default=None, compare=False)

    def report(self) -> str:
        """The scenario x architecture outcome tables (paper figures)."""
        return format_matrix_report(self.matrix)

    def run_report(self) -> str:
        """Human-readable telemetry: stage timings, counters, events."""
        return format_run_report(self.manifest)

    # ------------------------------------------------------------------
    # Impact aggregates (see docs/tail_risk.md)
    # ------------------------------------------------------------------
    def impacts(self, *, loss_model: "LossModel | None" = None):
        """Per-realization load-shed / loss arrays (weighted aggregates).

        One DC load-flow cascade per distinct damage pattern, broadcast
        over the ensemble; the default :class:`~repro.sampling.LossModel`
        result is computed once and cached on the result object.
        """
        from repro.sampling.impact import compute_impacts

        if loss_model is None:
            try:
                return self._impact_cache  # type: ignore[attr-defined]
            except AttributeError:
                pass
        result = compute_impacts(
            self.ensemble,
            fragility=self.config.resolve_fragility(),
            weights=self.weights,
            loss_model=loss_model,
        )
        if loss_model is None:
            # Frozen dataclass: stash the lazily built cache.
            object.__setattr__(self, "_impact_cache", result)
        return result

    def exceedance(
        self,
        metric: str = "loss_usd",
        *,
        loss_model: "LossModel | None" = None,
    ) -> "ExceedanceCurve":
        """The weighted exceedance curve P(metric > level).

        ``metric`` is ``"loss_usd"`` (default), ``"shed_mw"``, or
        ``"served_fraction"``.
        """
        return self.impacts(loss_model=loss_model).exceedance(metric)

    def expected_annual_loss(
        self, *, loss_model: "LossModel | None" = None
    ) -> "ExpectedAnnualLoss":
        """Weighted mean event loss annualized by the event rate."""
        return self.impacts(loss_model=loss_model).expected_annual_loss()


def _prebuilt_ensemble_key(ensemble: HazardEnsemble) -> str:
    """A deterministic content key for a user-supplied ensemble.

    Hashes the identity fields plus the depth matrix when the ensemble
    exposes one, so two prebuilt ensembles with the same bits group into
    the same sweep ensemble group (and a different seed or subset never
    collides).
    """
    digest = hashlib.sha256()
    digest.update(
        json.dumps(
            {
                "kind": "repro.prebuilt_ensemble",
                "scenario_name": getattr(ensemble, "scenario_name", None),
                "seed": getattr(ensemble, "seed", None),
                "count": len(ensemble),
            },
            sort_keys=True,
        ).encode()
    )
    depth_matrix = getattr(ensemble, "depth_matrix", None)
    if callable(depth_matrix):
        digest.update(np.ascontiguousarray(depth_matrix()).tobytes())
    return f"prebuilt-{digest.hexdigest()[:32]}"


def _model_identity(model: object | None) -> str | None:
    """A stable identity string for a fragility/attacker model.

    Dataclass models (the library's) hash by their repr, so two
    thresholds differing only in ``threshold_m`` never collide; anything
    else falls back to its type name.
    """
    if model is None:
        return None
    if dataclasses.is_dataclass(model):
        return repr(model)
    return type(model).__name__


def study_config_hash(
    config: StudyConfig,
    *,
    ensemble_key: str | None = None,
) -> str:
    """A stable hash of the study identity (what ran, on which data)."""
    architectures = [a.name for a in config.resolve_configurations()]
    scenarios = [s.name for s in config.resolve_scenarios()]
    payload = {
        "kind": "repro.study_config",
        "configurations": architectures,
        "placement": config.resolve_placement().label(),
        "scenarios": scenarios,
        "n_realizations": config.n_realizations,
        "seed": config.seed,
        "analysis_seed": config.analysis_seed,
        "fragility": _model_identity(config.resolve_fragility()),
        "attacker": _model_identity(config.attacker),
        "chain": config.resolve_chain().spec(),
        "ensemble_key": ensemble_key,
    }
    # Catalog selection enters the hash only when used, so every hash
    # minted before the scenario catalog existed stays valid (service
    # result stores keyed by study_config_hash keep their cache hits).
    if config.region is not None:
        payload["region"] = config.region
    if config.hazard is not None:
        payload["hazard"] = config.hazard
    # Same contract for sampling: plain/None never enters, so hashes
    # minted before the sampling subsystem existed stay valid too.
    sampling_plan = config.resolve_sampling()
    if sampling_plan is not None and sampling_plan.name != "plain":
        payload["sampling"] = sampling_plan.spec()
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def _acquire_ensemble(config: StudyConfig) -> tuple[HazardEnsemble, str | None]:
    """The study's hazard data plus its content key (for the manifest)."""
    if config.ensemble is not None:
        key = getattr(config.ensemble, "seed", None)
        return config.ensemble, None if key is None else f"prebuilt-seed-{key}"
    from repro.runtime.controller import RetryPolicy

    generator = config.resolve_generator() or standard_oahu_generator()
    plan = config.resolve_sampling()
    if plan is not None and plan.name != "plain":
        from repro.sampling.generation import PlanSampledGenerator

        generator = PlanSampledGenerator(generator, plan)  # type: ignore[arg-type]
    retry = RetryPolicy.from_options(config.max_retries, config.task_timeout)
    ensemble = generator.generate(
        count=config.n_realizations,
        seed=config.seed,
        n_jobs=config.jobs,
        cache_dir=config.cache_dir,
        resume=config.resume,
        retry=retry,
    )
    return ensemble, generator.cache_key(config.n_realizations, config.seed)


def _study_weights(
    config: StudyConfig, ensemble: HazardEnsemble
) -> np.ndarray | None:
    """Per-realization weights under the config's plan (None for plain).

    A pure function of (plan, stored track parameters), so cached and
    resumed ensembles reweight bit-identically.
    """
    plan = config.resolve_sampling()
    if plan is None or plan.name == "plain":
        return None
    generator = config.resolve_generator() or shared_standard_generator()
    sd_km = float(generator.scenario.track_offset_sd_km)
    return plan.weights_for(ensemble, sd_km)


def _record_sampling_metrics(obs, plan, weights: np.ndarray) -> None:
    """The ``sampling.*`` counters and gauges for one weighted pass."""
    if not obs.enabled:
        return
    sum_w = float(weights.sum())
    sum_w2 = float((weights**2).sum())
    obs.inc("sampling.weighted_runs")
    obs.event("sampling.plan", plan=plan.name)
    obs.set_gauge("sampling.sum_weights", sum_w)
    obs.set_gauge(
        "sampling.ess", sum_w**2 / sum_w2 if sum_w2 > 0 else 0.0
    )
    obs.observe("sampling.weight_max", float(weights.max()))


def run_study(
    config: StudyConfig | None = None,
    *,
    obs: Observability | NullObservability | None = None,
) -> StudyResult:
    """Run one complete study and return its matrix, manifest, and data.

    Telemetry is wired here, once: the observer is activated around the
    whole run, every downstream stage (ensemble generation, retries,
    caching, fragility, attacker search, classification) reports into
    it, and the run manifest is assembled at the end.  Pass
    ``observability=False`` (or ``obs=NULL_OBSERVER``) to disable all
    instrumentation; results are bit-identical either way.
    """
    config = config or StudyConfig()
    plan = config.resolve_sampling()
    if plan is not None and plan.name == "adaptive":
        # The adaptive controller owns its own round loop; its final
        # merged result is a StudyResult like any other.
        from repro.sampling.adaptive import run_adaptive_study

        return run_adaptive_study(config, obs=obs).result
    if obs is None:
        obs = Observability() if config.observability else NULL_OBSERVER
    start = time.perf_counter()
    with activate(obs):
        with obs.span("run_study"):
            architectures = config.resolve_configurations()
            placement = config.resolve_placement()
            scenarios = config.resolve_scenarios()
            chain = config.resolve_chain()
            if config.ensemble is not None:
                # A prebuilt ensemble involves no generation work, so no
                # generation-stage span is recorded: run_report() shows
                # only stages that actually ran instead of a misleading
                # zero-duration entry.
                ensemble, ensemble_key = _acquire_ensemble(config)
            else:
                with obs.span("ensemble.acquire"):
                    ensemble, ensemble_key = _acquire_ensemble(config)
            weights = _study_weights(config, ensemble)
            if weights is not None:
                _record_sampling_metrics(obs, plan, weights)
            analysis = CompoundThreatAnalysis(
                ensemble,
                fragility=config.resolve_fragility(),
                attacker=config.attacker,
                seed=config.analysis_seed,
                chain=chain,
                batch=config.batch,
                weights=weights,
            )
            matrix = analysis.run_matrix(architectures, placement, scenarios)
    wall_clock_s = time.perf_counter() - start
    manifest = build_run_manifest(
        config_hash=study_config_hash(config, ensemble_key=ensemble_key),
        seed=config.seed,
        n_realizations=len(ensemble),
        configurations=[a.name for a in architectures],
        scenarios=[s.name for s in scenarios],
        placement=placement.label(),
        chain=chain.spec(),
        region=config.region,
        hazard=config.hazard,
        obs=obs,
        wall_clock_s=wall_clock_s,
    )
    if plan is not None and plan.name != "plain":
        manifest["sampling"] = plan.spec()
    if config.manifest_out is not None:
        write_run_manifest(config.manifest_out, manifest)
    if config.metrics_out is not None and obs.enabled:
        write_json_artifact(
            config.metrics_out, obs.metrics.snapshot(), "metrics snapshot"
        )
    if config.trace_out is not None and obs.enabled:
        write_json_artifact(config.trace_out, obs.tracer.to_dict(), "trace tree")
    return StudyResult(
        config=config,
        matrix=matrix,
        manifest=manifest,
        ensemble=ensemble,
        observability=obs,
        weights=weights,
    )


@dataclass(frozen=True)
class TimelineStudyResult:
    """What one :func:`run_timeline` call produced."""

    config: StudyConfig
    params: "TimelineParams"
    distributions: dict
    manifest: dict
    ensemble: HazardEnsemble
    observability: Observability | NullObservability

    def report(self) -> str:
        """Downtime tables per scenario (mean / median / p95 / unsafe)."""
        lines = []
        scenarios = {s for s, _ in self.distributions}
        for scenario in sorted(scenarios):
            lines.append(
                f"Downtime per compound event ({scenario}, "
                f"{len(self.ensemble)} realizations):"
            )
            lines.append(
                f"{'configuration':15s} {'mean':>9s} {'median':>9s} "
                f"{'p95':>9s} {'unsafe':>9s}"
            )
            for (s, arch), dist in self.distributions.items():
                if s != scenario:
                    continue
                lines.append(
                    f"{arch:15s} {dist.mean_unavailable_h:8.1f}h "
                    f"{dist.quantile_unavailable_h(0.5):8.1f}h "
                    f"{dist.quantile_unavailable_h(0.95):8.1f}h "
                    f"{dist.mean_unsafe_h:8.1f}h"
                )
        return "\n".join(lines)

    def run_report(self) -> str:
        return format_run_report(self.manifest)


def run_timeline(
    config: StudyConfig | None = None,
    *,
    params: "TimelineParams | None" = None,
    obs: Observability | NullObservability | None = None,
) -> TimelineStudyResult:
    """Roll each realization out in time: the temporal view of a study.

    The spatial study (:func:`run_study`) answers *how bad*; this facade
    answers *for how long*, simulating the compound event's unfolding
    (disaster impact -> attack onset -> isolation window -> staged
    repairs) per realization and aggregating downtime distributions per
    (scenario, architecture) cell.  It shares the study configuration
    surface: ensemble acquisition (``jobs``/``cache_dir``/``resume``),
    fragility/attacker models, ``analysis_seed`` (seeds the rollout's
    repair/cleanup sampling), and the manifest/metrics/trace artifacts.
    """
    from repro.core.timeline import CompoundEventTimeline, TimelineParams

    config = config or StudyConfig()
    timeline_plan = config.resolve_sampling()
    if timeline_plan is not None and timeline_plan.name != "plain":
        raise ConfigurationError(
            "run_timeline does not support sampling plans yet; its "
            "downtime distributions are unweighted (use sampling=None "
            "or 'plain')"
        )
    params = params or TimelineParams()
    if obs is None:
        obs = Observability() if config.observability else NULL_OBSERVER
    start = time.perf_counter()
    with activate(obs):
        with obs.span("run_timeline"):
            architectures = config.resolve_configurations()
            placement = config.resolve_placement()
            scenarios = config.resolve_scenarios()
            if config.ensemble is not None:
                ensemble, ensemble_key = _acquire_ensemble(config)
            else:
                with obs.span("ensemble.acquire"):
                    ensemble, ensemble_key = _acquire_ensemble(config)
            timeline = CompoundEventTimeline(
                params,
                fragility=config.resolve_fragility(),
                attacker=config.attacker,
            )
            distributions: dict = {}
            rollout_s = 0.0
            for scenario in scenarios:
                for architecture in architectures:
                    t0 = time.perf_counter()
                    distributions[(scenario.name, architecture.name)] = (
                        timeline.downtime_distribution(
                            architecture,
                            placement,
                            ensemble,
                            scenario,
                            seed=config.analysis_seed,
                        )
                    )
                    rollout_s += time.perf_counter() - t0
            obs.record_span(
                "timeline.rollout", rollout_s, cells=len(distributions)
            )
    wall_clock_s = time.perf_counter() - start
    manifest = build_run_manifest(
        config_hash=study_config_hash(config, ensemble_key=ensemble_key),
        seed=config.seed,
        n_realizations=len(ensemble),
        configurations=[a.name for a in architectures],
        scenarios=[s.name for s in scenarios],
        placement=placement.label(),
        chain=None,  # the rollout replaces the chain's instantaneous view
        region=config.region,
        hazard=config.hazard,
        obs=obs,
        wall_clock_s=wall_clock_s,
    )
    if config.manifest_out is not None:
        write_run_manifest(config.manifest_out, manifest)
    if config.metrics_out is not None and obs.enabled:
        write_json_artifact(
            config.metrics_out, obs.metrics.snapshot(), "metrics snapshot"
        )
    if config.trace_out is not None and obs.enabled:
        write_json_artifact(config.trace_out, obs.tracer.to_dict(), "trace tree")
    return TimelineStudyResult(
        config=config,
        params=params,
        distributions=distributions,
        manifest=manifest,
        ensemble=ensemble,
        observability=obs,
    )
