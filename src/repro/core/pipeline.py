"""The analysis and evaluation pipeline (paper Fig. 5).

Workflow per realization::

    geospatial SCADA topology + hurricane realization
        -> post-natural-disaster system state       (fragility model)
        -> post-attack system state                 (worst-case attacker)
        -> operational state                        (Table I evaluator)

and per (architecture, placement, scenario): the operational profile over
the whole ensemble.

Since the threat-chain refactor the per-realization workflow is owned by
:mod:`repro.core.chain`: :class:`CompoundThreatAnalysis` resolves a
:class:`~repro.core.chain.ThreatChain` (default ``"paper"``, the exact
pipeline above) and delegates every realization to its executor.  The
class keeps the ensemble/fragility/attacker wiring, the memoized
failed-asset pass, and the matrix/profile aggregation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.attacker import WorstCaseAttacker
from repro.core.batch import BatchContext
from repro.core.chain import (
    Attacker,
    ChainContext,
    RealizationOutcome,
    ThreatChain,
    resolve_chain,
)
from repro.core.outcomes import OperationalProfile, ScenarioMatrix
from repro.core.system_state import SystemState, initial_state
from repro.core.threat import ThreatScenario
from repro.errors import AnalysisError
from repro.hazards.base import HazardEnsemble, HazardRealization
from repro.hazards.fragility import FragilityModel, ThresholdFragility
from repro.obs.observer import current as current_observer
from repro.scada.architectures import ArchitectureSpec
from repro.scada.placement import Placement

__all__ = [
    "Attacker",
    "RealizationOutcome",
    "CompoundThreatAnalysis",
]


class CompoundThreatAnalysis:
    """The paper's data-centric analysis framework.

    Parameters
    ----------
    ensemble:
        Hazard realizations (the natural-disaster input data); any
        hazard type satisfying :class:`~repro.hazards.base.HazardEnsemble`
        plugs in (hurricane surge, earthquake, ...).
    fragility:
        How inundation depth maps to asset failure; defaults to the
        paper's 0.5 m threshold rule.
    attacker:
        The cyberattack model; defaults to the worst-case attacker.
    seed:
        Seeds the rng handed to stochastic attackers (ignored by the
        deterministic ones), keeping runs reproducible.
    failed_cache:
        An externally owned failed-asset memo (realization index ->
        failed set) to use instead of a private one.  The sweep engine
        passes one dict per (ensemble, fragility) group so every study
        sharing that pair reuses the fragility pass; only sound when the
        ensemble and fragility model really are shared.
    matrix_cache:
        An externally owned batched-executor memo (model token ->
        failure/probability grid).  Unlike ``failed_cache`` it is sound
        for stochastic fragility too -- the cached grids are pure
        functions of the shared depth grid; sampled outcomes are never
        stored -- so the sweep engine shares one per ensemble group.
    chain:
        The threat chain to run each realization through: a registered
        name, a :class:`~repro.core.chain.ThreatChain`, or ``None`` for
        the paper's exact three-stage pipeline.
    batch:
        Executor selection.  ``None`` (the default) auto-selects: the
        fused batched executor when the ensemble exposes a depth grid
        and every chain stage supports batching (stochastic fragility
        models and attackers included, via the RNG-draw contract --
        see :meth:`~repro.core.chain.ThreatChain.batch_plan`), the
        per-realization loop otherwise (counter ``batch.fallback``
        records why).  ``False`` forces the per-realization loop;
        ``True`` requires the batched path and raises
        :class:`~repro.errors.AnalysisError` when it is unavailable.
        Both executors are bitwise identical for the built-in chains.
    weights:
        Optional per-realization importance weights (one per ensemble
        member, in index order).  When given, every profile is a
        :class:`~repro.sampling.weighted.WeightedProfile` aggregating
        the reweighted outcome tallies; ``None`` (the default) keeps
        the historical unweighted :class:`OperationalProfile` path
        byte for byte.
    """

    def __init__(
        self,
        ensemble: HazardEnsemble,
        fragility: FragilityModel | None = None,
        attacker: Attacker | None = None,
        seed: int = 0,
        failed_cache: dict[int, frozenset[str]] | None = None,
        chain: ThreatChain | str | None = None,
        batch: bool | None = None,
        weights: np.ndarray | None = None,
        matrix_cache: dict[object, np.ndarray] | None = None,
    ) -> None:
        if len(ensemble) == 0:
            raise AnalysisError("ensemble must contain realizations")
        if weights is not None:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (len(ensemble),):
                raise AnalysisError(
                    f"weights shape {weights.shape} does not match "
                    f"ensemble size {len(ensemble)}"
                )
        self.weights = weights
        self.ensemble = ensemble
        self.fragility = fragility or ThresholdFragility()
        self.attacker = attacker or WorstCaseAttacker()
        self.chain = resolve_chain(chain)
        self.batch = batch
        self._seed = seed
        # Failed-asset sets per realization, for deterministic fragility
        # models.  Keyed by realization index: indices identify a
        # realization within the ensemble even when the object is rebuilt
        # (cache loads, checkpoint resumes), unlike id()s, which are only
        # stable while the original ensemble objects stay alive.
        self._failed_cache: dict[int, frozenset[str]] = (
            {} if failed_cache is None else failed_cache
        )
        # Batched-executor memos, shared across every matrix cell: the
        # ensemble's depth grid is resolved once, and failure matrices /
        # probability grids are cached per fragility model (the batched
        # counterpart of the per-realization failed-asset memo above).
        # Both entry kinds are pure functions of (depths, model) -- the
        # stochastic path samples fresh draws *against* the cached
        # probability grid, never caching outcomes -- so the sweep
        # engine may pass one externally owned ``matrix_cache`` per
        # shared ensemble and every study reuses the grids.
        self._batch_depths: tuple[list[str], np.ndarray] | None = None
        self._batch_probed = False
        self._failure_matrix_cache: dict[object, np.ndarray] = (
            {} if matrix_cache is None else matrix_cache
        )

    def _failed_assets(
        self,
        realization: HazardRealization,
        rng: np.random.Generator | None,
    ) -> frozenset[str]:
        """The realization's failed assets, memoized when that is sound.

        A deterministic fragility model never consumes the rng, so its
        failed-asset set is a pure function of the realization and can be
        computed once and shared across every (scenario, architecture)
        cell of :meth:`run_matrix`.  Stochastic models are re-sampled on
        every call, exactly as before.
        """
        if not getattr(self.fragility, "deterministic", False):
            return realization.failed_assets(self.fragility, rng)
        key = realization.index
        try:
            failed = self._failed_cache[key]
        except KeyError:
            current_observer().inc("pipeline.failed_cache.miss")
            failed = realization.failed_assets(self.fragility, rng)
            self._failed_cache[key] = failed
            return failed
        current_observer().inc("pipeline.failed_cache.hit")
        return failed

    def _depth_grid(self) -> tuple[list[str], np.ndarray] | None:
        """The ensemble's (asset names, depth matrix), probed once.

        ``None`` when the ensemble does not expose a per-asset intensity
        grid -- the batched executor then stays off and the
        per-realization loop handles everything, as before.
        """
        if not self._batch_probed:
            self._batch_probed = True
            names = getattr(self.ensemble, "asset_names", None)
            view = getattr(self.ensemble, "depth_view", None)
            if not callable(view):
                view = getattr(self.ensemble, "depth_matrix", None)
            if names and callable(view):
                depths = np.asarray(view())
                if depths.ndim == 2 and depths.shape == (
                    len(self.ensemble),
                    len(names),
                ):
                    self._batch_depths = (list(names), depths)
        return self._batch_depths

    def _batch_context(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        scenario: ThreatScenario,
    ) -> BatchContext | None:
        """A batch context for one cell, or ``None`` when unavailable."""
        grid = self._depth_grid()
        if grid is None:
            return None
        names, depths = grid
        return BatchContext(
            architecture,
            placement,
            scenario,
            fragility=self.fragility,
            attacker=self.attacker,
            asset_names=names,
            depths=depths,
            matrix_cache=self._failure_matrix_cache,
        )

    def _context(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        scenario: ThreatScenario,
    ) -> ChainContext:
        """One chain context, reused across the whole ensemble loop."""
        return ChainContext(
            architecture,
            placement,
            scenario,
            fragility=self.fragility,
            attacker=self.attacker,
            failed_lookup=self._failed_assets,
        )

    # ------------------------------------------------------------------
    # Per-realization steps (Fig. 5 boxes)
    # ------------------------------------------------------------------
    def post_disaster_state(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        realization: HazardRealization,
        rng: np.random.Generator | None = None,
    ) -> SystemState:
        """Apply the natural-disaster impact to a deployed architecture."""
        failed = self._failed_assets(realization, rng)
        return initial_state(architecture, placement, failed)

    def outcome(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        realization: HazardRealization,
        scenario: ThreatScenario,
        rng: np.random.Generator | None = None,
    ) -> RealizationOutcome:
        """Run one realization through the configured threat chain."""
        ctx = self._context(architecture, placement, scenario)
        ctx.realization = realization
        return self.chain.run(ctx, rng)

    # ------------------------------------------------------------------
    # Ensemble-level analysis
    # ------------------------------------------------------------------
    def _profile_from_states(self, states) -> OperationalProfile:
        if self.weights is None:
            return OperationalProfile.from_states(states)
        from repro.sampling.weighted import WeightedProfile

        # WeightedProfile duck-types the OperationalProfile read surface.
        return WeightedProfile.from_states(states, self.weights)  # type: ignore[return-value]

    def _profile_from_codes(self, codes: np.ndarray) -> OperationalProfile:
        if self.weights is None:
            return OperationalProfile.from_state_codes(codes)
        from repro.sampling.weighted import WeightedProfile

        return WeightedProfile.from_state_codes(codes, self.weights)  # type: ignore[return-value]

    def run(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        scenario: ThreatScenario,
    ) -> OperationalProfile:
        """Outcome probabilities for one configuration under one scenario."""
        if self.batch is not False:
            bctx = self._batch_context(architecture, placement, scenario)
            plan = self.chain.batch_plan(bctx) if bctx is not None else None
            if plan is not None and plan.ok:
                return self._run_batched(bctx, plan)
            if plan is None:
                reason = "ensemble exposes no per-asset depth grid"
                slug = "no_depth_grid"
            else:
                reason = f"chain {self.chain.name!r} is unbatchable: {plan.reason}"
                slug = f"stage.{plan.stage}" if plan.stage else "unbatchable"
            if self.batch is True:
                raise AnalysisError(f"batched execution required but {reason}")
            self._note_fallback(reason, slug)
        rng = np.random.default_rng(self._seed)
        obs = current_observer()
        if not obs.enabled:
            ctx = self._context(architecture, placement, scenario)
            chain = self.chain
            states = []
            for realization in self.ensemble:
                ctx.realization = realization
                states.append(chain.run_state(ctx, rng))
            return self._profile_from_states(states)
        return self._run_observed(architecture, placement, scenario, rng, obs)

    def _run_observed(
        self, architecture, placement, scenario, rng, obs
    ) -> OperationalProfile:
        """The same per-realization loop, timed stage by stage.

        The chain's stages interleave per realization, so each stage's
        total is accumulated across the whole ensemble and reported as
        one aggregate ``pipeline.stage.<name>`` child span (plus a
        histogram sample), rather than allocating thousands of span
        objects.
        """
        ctx = self._context(architecture, placement, scenario)
        chain = self.chain
        totals: dict[str, float] = {}
        states = []
        with obs.span(
            "analysis.run",
            scenario=scenario.name,
            architecture=architecture.name,
            chain=chain.name,
        ):
            for realization in self.ensemble:
                ctx.realization = realization
                states.append(chain.run_state_timed(ctx, rng, totals))
            n = len(states)
            for name, total in totals.items():
                obs.record_span(f"pipeline.stage.{name}", total, realizations=n)
            obs.inc("pipeline.realizations", n)
        for name, total in totals.items():
            obs.observe(f"pipeline.stage.{name}_s", total)
        return self._profile_from_states(states)

    def _note_fallback(self, reason: str, slug: str) -> None:
        """Record one silent batch-to-scalar fallback with its reason.

        Counters are flat name -> value maps, so the reason rides as a
        suffixed counter (plus a structured event); `format_run_report`
        surfaces both the total and the per-reason split, so users can
        tell *why* a run is on the slow path.
        """
        obs = current_observer()
        obs.inc("batch.fallback")
        obs.inc(f"batch.fallback.reason.{slug}")
        obs.event("batch.fallback", reason=reason, chain=self.chain.name)

    def _run_batched(
        self, bctx: BatchContext, plan=None
    ) -> OperationalProfile:
        """One cell via the fused batched executor.

        Deterministic chains consume no draws, so no generator is
        seeded (the scalar path's generator is equally untouched) --
        that keeps the historical deterministic path byte for byte.
        Stochastic chains get a fresh ``default_rng(seed)`` per cell,
        exactly mirroring the scalar ``run()``'s per-call generator, so
        the matrix draw replays the identical stream.
        """
        if plan is None:
            plan = self.chain.batch_plan(bctx)
        rng = (
            np.random.default_rng(self._seed) if plan.total_draws > 0 else None
        )
        obs = current_observer()
        chain = self.chain
        if not obs.enabled:
            codes = chain.run_batch(bctx, rng, plan)
            return self._profile_from_codes(codes)
        totals: dict[str, float] = {}
        with obs.span(
            "analysis.run",
            scenario=bctx.scenario.name,
            architecture=bctx.architecture.name,
            chain=chain.name,
            executor="batched",
        ):
            codes = chain.run_batch_timed(bctx, rng, totals, plan)
            n = int(codes.shape[0])
            for name, total in totals.items():
                obs.record_span(f"pipeline.stage.{name}", total, realizations=n)
            obs.inc("pipeline.realizations", n)
            obs.inc("pipeline.batched_runs")
        for name, total in totals.items():
            obs.observe(f"pipeline.stage.{name}_s", total)
        return self._profile_from_codes(codes)

    def run_matrix(
        self,
        architectures: Sequence[ArchitectureSpec],
        placement: Placement,
        scenarios: Sequence[ThreatScenario],
    ) -> ScenarioMatrix:
        """Profiles for every (scenario, architecture) pair.

        One scenario row group of the returned matrix corresponds to one
        figure of the paper.
        """
        obs = current_observer()
        matrix = ScenarioMatrix(placement_label=placement.label())
        with obs.span(
            "analysis.run_matrix",
            placement=placement.label(),
            cells=len(architectures) * len(scenarios),
        ):
            for scenario in scenarios:
                for architecture in architectures:
                    matrix.add(
                        scenario.name,
                        architecture.name,
                        self.run(architecture, placement, scenario),
                    )
        return matrix
