"""The analysis and evaluation pipeline (paper Fig. 5).

Workflow per realization::

    geospatial SCADA topology + hurricane realization
        -> post-natural-disaster system state       (fragility model)
        -> post-attack system state                 (worst-case attacker)
        -> operational state                        (Table I evaluator)

and per (architecture, placement, scenario): the operational profile over
the whole ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.core.attacker import WorstCaseAttacker
from repro.core.evaluator import evaluate
from repro.core.outcomes import OperationalProfile, ScenarioMatrix
from repro.core.states import OperationalState
from repro.core.system_state import SystemState, initial_state
from repro.core.threat import CyberAttackBudget, ThreatScenario
from repro.errors import AnalysisError
from repro.hazards.base import HazardEnsemble, HazardRealization
from repro.hazards.fragility import FragilityModel, ThresholdFragility
from repro.scada.architectures import ArchitectureSpec
from repro.scada.placement import Placement


class Attacker(Protocol):
    """Anything that spends an attack budget on a post-disaster state."""

    name: str

    def attack(
        self,
        state: SystemState,
        budget: CyberAttackBudget,
        rng: np.random.Generator | None = None,
    ) -> SystemState:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class RealizationOutcome:
    """Full trace of one realization through the pipeline."""

    realization_index: int
    post_disaster: SystemState
    post_attack: SystemState
    state: OperationalState


class CompoundThreatAnalysis:
    """The paper's data-centric analysis framework.

    Parameters
    ----------
    ensemble:
        Hazard realizations (the natural-disaster input data); any
        hazard type satisfying :class:`~repro.hazards.base.HazardEnsemble`
        plugs in (hurricane surge, earthquake, ...).
    fragility:
        How inundation depth maps to asset failure; defaults to the
        paper's 0.5 m threshold rule.
    attacker:
        The cyberattack model; defaults to the worst-case attacker.
    seed:
        Seeds the rng handed to stochastic attackers (ignored by the
        deterministic ones), keeping runs reproducible.
    """

    def __init__(
        self,
        ensemble: HazardEnsemble,
        fragility: FragilityModel | None = None,
        attacker: Attacker | None = None,
        seed: int = 0,
    ) -> None:
        if len(ensemble) == 0:
            raise AnalysisError("ensemble must contain realizations")
        self.ensemble = ensemble
        self.fragility = fragility or ThresholdFragility()
        self.attacker = attacker or WorstCaseAttacker()
        self._seed = seed
        # Failed-asset sets per realization, for deterministic fragility
        # models.  Keyed by realization index: indices identify a
        # realization within the ensemble even when the object is rebuilt
        # (cache loads, checkpoint resumes), unlike id()s, which are only
        # stable while the original ensemble objects stay alive.
        self._failed_cache: dict[int, frozenset[str]] = {}

    def _failed_assets(
        self,
        realization: HazardRealization,
        rng: np.random.Generator | None,
    ) -> frozenset[str]:
        """The realization's failed assets, memoized when that is sound.

        A deterministic fragility model never consumes the rng, so its
        failed-asset set is a pure function of the realization and can be
        computed once and shared across every (scenario, architecture)
        cell of :meth:`run_matrix`.  Stochastic models are re-sampled on
        every call, exactly as before.
        """
        if not getattr(self.fragility, "deterministic", False):
            return realization.failed_assets(self.fragility, rng)
        key = realization.index
        try:
            return self._failed_cache[key]
        except KeyError:
            failed = realization.failed_assets(self.fragility, rng)
            self._failed_cache[key] = failed
            return failed

    # ------------------------------------------------------------------
    # Per-realization steps (Fig. 5 boxes)
    # ------------------------------------------------------------------
    def post_disaster_state(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        realization: HazardRealization,
        rng: np.random.Generator | None = None,
    ) -> SystemState:
        """Apply the natural-disaster impact to a deployed architecture."""
        failed = self._failed_assets(realization, rng)
        return initial_state(architecture, placement, failed)

    def outcome(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        realization: HazardRealization,
        scenario: ThreatScenario,
        rng: np.random.Generator | None = None,
    ) -> RealizationOutcome:
        """Run one realization through disaster, attack, and evaluation."""
        post_disaster = self.post_disaster_state(
            architecture, placement, realization, rng
        )
        post_attack = self.attacker.attack(post_disaster, scenario.budget, rng)
        return RealizationOutcome(
            realization_index=realization.index,
            post_disaster=post_disaster,
            post_attack=post_attack,
            state=evaluate(post_attack),
        )

    # ------------------------------------------------------------------
    # Ensemble-level analysis
    # ------------------------------------------------------------------
    def run(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        scenario: ThreatScenario,
    ) -> OperationalProfile:
        """Outcome probabilities for one configuration under one scenario."""
        rng = np.random.default_rng(self._seed)
        states = [
            self.outcome(architecture, placement, r, scenario, rng).state
            for r in self.ensemble
        ]
        return OperationalProfile.from_states(states)

    def run_matrix(
        self,
        architectures: Sequence[ArchitectureSpec],
        placement: Placement,
        scenarios: Sequence[ThreatScenario],
    ) -> ScenarioMatrix:
        """Profiles for every (scenario, architecture) pair.

        One scenario row group of the returned matrix corresponds to one
        figure of the paper.
        """
        matrix = ScenarioMatrix(placement_label=placement.label())
        for scenario in scenarios:
            for architecture in architectures:
                matrix.add(
                    scenario.name,
                    architecture.name,
                    self.run(architecture, placement, scenario),
                )
        return matrix
