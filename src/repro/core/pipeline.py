"""The analysis and evaluation pipeline (paper Fig. 5).

Workflow per realization::

    geospatial SCADA topology + hurricane realization
        -> post-natural-disaster system state       (fragility model)
        -> post-attack system state                 (worst-case attacker)
        -> operational state                        (Table I evaluator)

and per (architecture, placement, scenario): the operational profile over
the whole ensemble.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.core.attacker import WorstCaseAttacker
from repro.core.evaluator import evaluate
from repro.core.outcomes import OperationalProfile, ScenarioMatrix
from repro.core.states import OperationalState
from repro.core.system_state import SystemState, initial_state
from repro.core.threat import CyberAttackBudget, ThreatScenario
from repro.errors import AnalysisError
from repro.hazards.base import HazardEnsemble, HazardRealization
from repro.hazards.fragility import FragilityModel, ThresholdFragility
from repro.obs.observer import current as current_observer
from repro.scada.architectures import ArchitectureSpec
from repro.scada.placement import Placement


class Attacker(Protocol):
    """Anything that spends an attack budget on a post-disaster state."""

    name: str

    def attack(
        self,
        state: SystemState,
        budget: CyberAttackBudget,
        rng: np.random.Generator | None = None,
    ) -> SystemState:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class RealizationOutcome:
    """Full trace of one realization through the pipeline."""

    realization_index: int
    post_disaster: SystemState
    post_attack: SystemState
    state: OperationalState


class CompoundThreatAnalysis:
    """The paper's data-centric analysis framework.

    Parameters
    ----------
    ensemble:
        Hazard realizations (the natural-disaster input data); any
        hazard type satisfying :class:`~repro.hazards.base.HazardEnsemble`
        plugs in (hurricane surge, earthquake, ...).
    fragility:
        How inundation depth maps to asset failure; defaults to the
        paper's 0.5 m threshold rule.
    attacker:
        The cyberattack model; defaults to the worst-case attacker.
    seed:
        Seeds the rng handed to stochastic attackers (ignored by the
        deterministic ones), keeping runs reproducible.
    failed_cache:
        An externally owned failed-asset memo (realization index ->
        failed set) to use instead of a private one.  The sweep engine
        passes one dict per (ensemble, fragility) group so every study
        sharing that pair reuses the fragility pass; only sound when the
        ensemble and fragility model really are shared.
    """

    def __init__(
        self,
        ensemble: HazardEnsemble,
        fragility: FragilityModel | None = None,
        attacker: Attacker | None = None,
        seed: int = 0,
        failed_cache: dict[int, frozenset[str]] | None = None,
    ) -> None:
        if len(ensemble) == 0:
            raise AnalysisError("ensemble must contain realizations")
        self.ensemble = ensemble
        self.fragility = fragility or ThresholdFragility()
        self.attacker = attacker or WorstCaseAttacker()
        self._seed = seed
        # Failed-asset sets per realization, for deterministic fragility
        # models.  Keyed by realization index: indices identify a
        # realization within the ensemble even when the object is rebuilt
        # (cache loads, checkpoint resumes), unlike id()s, which are only
        # stable while the original ensemble objects stay alive.
        self._failed_cache: dict[int, frozenset[str]] = (
            {} if failed_cache is None else failed_cache
        )

    def _failed_assets(
        self,
        realization: HazardRealization,
        rng: np.random.Generator | None,
    ) -> frozenset[str]:
        """The realization's failed assets, memoized when that is sound.

        A deterministic fragility model never consumes the rng, so its
        failed-asset set is a pure function of the realization and can be
        computed once and shared across every (scenario, architecture)
        cell of :meth:`run_matrix`.  Stochastic models are re-sampled on
        every call, exactly as before.
        """
        if not getattr(self.fragility, "deterministic", False):
            return realization.failed_assets(self.fragility, rng)
        key = realization.index
        try:
            failed = self._failed_cache[key]
        except KeyError:
            current_observer().inc("pipeline.failed_cache.miss")
            failed = realization.failed_assets(self.fragility, rng)
            self._failed_cache[key] = failed
            return failed
        current_observer().inc("pipeline.failed_cache.hit")
        return failed

    # ------------------------------------------------------------------
    # Per-realization steps (Fig. 5 boxes)
    # ------------------------------------------------------------------
    def post_disaster_state(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        realization: HazardRealization,
        rng: np.random.Generator | None = None,
    ) -> SystemState:
        """Apply the natural-disaster impact to a deployed architecture."""
        failed = self._failed_assets(realization, rng)
        return initial_state(architecture, placement, failed)

    def outcome(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        realization: HazardRealization,
        scenario: ThreatScenario,
        rng: np.random.Generator | None = None,
    ) -> RealizationOutcome:
        """Run one realization through disaster, attack, and evaluation."""
        post_disaster = self.post_disaster_state(
            architecture, placement, realization, rng
        )
        post_attack = self.attacker.attack(post_disaster, scenario.budget, rng)
        return RealizationOutcome(
            realization_index=realization.index,
            post_disaster=post_disaster,
            post_attack=post_attack,
            state=evaluate(post_attack),
        )

    # ------------------------------------------------------------------
    # Ensemble-level analysis
    # ------------------------------------------------------------------
    def run(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        scenario: ThreatScenario,
    ) -> OperationalProfile:
        """Outcome probabilities for one configuration under one scenario."""
        rng = np.random.default_rng(self._seed)
        obs = current_observer()
        if not obs.enabled:
            states = [
                self.outcome(architecture, placement, r, scenario, rng).state
                for r in self.ensemble
            ]
            return OperationalProfile.from_states(states)
        return self._run_observed(architecture, placement, scenario, rng, obs)

    def _run_observed(
        self, architecture, placement, scenario, rng, obs
    ) -> OperationalProfile:
        """The same per-realization loop, timed stage by stage.

        The three Fig.-5 stages interleave per realization, so each
        stage's total is accumulated across the whole ensemble and
        reported as one aggregate child span (plus a histogram sample),
        rather than allocating thousands of span objects.
        """
        perf = time.perf_counter
        fragility_s = attack_s = classify_s = 0.0
        states = []
        with obs.span(
            "analysis.run", scenario=scenario.name, architecture=architecture.name
        ):
            for realization in self.ensemble:
                t0 = perf()
                post_disaster = self.post_disaster_state(
                    architecture, placement, realization, rng
                )
                t1 = perf()
                post_attack = self.attacker.attack(
                    post_disaster, scenario.budget, rng
                )
                t2 = perf()
                states.append(evaluate(post_attack))
                t3 = perf()
                fragility_s += t1 - t0
                attack_s += t2 - t1
                classify_s += t3 - t2
            n = len(states)
            obs.record_span("pipeline.fragility", fragility_s, realizations=n)
            obs.record_span("pipeline.attacker_search", attack_s, realizations=n)
            obs.record_span("pipeline.classification", classify_s, realizations=n)
            obs.inc("pipeline.realizations", n)
        for name, total in (
            ("pipeline.fragility_s", fragility_s),
            ("pipeline.attacker_search_s", attack_s),
            ("pipeline.classification_s", classify_s),
        ):
            obs.observe(name, total)
        return OperationalProfile.from_states(states)

    def run_matrix(
        self,
        architectures: Sequence[ArchitectureSpec],
        placement: Placement,
        scenarios: Sequence[ThreatScenario],
    ) -> ScenarioMatrix:
        """Profiles for every (scenario, architecture) pair.

        One scenario row group of the returned matrix corresponds to one
        figure of the paper.
        """
        obs = current_observer()
        matrix = ScenarioMatrix(placement_label=placement.label())
        with obs.span(
            "analysis.run_matrix",
            placement=placement.label(),
            cells=len(architectures) * len(scenarios),
        ):
            for scenario in scenarios:
                for architecture in architectures:
                    matrix.add(
                        scenario.name,
                        architecture.name,
                        self.run(architecture, placement, scenario),
                    )
        return matrix
