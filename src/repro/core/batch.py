"""Fused batched execution of the threat chain (the hot-path kernels).

The per-realization executor (:meth:`~repro.core.chain.ThreatChain.run_state`)
makes one Python pass per realization; this module holds the structures
the *batched* executor uses to evaluate the whole (realization x asset)
grid in a handful of numpy passes: fragility thresholds as one matrix
comparison, the grid/WAN cascade as one coupling call per *distinct*
damage pattern, the worst-case attack as a vectorized greedy sweep
(:meth:`~repro.core.attacker.WorstCaseAttacker.attack_batch`), and
Table I as a vectorized rule table
(:func:`~repro.core.evaluator.evaluate_batch`).

Correctness contract: the batched path must be **bitwise identical** to
looping ``run_state`` over the ensemble.  Everything here is a straight
vectorization of the scalar code in :mod:`repro.core.evaluator`,
:mod:`repro.core.attacker`, and :mod:`repro.core.chain` -- never a
re-derivation -- and ``tests/core/test_batch_properties.py`` compares
the two element-wise across randomized thresholds, attackers, and asset
sets for every registered preset.

Batching is only sound for stages that never consume the rng (the
per-realization loop hands one shared generator down the chain, and a
fused pass cannot replay its stream draw-for-draw), so batch support is
gated on the models' ``deterministic`` flags; stochastic models fall
back to the per-realization executor unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.evaluator import evaluate_batch
from repro.core.system_state import SiteStatus, SystemState
from repro.core.threat import ThreatScenario
from repro.hazards.fragility import FragilityModel
from repro.scada.architectures import ArchitectureSpec
from repro.scada.placement import Placement

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from repro.core.chain import Attacker

__all__ = [
    "ChainBatch",
    "BatchContext",
    "model_token",
    "attack_batch_fallback",
    "classify_batch",
]


def model_token(model: object) -> object:
    """A dict key identifying a model instance for memoization.

    Hashable models (the library's frozen dataclasses) key by value, so
    two equal thresholds share one failure matrix; unhashable models
    fall back to identity.
    """
    try:
        hash(model)
    except TypeError:
        return id(model)
    return model


@dataclass(frozen=True, eq=False)
class ChainBatch:
    """The batched analogue of a :class:`SystemState` mid-chain.

    All site arrays are aligned ``(n_realizations, n_sites)`` grids in
    the architecture's slot order.  ``failed`` is the hazard stage's
    ``(n_realizations, n_assets)`` failed-asset grid handed downstream
    (the batched analogue of ``ctx.extras["failed_assets"]``); it is
    ``None`` until a hazard stage runs.  ``classified`` is set by a
    classification stage: ``(n_realizations,)`` severity codes indexing
    :data:`~repro.core.states.STATE_ORDER`.
    """

    flooded: np.ndarray
    isolated: np.ndarray
    intrusions: np.ndarray
    failed: np.ndarray | None = None
    classified: np.ndarray | None = None

    def replace(self, **changes: object) -> "ChainBatch":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


class BatchContext:
    """Everything one batched chain run can read.

    The per-cell analogue of :class:`~repro.core.chain.ChainContext`:
    one is built per (architecture, placement, scenario) cell, wrapping
    the ensemble's full ``(n_realizations, n_assets)`` depth matrix
    instead of one realization.  ``matrix_cache`` is an externally owned
    memo (model token -> failure matrix) the pipeline shares across
    cells, so an ensemble pays one fragility pass per distinct model --
    the batched counterpart of the per-realization failed-asset memo.
    """

    __slots__ = (
        "architecture",
        "placement",
        "scenario",
        "fragility",
        "attacker",
        "asset_names",
        "depths",
        "site_names",
        "_site_columns",
        "_matrix_cache",
    )

    def __init__(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        scenario: ThreatScenario,
        *,
        fragility: FragilityModel,
        attacker: "Attacker",
        asset_names: list[str],
        depths: np.ndarray,
        matrix_cache: dict[object, np.ndarray] | None = None,
    ) -> None:
        self.architecture = architecture
        self.placement = placement
        self.scenario = scenario
        self.fragility = fragility
        self.attacker = attacker
        self.asset_names = list(asset_names)
        self.depths = depths
        self.site_names = placement.sites_for(architecture)
        columns = {name: i for i, name in enumerate(self.asset_names)}
        # A placed site absent from the hazard catalog never floods --
        # exactly as a name missing from a failed-asset set.
        self._site_columns = tuple(columns.get(n) for n in self.site_names)
        self._matrix_cache = {} if matrix_cache is None else matrix_cache

    @property
    def n_realizations(self) -> int:
        return int(self.depths.shape[0])

    def failure_matrix(self, model: FragilityModel | None = None) -> np.ndarray:
        """The (memoized) failed-asset grid under ``model``.

        ``None`` selects the analysis-level fragility model, mirroring
        how stages built without their own model inherit the context's.
        """
        resolved = model if model is not None else self.fragility
        token = model_token(resolved)
        try:
            return self._matrix_cache[token]
        except KeyError:
            pass
        matrix = resolved.failure_matrix(self.depths)
        self._matrix_cache[token] = matrix
        return matrix

    def flooded_sites(self, failed: np.ndarray) -> np.ndarray:
        """Map a failed-asset grid onto the placed site slots."""
        out = np.zeros((self.n_realizations, len(self.site_names)), dtype=bool)
        for j, col in enumerate(self._site_columns):
            if col is not None:
                out[:, j] = failed[:, col]
        return out

    def fresh_batch(self, failed: np.ndarray) -> ChainBatch:
        """The batched ``initial_state``: flooded sites, nothing else."""
        shape = (self.n_realizations, len(self.site_names))
        return ChainBatch(
            flooded=self.flooded_sites(failed),
            isolated=np.zeros(shape, dtype=bool),
            intrusions=np.zeros(shape, dtype=np.int64),
            failed=failed,
        )

    def base_batch(self) -> ChainBatch:
        """The batched ``base_state``: untouched by any hazard."""
        shape = (self.n_realizations, len(self.site_names))
        return ChainBatch(
            flooded=np.zeros(shape, dtype=bool),
            isolated=np.zeros(shape, dtype=bool),
            intrusions=np.zeros(shape, dtype=np.int64),
        )

    def state_from_rows(
        self,
        flooded: np.ndarray,
        isolated: np.ndarray,
        intrusions: np.ndarray,
    ) -> SystemState:
        """One row of the grid as a scalar :class:`SystemState`."""
        sites = tuple(
            SiteStatus(
                asset_name=name,
                spec=spec,
                flooded=bool(flooded[j]),
                isolated=bool(isolated[j]),
                intrusions=int(intrusions[j]),
            )
            for j, (name, spec) in enumerate(
                zip(self.site_names, self.architecture.sites)
            )
        )
        return SystemState(self.architecture, sites)


def attack_batch_fallback(
    attacker: "Attacker", ctx: BatchContext, batch: ChainBatch
) -> tuple[np.ndarray, np.ndarray]:
    """Batch any *deterministic* attacker by per-pattern replay.

    A deterministic attacker is a pure function of ``(state, budget)``,
    and the (flooded, isolated, intrusions) grid has far fewer distinct
    rows than realizations; run the scalar attack once per distinct row
    and scatter the results.  Used for deterministic attackers without
    their own ``attack_batch`` (e.g. the exhaustive oracle).
    """
    n_sites = len(ctx.site_names)
    key = np.hstack(
        [
            batch.flooded.astype(np.int64),
            batch.isolated.astype(np.int64),
            batch.intrusions.astype(np.int64),
        ]
    )
    patterns, inverse = np.unique(key, axis=0, return_inverse=True)
    inverse = np.asarray(inverse).reshape(-1)
    iso_out = np.zeros((len(patterns), n_sites), dtype=bool)
    intr_out = np.zeros((len(patterns), n_sites), dtype=np.int64)
    budget = ctx.scenario.budget
    for p, row in enumerate(patterns):
        state = ctx.state_from_rows(
            row[:n_sites] != 0,
            row[n_sites : 2 * n_sites] != 0,
            row[2 * n_sites :],
        )
        attacked = attacker.attack(state, budget, None)
        for j, site in enumerate(attacked.sites):
            iso_out[p, j] = site.isolated
            intr_out[p, j] = site.intrusions
    return iso_out[inverse], intr_out[inverse]


def classify_batch(ctx: BatchContext, batch: ChainBatch) -> np.ndarray:
    """Severity codes for every realization of a finished batch."""
    return evaluate_batch(
        ctx.architecture, batch.flooded, batch.isolated, batch.intrusions
    )
