"""Fused batched execution of the threat chain (the hot-path kernels).

The per-realization executor (:meth:`~repro.core.chain.ThreatChain.run_state`)
makes one Python pass per realization; this module holds the structures
the *batched* executor uses to evaluate the whole (realization x asset)
grid in a handful of numpy passes: fragility thresholds as one matrix
comparison, the grid/WAN cascade as one coupling call per *distinct*
damage pattern, the worst-case attack as a vectorized greedy sweep
(:meth:`~repro.core.attacker.WorstCaseAttacker.attack_batch`), and
Table I as a vectorized rule table
(:func:`~repro.core.evaluator.evaluate_batch`).

Correctness contract: the batched path must be **bitwise identical** to
looping ``run_state`` over the ensemble.  Everything here is a straight
vectorization of the scalar code in :mod:`repro.core.evaluator`,
:mod:`repro.core.attacker`, and :mod:`repro.core.chain` -- never a
re-derivation -- and ``tests/core/test_batch_properties.py`` compares
the two element-wise across randomized thresholds, attackers, and asset
sets for every registered preset.

Stochastic stages batch too, under the **RNG-draw contract**: every
stochastic model consumes a *fixed number* of uniform draws per
realization (``rng.random(shape)``, never data-dependent), so the
per-realization loop's interleaved stream is fixed-stride and the
batched executor can replay it exactly -- one
``rng.random((n_realizations, total_draws))`` matrix draw fills
row-major, which is the same generator stream as ``n`` successive
per-realization draws, and each stage reads its column block.  Stages
declare their capability (and per-realization draw count) through
:class:`BatchSupport`; :meth:`~repro.core.chain.ThreatChain.batch_plan`
folds the declarations into a :class:`ChainBatchPlan` the executor and
``run_batch`` auto-selection consult.  A stage whose model cannot
honor the contract declines with a reason, and the analysis falls back
to the per-realization executor (counter ``batch.fallback``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro._deprecation import warn_deprecated
from repro.core.evaluator import evaluate_batch
from repro.core.system_state import SiteStatus, SystemState
from repro.core.threat import ThreatScenario
from repro.errors import AnalysisError
from repro.hazards.fragility import FragilityModel
from repro.scada.architectures import ArchitectureSpec
from repro.scada.placement import Placement

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from repro.core.chain import Attacker

__all__ = [
    "BatchSupport",
    "ChainBatchPlan",
    "ChainBatch",
    "BatchContext",
    "model_token",
    "attack_batch_fallback",
    "classify_batch",
]


@dataclass(frozen=True)
class BatchSupport:
    """One stage's batch-capability declaration for a specific context.

    The richer successor of the bare ``supports_batch`` boolean:
    ``ok`` says whether the stage can run the fused pass, ``reason``
    names the obstacle when it cannot (surfaced through the
    ``batch.fallback`` counter and ``batch=True`` errors), and
    ``draws`` declares how many uniform rng doubles one *scalar*
    application of the stage consumes per realization -- the stage's
    stride in the RNG-draw contract (0 for deterministic stages).
    """

    ok: bool
    reason: str | None = None
    draws: int = 0


@dataclass(frozen=True)
class ChainBatchPlan:
    """A whole chain's batch verdict plus its per-stage draw layout.

    Built by :meth:`~repro.core.chain.ThreatChain.batch_plan` from the
    stages' :class:`BatchSupport` declarations.  ``stage_draws[i]`` is
    stage ``i``'s per-realization draw count; the executor materializes
    the scalar loop's whole stream as one
    ``rng.random((n_realizations, total_draws))`` matrix (row-major
    fill == per-realization draw order) and hands each stage its
    column block.
    """

    ok: bool
    reason: str | None = None
    stage_draws: tuple[int, ...] = ()
    #: Name of the declining stage when ``not ok`` (None when the whole
    #: context is unusable, e.g. no depth grid); keys the per-reason
    #: ``batch.fallback.reason.*`` counter split.
    stage: str | None = None

    @property
    def total_draws(self) -> int:
        """Uniform doubles one realization consumes across the chain."""
        return sum(self.stage_draws)

    def draw_blocks(
        self, n_realizations: int, rng: np.random.Generator | None
    ) -> tuple[np.ndarray | None, ...]:
        """Per-stage draw blocks replaying the scalar stream exactly.

        One ``rng.random((n, total))`` draw consumes the identical
        PCG64 stream as ``n`` successive per-realization scalar draws
        (numpy fills C-contiguous row-major), so slicing row ``r``'s
        columns reproduces realization ``r``'s draws bit for bit.
        """
        total = self.total_draws
        if total == 0:
            return tuple(None for _ in self.stage_draws)
        if rng is None:
            raise AnalysisError(
                f"chain draw plan needs an rng: stages consume "
                f"{total} stochastic draws per realization"
            )
        matrix = rng.random((n_realizations, total))
        blocks: list[np.ndarray | None] = []
        offset = 0
        for count in self.stage_draws:
            blocks.append(matrix[:, offset : offset + count] if count else None)
            offset += count
        return tuple(blocks)


def model_token(model: object) -> object:
    """A dict key identifying a model instance for memoization.

    Hashable models (the library's frozen dataclasses) key by value, so
    two equal thresholds share one failure matrix; unhashable models
    fall back to identity.
    """
    try:
        hash(model)
    except TypeError:
        return id(model)
    return model


@dataclass(frozen=True, eq=False)
class ChainBatch:
    """The batched analogue of a :class:`SystemState` mid-chain.

    All site arrays are aligned ``(n_realizations, n_sites)`` grids in
    the architecture's slot order.  ``failed`` is the hazard stage's
    ``(n_realizations, n_assets)`` failed-asset grid handed downstream
    (the batched analogue of ``ctx.extras["failed_assets"]``); it is
    ``None`` until a hazard stage runs.  ``classified`` is set by a
    classification stage: ``(n_realizations,)`` severity codes indexing
    :data:`~repro.core.states.STATE_ORDER`.
    """

    flooded: np.ndarray
    isolated: np.ndarray
    intrusions: np.ndarray
    failed: np.ndarray | None = None
    classified: np.ndarray | None = None

    def replace(self, **changes: object) -> "ChainBatch":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


class BatchContext:
    """Everything one batched chain run can read.

    The per-cell analogue of :class:`~repro.core.chain.ChainContext`:
    one is built per (architecture, placement, scenario) cell, wrapping
    the ensemble's full ``(n_realizations, n_assets)`` depth matrix
    instead of one realization.  ``matrix_cache`` is an externally owned
    memo (model token -> failure matrix) the pipeline shares across
    cells, so an ensemble pays one fragility pass per distinct model --
    the batched counterpart of the per-realization failed-asset memo.
    """

    __slots__ = (
        "architecture",
        "placement",
        "scenario",
        "fragility",
        "attacker",
        "asset_names",
        "depths",
        "site_names",
        "draws",
        "_site_columns",
        "_matrix_cache",
    )

    def __init__(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        scenario: ThreatScenario,
        *,
        fragility: FragilityModel,
        attacker: "Attacker",
        asset_names: list[str],
        depths: np.ndarray,
        matrix_cache: dict[object, np.ndarray] | None = None,
    ) -> None:
        self.architecture = architecture
        self.placement = placement
        self.scenario = scenario
        self.fragility = fragility
        self.attacker = attacker
        self.asset_names = list(asset_names)
        self.depths = depths
        self.site_names = placement.sites_for(architecture)
        columns = {name: i for i, name in enumerate(self.asset_names)}
        # A placed site absent from the hazard catalog never floods --
        # exactly as a name missing from a failed-asset set.
        self._site_columns = tuple(columns.get(n) for n in self.site_names)
        self._matrix_cache = {} if matrix_cache is None else matrix_cache
        #: The executor assigns the current stage's uniform draw block
        #: ((n_realizations, stage_draws) or ``None``) here immediately
        #: before each ``apply_batch`` call -- the batched analogue of
        #: handing the shared generator down the scalar chain.
        self.draws: np.ndarray | None = None

    @property
    def n_realizations(self) -> int:
        return int(self.depths.shape[0])

    def failure_matrix(self, model: FragilityModel | None = None) -> np.ndarray:
        """The (memoized) failed-asset grid under ``model``.

        ``None`` selects the analysis-level fragility model, mirroring
        how stages built without their own model inherit the context's.
        """
        resolved = model if model is not None else self.fragility
        token = model_token(resolved)
        try:
            return self._matrix_cache[token]
        except KeyError:
            pass
        matrix = resolved.failure_matrix(self.depths)
        self._matrix_cache[token] = matrix
        return matrix

    def probability_matrix(self, model: FragilityModel | None = None) -> np.ndarray:
        """The (memoized) failure-probability grid under ``model``.

        The stochastic counterpart of :meth:`failure_matrix`: a pure
        function of the depth grid (no draws), so it shares the same
        externally owned memo across matrix cells -- each cell then
        samples its own fresh draw block against it.  The sampled
        boolean outcomes are never cached (they depend on the cell's
        rng stream).
        """
        resolved = model if model is not None else self.fragility
        token = ("probability", model_token(resolved))
        try:
            return self._matrix_cache[token]
        except KeyError:
            pass
        matrix = resolved.probability_matrix(self.depths)
        self._matrix_cache[token] = matrix
        return matrix

    def flooded_sites(self, failed: np.ndarray) -> np.ndarray:
        """Map a failed-asset grid onto the placed site slots."""
        out = np.zeros((self.n_realizations, len(self.site_names)), dtype=bool)
        for j, col in enumerate(self._site_columns):
            if col is not None:
                out[:, j] = failed[:, col]
        return out

    def fresh_batch(self, failed: np.ndarray) -> ChainBatch:
        """The batched ``initial_state``: flooded sites, nothing else."""
        shape = (self.n_realizations, len(self.site_names))
        return ChainBatch(
            flooded=self.flooded_sites(failed),
            isolated=np.zeros(shape, dtype=bool),
            intrusions=np.zeros(shape, dtype=np.int64),
            failed=failed,
        )

    def base_batch(self) -> ChainBatch:
        """The batched ``base_state``: untouched by any hazard."""
        shape = (self.n_realizations, len(self.site_names))
        return ChainBatch(
            flooded=np.zeros(shape, dtype=bool),
            isolated=np.zeros(shape, dtype=bool),
            intrusions=np.zeros(shape, dtype=np.int64),
        )

    def state_from_rows(
        self,
        flooded: np.ndarray,
        isolated: np.ndarray,
        intrusions: np.ndarray,
    ) -> SystemState:
        """One row of the grid as a scalar :class:`SystemState`."""
        sites = tuple(
            SiteStatus(
                asset_name=name,
                spec=spec,
                flooded=bool(flooded[j]),
                isolated=bool(isolated[j]),
                intrusions=int(intrusions[j]),
            )
            for j, (name, spec) in enumerate(
                zip(self.site_names, self.architecture.sites)
            )
        )
        return SystemState(self.architecture, sites)


def attack_batch_fallback(
    attacker: "Attacker", ctx: BatchContext, batch: ChainBatch
) -> tuple[np.ndarray, np.ndarray]:
    """Deprecated alias for the per-pattern deterministic-attacker replay.

    The library's own attackers all carry a native ``attack_batch``
    under the unified RNG-draw signature now (the exhaustive oracle's
    is this same per-pattern replay); custom deterministic attackers
    without one are still replayed automatically by
    :class:`~repro.core.chain.CyberAttackStage`.  Calling this public
    shim warns; it is removed in 2.0.0.
    """
    warn_deprecated("repro.core.batch.attack_batch_fallback")
    return _replay_attack_batch(attacker, ctx, batch)


def _replay_attack_batch(
    attacker: "Attacker", ctx: BatchContext, batch: ChainBatch
) -> tuple[np.ndarray, np.ndarray]:
    """Batch any *deterministic* attacker by per-pattern replay.

    A deterministic attacker is a pure function of ``(state, budget)``,
    and the (flooded, isolated, intrusions) grid has far fewer distinct
    rows than realizations; run the scalar attack once per distinct row
    and scatter the results.  Used for custom deterministic attackers
    without their own ``attack_batch``.
    """
    n_sites = len(ctx.site_names)
    key = np.hstack(
        [
            batch.flooded.astype(np.int64),
            batch.isolated.astype(np.int64),
            batch.intrusions.astype(np.int64),
        ]
    )
    patterns, inverse = np.unique(key, axis=0, return_inverse=True)
    inverse = np.asarray(inverse).reshape(-1)
    iso_out = np.zeros((len(patterns), n_sites), dtype=bool)
    intr_out = np.zeros((len(patterns), n_sites), dtype=np.int64)
    budget = ctx.scenario.budget
    for p, row in enumerate(patterns):
        state = ctx.state_from_rows(
            row[:n_sites] != 0,
            row[n_sites : 2 * n_sites] != 0,
            row[2 * n_sites :],
        )
        attacked = attacker.attack(state, budget, None)
        for j, site in enumerate(attacked.sites):
            iso_out[p, j] = site.isolated
            intr_out[p, j] = site.intrusions
    return iso_out[inverse], intr_out[inverse]


def classify_batch(ctx: BatchContext, batch: ChainBatch) -> np.ndarray:
    """Severity codes for every realization of a finished batch."""
    return evaluate_batch(
        ctx.architecture, batch.flooded, batch.isolated, batch.intrusions
    )
