"""System states: the condition of every control site of a deployment.

A :class:`SystemState` snapshots a deployed architecture at a point in the
compound-threat timeline: which sites the hurricane flooded, which sites
the attacker isolated, and how many servers per site are intruded.  The
analysis pipeline derives a *post-natural-disaster* state from a hurricane
realization, the attacker transforms it into a *post-attack* state, and
the evaluator maps that to an operational state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.errors import AnalysisError
from repro.scada.architectures import ArchitectureSpec, SiteSpec
from repro.scada.placement import Placement


@dataclass(frozen=True)
class SiteStatus:
    """One control site's condition.

    ``flooded`` means the hurricane rendered the site non-operational (its
    servers are down); ``isolated`` means a network attack cut the site off
    (its servers run but cannot communicate); ``intrusions`` counts the
    site's servers under attacker control.
    """

    asset_name: str
    spec: SiteSpec
    flooded: bool = False
    isolated: bool = False
    intrusions: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.intrusions <= self.spec.replicas:
            raise AnalysisError(
                f"site {self.asset_name!r} cannot have {self.intrusions} "
                f"intrusions with {self.spec.replicas} replicas"
            )

    @property
    def functioning(self) -> bool:
        """Whether the site's servers are up and reachable."""
        return not self.flooded and not self.isolated

    @property
    def available_replicas(self) -> int:
        """Replicas that can participate in operations right now."""
        return self.spec.replicas if self.functioning else 0


@dataclass(frozen=True)
class SystemState:
    """A deployed architecture plus the condition of each of its sites."""

    architecture: ArchitectureSpec
    sites: tuple[SiteStatus, ...]

    def __post_init__(self) -> None:
        if len(self.sites) != len(self.architecture.sites):
            raise AnalysisError(
                f"state has {len(self.sites)} sites but architecture "
                f"{self.architecture.name!r} declares "
                f"{len(self.architecture.sites)}"
            )
        for status, spec in zip(self.sites, self.architecture.sites):
            if status.spec != spec:
                raise AnalysisError(
                    f"site {status.asset_name!r} status spec does not match "
                    f"the architecture slot {spec}"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def functioning_sites(self) -> tuple[int, ...]:
        """Indices of sites that are neither flooded nor isolated."""
        return tuple(i for i, s in enumerate(self.sites) if s.functioning)

    def available_replicas(self) -> int:
        """Total replicas in functioning sites."""
        return sum(s.available_replicas for s in self.sites)

    def intrusions_per_functioning_site(self) -> tuple[int, ...]:
        return tuple(s.intrusions for s in self.sites if s.functioning)

    def total_functioning_intrusions(self) -> int:
        return sum(self.intrusions_per_functioning_site())

    def max_site_intrusions(self) -> int:
        return max(self.intrusions_per_functioning_site(), default=0)

    # ------------------------------------------------------------------
    # Transitions (used by attackers)
    # ------------------------------------------------------------------
    def with_isolation(self, site_index: int) -> "SystemState":
        """A new state with the given site isolated."""
        self._check_index(site_index)
        sites = list(self.sites)
        sites[site_index] = replace(sites[site_index], isolated=True)
        return SystemState(self.architecture, tuple(sites))

    def with_intrusions(self, site_index: int, count: int) -> "SystemState":
        """A new state with ``count`` additional intrusions at a site."""
        self._check_index(site_index)
        if count < 0:
            raise AnalysisError("intrusion count cannot be negative")
        sites = list(self.sites)
        site = sites[site_index]
        sites[site_index] = replace(site, intrusions=site.intrusions + count)
        return SystemState(self.architecture, tuple(sites))

    def _check_index(self, site_index: int) -> None:
        if not 0 <= site_index < len(self.sites):
            raise AnalysisError(
                f"site index {site_index} outside [0, {len(self.sites)})"
            )


def initial_state(
    architecture: ArchitectureSpec,
    placement: Placement,
    failed_assets: Iterable[str] = (),
) -> SystemState:
    """The post-natural-disaster state of a deployment.

    ``failed_assets`` are the asset names rendered non-operational by the
    disaster (from the fragility model applied to a hurricane realization);
    any placed site whose asset is in that set starts flooded.
    """
    failed = frozenset(failed_assets)
    asset_names = placement.sites_for(architecture)
    sites = tuple(
        SiteStatus(asset_name=name, spec=spec, flooded=name in failed)
        for name, spec in zip(asset_names, architecture.sites)
    )
    return SystemState(architecture, sites)
