"""Operational-state evaluation (the paper's Table I).

Maps a :class:`~repro.core.system_state.SystemState` to an operational
state.  Two implementations are provided:

* :func:`evaluate` -- the *generic* rules, driven by the architecture's
  family and replication sizing.  These work for any architecture the
  framework can express (more sites, higher f), and specialize exactly to
  Table I for the paper's five configurations.
* :func:`evaluate_table1` -- a literal transcription of Table I for the
  five named configurations, used as a cross-check oracle in tests.

Safety (gray) semantics: intrusions only count while their site is
functioning -- servers in a flooded site are down, and servers in an
isolated site cannot reach the rest of the system.  For the single-site
and primary-backup families each site runs its own replication group, so
gray requires more than ``f`` intrusions *within one functioning site*;
for active multi-site replication the sites form one global group, so
intrusions across all functioning sites are summed.
"""

from __future__ import annotations

import numpy as np

from repro.core.states import OperationalState
from repro.core.system_state import SystemState
from repro.errors import AnalysisError
from repro.scada.architectures import ArchitectureFamily, ArchitectureSpec
from repro.scada.replication import can_make_progress


def safety_compromised(state: SystemState) -> bool:
    """Whether intrusions exceed what the replication protocol tolerates."""
    arch = state.architecture
    if arch.family is ArchitectureFamily.ACTIVE_MULTISITE:
        effective = state.total_functioning_intrusions()
    else:
        effective = state.max_site_intrusions()
    return effective > arch.intrusions_f


def evaluate(state: SystemState) -> OperationalState:
    """The generic Table-I rules for any expressible architecture."""
    if safety_compromised(state):
        return OperationalState.GRAY

    arch = state.architecture
    if arch.family is ArchitectureFamily.SINGLE_SITE:
        site = state.sites[0]
        return OperationalState.GREEN if site.functioning else OperationalState.RED

    if arch.family is ArchitectureFamily.PRIMARY_BACKUP:
        primary, backup = state.sites
        if primary.functioning:
            return OperationalState.GREEN
        if backup.functioning:
            return OperationalState.ORANGE
        return OperationalState.RED

    if arch.family is ArchitectureFamily.ACTIVE_MULTISITE:
        live = can_make_progress(
            available_replicas=state.available_replicas(),
            total_replicas=arch.total_replicas,
            intrusions_f=arch.intrusions_f,
            recoveries_k=arch.recoveries_k,
        )
        return OperationalState.GREEN if live else OperationalState.RED

    raise AnalysisError(f"unknown architecture family {arch.family!r}")


_GREEN = OperationalState.GREEN.severity
_ORANGE = OperationalState.ORANGE.severity
_RED = OperationalState.RED.severity
_GRAY = OperationalState.GRAY.severity


def evaluate_batch(
    architecture: ArchitectureSpec,
    flooded: np.ndarray,
    isolated: np.ndarray,
    intrusions: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`evaluate` over a (realization x site) grid.

    The inputs are aligned ``(R, S)`` arrays in the architecture's slot
    order; the result is a ``(R,)`` ``uint8`` array of severity codes --
    ``codes[i]`` equals ``evaluate(state_i).severity`` and indexes
    :data:`~repro.core.states.STATE_ORDER`.  A straight vectorization of
    the scalar rules above (the batched-executor tests compare the two
    element-wise), one rule table per architecture family.
    """
    functioning = ~(flooded | isolated)
    effective = np.where(functioning, intrusions, 0)
    if architecture.family is ArchitectureFamily.ACTIVE_MULTISITE:
        compromised = effective.sum(axis=1) > architecture.intrusions_f
    else:
        compromised = effective.max(axis=1) > architecture.intrusions_f

    if architecture.family is ArchitectureFamily.SINGLE_SITE:
        codes = np.where(functioning[:, 0], _GREEN, _RED)
    elif architecture.family is ArchitectureFamily.PRIMARY_BACKUP:
        codes = np.where(
            functioning[:, 0],
            _GREEN,
            np.where(functioning[:, 1], _ORANGE, _RED),
        )
    elif architecture.family is ArchitectureFamily.ACTIVE_MULTISITE:
        replicas = np.array(
            [site.replicas for site in architecture.sites], dtype=np.int64
        )
        available = functioning @ replicas
        # Liveness via the exact scalar predicate, tabulated over every
        # possible available-replica count (a handful of values).
        live = np.array(
            [
                can_make_progress(
                    available_replicas=a,
                    total_replicas=architecture.total_replicas,
                    intrusions_f=architecture.intrusions_f,
                    recoveries_k=architecture.recoveries_k,
                )
                for a in range(architecture.total_replicas + 1)
            ]
        )
        codes = np.where(live[available], _GREEN, _RED)
    else:
        raise AnalysisError(f"unknown architecture family {architecture.family!r}")
    return np.where(compromised, _GRAY, codes).astype(np.uint8)


def evaluate_table1(state: SystemState) -> OperationalState:
    """Literal transcription of the paper's Table I for the five configs.

    Only valid for the named configurations "2", "2-2", "6", "6-6", and
    "6+6+6"; used as a reference oracle to cross-check :func:`evaluate`.
    """
    name = state.architecture.name
    sites = state.sites

    if name == "2":
        if sites[0].functioning and sites[0].intrusions >= 1:
            return OperationalState.GRAY
        if sites[0].functioning:
            return OperationalState.GREEN
        return OperationalState.RED

    if name == "2-2":
        if any(s.functioning and s.intrusions >= 1 for s in sites):
            return OperationalState.GRAY
        primary, backup = sites
        if primary.functioning:
            return OperationalState.GREEN
        if backup.functioning:
            return OperationalState.ORANGE
        return OperationalState.RED

    if name == "6":
        if sites[0].functioning and sites[0].intrusions >= 2:
            return OperationalState.GRAY
        if sites[0].functioning:
            return OperationalState.GREEN
        return OperationalState.RED

    if name == "6-6":
        if any(s.functioning and s.intrusions >= 2 for s in sites):
            return OperationalState.GRAY
        primary, backup = sites
        if primary.functioning:
            return OperationalState.GREEN
        if backup.functioning:
            return OperationalState.ORANGE
        return OperationalState.RED

    if name == "6+6+6":
        if sum(s.intrusions for s in sites if s.functioning) >= 2:
            return OperationalState.GRAY
        up = sum(1 for s in sites if s.functioning)
        return OperationalState.GREEN if up >= 2 else OperationalState.RED

    raise AnalysisError(
        f"evaluate_table1 only covers the paper's five configurations, "
        f"not {name!r}"
    )
