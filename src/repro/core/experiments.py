"""Declarative experiment grids: sweep everything, get tidy records.

``run_matrix`` covers one placement; real studies sweep placements,
fragility assumptions, and attacker models too.  The grid runner executes
the full cross-product and returns flat records (one per cell per
operational state is avoided -- one record per cell with all four
probabilities and their confidence intervals), ready for CSV export or a
dataframe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.outcomes import OperationalProfile
from repro.core.pipeline import Attacker, CompoundThreatAnalysis
from repro.core.states import STATE_ORDER
from repro.core.threat import ThreatScenario
from repro.errors import AnalysisError
from repro.hazards.base import HazardEnsemble
from repro.hazards.fragility import FragilityModel
from repro.scada.architectures import ArchitectureSpec
from repro.scada.placement import Placement


@dataclass(frozen=True)
class ExperimentRecord:
    """One (architecture, placement, scenario) cell of a grid."""

    architecture: str
    placement: str
    scenario: str
    profile: OperationalProfile

    def to_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "architecture": self.architecture,
            "placement": self.placement,
            "scenario": self.scenario,
            "realizations": self.profile.total,
        }
        for state in STATE_ORDER:
            low, high = self.profile.confidence_interval(state)
            row[state.value] = self.profile.probability(state)
            row[f"{state.value}_ci_low"] = low
            row[f"{state.value}_ci_high"] = high
        return row


def run_experiment_grid(
    ensemble: HazardEnsemble,
    architectures: Sequence[ArchitectureSpec],
    placements: Sequence[Placement],
    scenarios: Sequence[ThreatScenario],
    fragility: FragilityModel | None = None,
    attacker: Attacker | None = None,
    seed: int = 0,
) -> list[ExperimentRecord]:
    """Run the full cross-product of the grid's axes."""
    if not architectures or not placements or not scenarios:
        raise AnalysisError("every grid axis needs at least one entry")
    analysis = CompoundThreatAnalysis(
        ensemble, fragility=fragility, attacker=attacker, seed=seed
    )
    records = []
    for placement in placements:
        for scenario in scenarios:
            for architecture in architectures:
                profile = analysis.run(architecture, placement, scenario)
                records.append(
                    ExperimentRecord(
                        architecture=architecture.name,
                        placement=placement.label(),
                        scenario=scenario.name,
                        profile=profile,
                    )
                )
    return records


def records_to_csv(records: Sequence[ExperimentRecord]) -> str:
    """Flatten grid records to CSV text."""
    if not records:
        raise AnalysisError("no records to export")
    rows = [record.to_row() for record in records]
    columns = list(rows[0])
    lines = [",".join(columns)]
    for row in rows:
        cells = []
        for column in columns:
            value = row[column]
            if isinstance(value, float):
                cells.append(f"{value:.6f}")
            else:
                cells.append(str(value).replace(",", ";"))
        lines.append(",".join(cells))
    return "\n".join(lines)
