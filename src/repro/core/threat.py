"""The compound threat model (paper Section III-B).

A compound threat has two stages: a natural disaster (modeled by the
hazard substrate as asset failures), then a cyberattack with a *budget*
of capabilities -- how many servers the attacker can intrude and how many
sites it can isolate.  The paper studies four scenarios; the budget
abstraction also supports stronger attackers for extension studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.registry import Registry


@dataclass(frozen=True)
class CyberAttackBudget:
    """The attacker's capabilities after seeing the disaster outcome."""

    intrusions: int = 0
    isolations: int = 0

    def __post_init__(self) -> None:
        if self.intrusions < 0 or self.isolations < 0:
            raise ConfigurationError("attack budget cannot be negative")

    @property
    def is_empty(self) -> bool:
        return self.intrusions == 0 and self.isolations == 0


@dataclass(frozen=True)
class ThreatScenario:
    """A named compound-threat scenario: hurricane plus an attack budget."""

    name: str
    budget: CyberAttackBudget
    description: str = ""


#: Baseline: the hurricane alone, no cyberattack.
HURRICANE = ThreatScenario(
    "hurricane",
    CyberAttackBudget(),
    "Natural disaster only; control sites may flood, no attacker.",
)

#: Hurricane followed by one successful server intrusion.
HURRICANE_INTRUSION = ThreatScenario(
    "hurricane+intrusion",
    CyberAttackBudget(intrusions=1),
    "Attacker compromises one SCADA master after the hurricane.",
)

#: Hurricane followed by one successful site-isolation attack.
HURRICANE_ISOLATION = ThreatScenario(
    "hurricane+isolation",
    CyberAttackBudget(isolations=1),
    "Attacker isolates one control site from the network after the hurricane.",
)

#: The full compound threat: hurricane + intrusion + isolation.
HURRICANE_INTRUSION_ISOLATION = ThreatScenario(
    "hurricane+intrusion+isolation",
    CyberAttackBudget(intrusions=1, isolations=1),
    "Attacker compromises a SCADA master and isolates a control site.",
)

PAPER_SCENARIOS: tuple[ThreatScenario, ...] = (
    HURRICANE,
    HURRICANE_INTRUSION,
    HURRICANE_ISOLATION,
    HURRICANE_INTRUSION_ISOLATION,
)

_BY_NAME: Registry[ThreatScenario] = Registry(
    "threat scenario", plural="threat scenarios"
)
for _scenario in PAPER_SCENARIOS:
    _BY_NAME.register(_scenario.name, _scenario)


def get_scenario(name: str) -> ThreatScenario:
    """Look up one of the paper's four threat scenarios by name."""
    return _BY_NAME.get(name)


def available_scenarios() -> list[str]:
    """Registered threat-scenario names, sorted."""
    return _BY_NAME.available()
