"""Compound-event timelines: from operational states to downtime hours.

The static framework classifies each realization into a color; this
extension rolls the colors out over time.  A compound event unfolds as:

* ``t = 0``               -- disaster impact: flooded sites go down, each
  with a sampled restoration time;
* ``t = attack_delay_h``  -- the attacker strikes the post-disaster
  system (the paper's "aftermath" timing); a site isolation is sustained
  for ``isolation_duration_h``; a safety-compromising intrusion keeps the
  system untrusted until incident response finishes;
* cold-backup activation takes ``cold_activation_h`` whenever service
  fails over to a cold site (the orange state's price);
* repairs restore flooded sites; the horizon closes the books.

The result is a piecewise state timeline per realization and, over an
ensemble, the downtime distribution per architecture -- the quantity a
resilience planner actually budgets against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.attacker import WorstCaseAttacker
from repro.core.pipeline import Attacker
from repro.core.states import OperationalState
from repro.core.system_state import SystemState, initial_state
from repro.core.threat import ThreatScenario
from repro.errors import AnalysisError
from repro.hazards.base import HazardEnsemble, HazardRealization
from repro.hazards.fragility import FragilityModel, ThresholdFragility
from repro.scada.architectures import ArchitectureFamily, ArchitectureSpec
from repro.scada.placement import Placement
from repro.scada.replication import can_make_progress


@dataclass(frozen=True)
class TimelineParams:
    """Timing of a compound event."""

    attack_delay_h: float = 6.0
    isolation_duration_h: float = 48.0
    cold_activation_h: float = 10.0 / 60.0
    site_repair_median_h: float = 72.0
    site_repair_log_sd: float = 0.5
    intrusion_cleanup_h: float = 24.0
    horizon_h: float = 14.0 * 24.0
    repair_crews: int = 0  # 0 = unlimited (all sites repaired in parallel)

    def __post_init__(self) -> None:
        if self.attack_delay_h < 0 or self.isolation_duration_h < 0:
            raise AnalysisError("attack timings cannot be negative")
        if self.cold_activation_h < 0 or self.intrusion_cleanup_h < 0:
            raise AnalysisError("recovery timings cannot be negative")
        if self.site_repair_median_h <= 0 or self.site_repair_log_sd < 0:
            raise AnalysisError("repair distribution must be positive")
        if self.horizon_h <= self.attack_delay_h:
            raise AnalysisError("horizon must extend past the attack")
        if self.repair_crews < 0:
            raise AnalysisError("repair crews cannot be negative")


@dataclass(frozen=True)
class TimelineSegment:
    start_h: float
    end_h: float
    state: OperationalState

    @property
    def duration_h(self) -> float:
        return self.end_h - self.start_h


@dataclass(frozen=True)
class TimelineResult:
    """One realization's piecewise operational-state history."""

    segments: tuple[TimelineSegment, ...]

    def hours_in(self, state: OperationalState) -> float:
        return sum(s.duration_h for s in self.segments if s.state is state)

    @property
    def unavailable_h(self) -> float:
        """Hours the system was not serving (orange failovers + red)."""
        return self.hours_in(OperationalState.ORANGE) + self.hours_in(
            OperationalState.RED
        )

    @property
    def unsafe_h(self) -> float:
        """Hours the system served while compromised (gray)."""
        return self.hours_in(OperationalState.GRAY)

    @property
    def availability(self) -> float:
        total = self.segments[-1].end_h - self.segments[0].start_h
        return 1.0 - (self.unavailable_h + self.unsafe_h) / total


class CompoundEventTimeline:
    """Simulates the temporal unfolding of one compound event."""

    def __init__(
        self,
        params: TimelineParams | None = None,
        fragility: FragilityModel | None = None,
        attacker: Attacker | None = None,
    ) -> None:
        self.params = params or TimelineParams()
        self.fragility = fragility or ThresholdFragility()
        self.attacker = attacker or WorstCaseAttacker()

    # ------------------------------------------------------------------
    # Single realization
    # ------------------------------------------------------------------
    def simulate(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        realization: HazardRealization,
        scenario: ThreatScenario,
        rng: np.random.Generator,
    ) -> TimelineResult:
        p = self.params
        failed = realization.failed_assets(self.fragility, rng)
        post_disaster = initial_state(architecture, placement, failed)
        attacked = self.attacker.attack(post_disaster, scenario.budget, rng)

        # Per-site outage windows.
        repair_duration: dict[int, float] = {}
        isolated_until: dict[int, float] = {}
        intruded: dict[int, int] = {}
        for idx, (before, after) in enumerate(
            zip(post_disaster.sites, attacked.sites)
        ):
            if before.flooded:
                repair_duration[idx] = float(
                    p.site_repair_median_h
                    * math.exp(rng.normal(0.0, p.site_repair_log_sd))
                )
            if after.isolated:
                isolated_until[idx] = p.attack_delay_h + p.isolation_duration_h
            if after.intrusions:
                intruded[idx] = after.intrusions
        repair_at = self._schedule_repairs(repair_duration)

        cleanup_at = p.attack_delay_h + p.intrusion_cleanup_h

        boundaries = {0.0, p.attack_delay_h, p.horizon_h}
        boundaries.update(t for t in repair_at.values() if t < p.horizon_h)
        boundaries.update(t for t in isolated_until.values() if t < p.horizon_h)
        if intruded:
            boundaries.add(min(cleanup_at, p.horizon_h))
        times = sorted(boundaries)

        segments: list[TimelineSegment] = []
        active_site: int | None = None
        activation_done = 0.0
        for t0, t1 in zip(times, times[1:]):
            functioning = self._functioning_at(
                architecture, repair_at, isolated_until, t0, p
            )
            gray = self._gray_at(architecture, intruded, functioning, t0, cleanup_at, p)
            if gray:
                segments.append(TimelineSegment(t0, t1, OperationalState.GRAY))
                continue
            if architecture.family is ArchitectureFamily.ACTIVE_MULTISITE:
                available = sum(
                    architecture.sites[i].replicas for i in functioning
                )
                live = can_make_progress(
                    available,
                    architecture.total_replicas,
                    architecture.intrusions_f,
                    architecture.recoveries_k,
                )
                state = OperationalState.GREEN if live else OperationalState.RED
                segments.append(TimelineSegment(t0, t1, state))
                continue
            # Single-site / primary-backup: sticky serving site with
            # cold-activation delay on every switch to a cold site.
            if active_site is not None and active_site not in functioning:
                active_site = None
            if active_site is None and functioning:
                active_site = functioning[0]
                if architecture.sites[active_site].cold:
                    activation_done = t0 + p.cold_activation_h
                else:
                    activation_done = t0
            if active_site is None:
                segments.append(TimelineSegment(t0, t1, OperationalState.RED))
                continue
            if activation_done > t0:
                split = min(activation_done, t1)
                segments.append(TimelineSegment(t0, split, OperationalState.ORANGE))
                if split < t1:
                    segments.append(
                        TimelineSegment(split, t1, OperationalState.GREEN)
                    )
            else:
                segments.append(TimelineSegment(t0, t1, OperationalState.GREEN))

        return TimelineResult(segments=tuple(self._merge(segments)))

    def _schedule_repairs(self, durations: dict[int, float]) -> dict[int, float]:
        """Completion time per flooded site, honoring the crew limit.

        With ``repair_crews == 0`` every site is repaired in parallel;
        otherwise crews take sites in priority order (primary first) and
        each works one site at a time.
        """
        crews = self.params.repair_crews
        if crews == 0 or len(durations) <= crews:
            return dict(durations)
        crew_free = [0.0] * crews
        completion: dict[int, float] = {}
        for idx in sorted(durations):  # site order == priority order
            soonest = min(range(crews), key=lambda c: crew_free[c])
            finish = crew_free[soonest] + durations[idx]
            crew_free[soonest] = finish
            completion[idx] = finish
        return completion

    @staticmethod
    def _functioning_at(
        architecture: ArchitectureSpec,
        repair_at: dict[int, float],
        isolated_until: dict[int, float],
        t: float,
        p: TimelineParams,
    ) -> list[int]:
        out = []
        for idx in range(architecture.num_sites):
            if idx in repair_at and t < repair_at[idx]:
                continue
            if idx in isolated_until and p.attack_delay_h <= t < isolated_until[idx]:
                continue
            out.append(idx)
        return out

    @staticmethod
    def _gray_at(
        architecture: ArchitectureSpec,
        intruded: dict[int, int],
        functioning: list[int],
        t: float,
        cleanup_at: float,
        p: TimelineParams,
    ) -> bool:
        if not intruded or not (p.attack_delay_h <= t < cleanup_at):
            return False
        counts = [
            count for idx, count in intruded.items() if idx in functioning
        ]
        if architecture.family is ArchitectureFamily.ACTIVE_MULTISITE:
            return sum(counts) > architecture.intrusions_f
        return max(counts, default=0) > architecture.intrusions_f

    @staticmethod
    def _merge(segments: list[TimelineSegment]) -> list[TimelineSegment]:
        merged: list[TimelineSegment] = []
        for seg in segments:
            if seg.duration_h <= 0:
                continue
            if merged and merged[-1].state is seg.state:
                merged[-1] = TimelineSegment(
                    merged[-1].start_h, seg.end_h, seg.state
                )
            else:
                merged.append(seg)
        return merged

    # ------------------------------------------------------------------
    # Ensemble-level metrics
    # ------------------------------------------------------------------
    def downtime_distribution(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        ensemble: HazardEnsemble,
        scenario: ThreatScenario,
        seed: int = 0,
    ) -> "DowntimeDistribution":
        rng = np.random.default_rng(seed)
        unavailable = []
        unsafe = []
        for realization in ensemble:
            result = self.simulate(
                architecture, placement, realization, scenario, rng
            )
            unavailable.append(result.unavailable_h)
            unsafe.append(result.unsafe_h)
        return DowntimeDistribution(
            unavailable_h=np.array(unavailable), unsafe_h=np.array(unsafe)
        )


@dataclass(frozen=True)
class DowntimeDistribution:
    """Per-ensemble downtime statistics for one configuration/scenario."""

    unavailable_h: np.ndarray
    unsafe_h: np.ndarray

    @property
    def mean_unavailable_h(self) -> float:
        return float(np.mean(self.unavailable_h))

    @property
    def mean_unsafe_h(self) -> float:
        return float(np.mean(self.unsafe_h))

    def quantile_unavailable_h(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise AnalysisError("quantile must be in [0, 1]")
        return float(np.quantile(self.unavailable_h, q))

    def summary(self) -> str:
        return (
            f"unavailable mean={self.mean_unavailable_h:.1f}h "
            f"p50={self.quantile_unavailable_h(0.5):.1f}h "
            f"p95={self.quantile_unavailable_h(0.95):.1f}h; "
            f"unsafe mean={self.mean_unsafe_h:.1f}h"
        )
