"""The paper's primary contribution: compound-threat analysis framework."""

from repro.core.attacker import (
    ExhaustiveAttacker,
    ProbabilisticAttacker,
    WorstCaseAttacker,
)
from repro.core.chain import (
    CHAIN_EARTHQUAKE,
    CHAIN_GRID_COUPLED,
    CHAIN_PAPER,
    ChainContext,
    ClassificationStage,
    CyberAttackStage,
    HazardImpactStage,
    InterdependencyStage,
    NoOpStage,
    Stage,
    ThreatChain,
    available_chains,
    get_chain,
    register_chain,
    resolve_chain,
)
from repro.core.evaluator import evaluate, evaluate_table1, safety_compromised
from repro.core.outcomes import OperationalProfile, ScenarioMatrix
from repro.core.pipeline import (
    Attacker,
    CompoundThreatAnalysis,
    RealizationOutcome,
)
from repro.core.experiments import (
    ExperimentRecord,
    records_to_csv,
    run_experiment_grid,
)
from repro.core.realistic import ResourceConstrainedAttacker
from repro.core.report import (
    format_matrix_csv,
    format_matrix_markdown,
    format_matrix_report,
    format_profile_table,
)
from repro.core.states import STATE_ORDER, OperationalState, worst_state
from repro.core.stats import (
    ProportionTest,
    compare_profiles,
    required_realizations,
    two_proportion_test,
)
from repro.core.system_state import SiteStatus, SystemState, initial_state
from repro.core.timeline import (
    CompoundEventTimeline,
    DowntimeDistribution,
    TimelineParams,
    TimelineResult,
    TimelineSegment,
)
from repro.core.threat import (
    HURRICANE,
    HURRICANE_INTRUSION,
    HURRICANE_INTRUSION_ISOLATION,
    HURRICANE_ISOLATION,
    PAPER_SCENARIOS,
    CyberAttackBudget,
    ThreatScenario,
    get_scenario,
)

__all__ = [
    "OperationalState",
    "STATE_ORDER",
    "worst_state",
    "SiteStatus",
    "SystemState",
    "initial_state",
    "CyberAttackBudget",
    "ThreatScenario",
    "get_scenario",
    "HURRICANE",
    "HURRICANE_INTRUSION",
    "HURRICANE_ISOLATION",
    "HURRICANE_INTRUSION_ISOLATION",
    "PAPER_SCENARIOS",
    "WorstCaseAttacker",
    "ExhaustiveAttacker",
    "ProbabilisticAttacker",
    "ResourceConstrainedAttacker",
    "evaluate",
    "evaluate_table1",
    "safety_compromised",
    "OperationalProfile",
    "ScenarioMatrix",
    "Attacker",
    "CompoundThreatAnalysis",
    "RealizationOutcome",
    "Stage",
    "ThreatChain",
    "ChainContext",
    "HazardImpactStage",
    "InterdependencyStage",
    "CyberAttackStage",
    "ClassificationStage",
    "NoOpStage",
    "CHAIN_PAPER",
    "CHAIN_GRID_COUPLED",
    "CHAIN_EARTHQUAKE",
    "get_chain",
    "register_chain",
    "available_chains",
    "resolve_chain",
    "format_profile_table",
    "format_matrix_report",
    "format_matrix_csv",
    "format_matrix_markdown",
    "CompoundEventTimeline",
    "TimelineParams",
    "TimelineResult",
    "TimelineSegment",
    "DowntimeDistribution",
    "ProportionTest",
    "two_proportion_test",
    "compare_profiles",
    "required_realizations",
    "ExperimentRecord",
    "run_experiment_grid",
    "records_to_csv",
]
