"""Cyberattack models (paper Section V-B).

The paper models a *worst-case* attacker: it observes the post-disaster
system state and spends its budget (intrusions, isolations) to cause the
maximum possible damage.  Enumerating every combination of targets is
exact but inefficient; the paper gives a 3-rule greedy algorithm that is
guaranteed worst-case for the architectures considered:

1. If the attacker can compromise system safety, it does so.
2. Otherwise it isolates sites in priority order: primary control center
   first (if still functioning), then the backup, then data centers.
3. Remaining intrusions go to servers that would otherwise be functional.

:class:`WorstCaseAttacker` implements the greedy algorithm and
:class:`ExhaustiveAttacker` the brute-force enumeration; the test suite
and an ablation benchmark verify they always produce states of equal
severity.  :class:`ProbabilisticAttacker` explores the paper's
future-work question of attackers whose capabilities only succeed with
some probability.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.evaluator import evaluate, evaluate_batch
from repro.core.system_state import SiteStatus, SystemState
from repro.core.threat import CyberAttackBudget
from repro.errors import AnalysisError
from repro.scada.architectures import ArchitectureFamily, ArchitectureSpec


def _replay_rows(
    attacker: "ExhaustiveAttacker | WorstCaseAttacker",
    architecture: ArchitectureSpec,
    flooded: np.ndarray,
    isolated: np.ndarray,
    intrusions: np.ndarray,
    budget: CyberAttackBudget,
) -> tuple[np.ndarray, np.ndarray]:
    """Batch a deterministic attacker by replaying distinct rows.

    The scalar ``attack`` is a pure function of ``(state, budget)`` and
    never reads site *names*, so each distinct (flooded, isolated,
    intrusions) row is attacked once on a placeholder-named state and
    the result scattered back to every realization sharing it.
    """
    n_sites = flooded.shape[1]
    key = np.hstack(
        [
            flooded.astype(np.int64),
            isolated.astype(np.int64),
            intrusions.astype(np.int64),
        ]
    )
    patterns, inverse = np.unique(key, axis=0, return_inverse=True)
    inverse = np.asarray(inverse).reshape(-1)
    iso_out = np.zeros((len(patterns), n_sites), dtype=bool)
    intr_out = np.zeros((len(patterns), n_sites), dtype=np.int64)
    for p, row in enumerate(patterns):
        sites = tuple(
            SiteStatus(
                asset_name=f"site-{j}",
                spec=spec,
                flooded=bool(row[j]),
                isolated=bool(row[n_sites + j]),
                intrusions=int(row[2 * n_sites + j]),
            )
            for j, spec in enumerate(architecture.sites)
        )
        attacked = attacker.attack(SystemState(architecture, sites), budget, None)
        for j, site in enumerate(attacked.sites):
            iso_out[p, j] = site.isolated
            intr_out[p, j] = site.intrusions
    return iso_out[inverse], intr_out[inverse]


def _serving_site_order(state: SystemState) -> list[int]:
    """Functioning site indices in attack-priority order.

    Primary first, then backups, then data centers; ties broken by slot
    position.  This is both the isolation order (rule 2) and the intrusion
    placement preference (rule 3: hit the site currently serving).
    """
    functioning = state.functioning_sites()
    return sorted(
        functioning,
        key=lambda i: (state.architecture.sites[i].role.attack_priority, i),
    )


class WorstCaseAttacker:
    """The paper's greedy worst-case attack algorithm.

    The guarantee (same damage severity as exhaustive enumeration) is
    verified by tests and the attacker ablation benchmark for the paper's
    architectures, including states that already carry intrusions.  For
    hand-built active multi-site architectures with *unequal* site sizes
    the isolation priority order may be suboptimal.
    """

    name = "worst-case"
    #: Pure function of the state: never consumes the rng, so chains
    #: whose attack stage uses it keep a deterministic prefix.
    deterministic = True

    def attack(
        self,
        state: SystemState,
        budget: CyberAttackBudget,
        rng: np.random.Generator | None = None,
    ) -> SystemState:
        del rng  # deterministic attacker
        if budget.is_empty:
            return state
        compromised = self._try_compromise_safety(state, budget)
        if compromised is not None:
            return compromised
        after_isolation = self._apply_isolations(state, budget.isolations)
        attacked = self._apply_intrusions(after_isolation, budget.intrusions)
        # Doing nothing is always within the attacker's power: never
        # return an outcome milder than the starting state (isolating a
        # site that already hosts the attacker's intrusions would
        # otherwise *reduce* severity on pre-compromised states).
        if evaluate(attacked).severity < evaluate(state).severity:
            return state
        return attacked

    # -- rule 1 ---------------------------------------------------------
    def _try_compromise_safety(
        self, state: SystemState, budget: CyberAttackBudget
    ) -> SystemState | None:
        """Break safety if the intrusion budget allows it, else ``None``.

        Accounts for intrusions already present in functioning sites: the
        attacker only needs to top the count up past ``f``.
        """
        arch = state.architecture
        target = arch.intrusions_f + 1
        order = _serving_site_order(state)
        if arch.family is ArchitectureFamily.ACTIVE_MULTISITE:
            # One global replication group: the functioning-site total
            # must exceed f.
            deficit = target - state.total_functioning_intrusions()
            if deficit <= 0:
                return state  # safety is already compromised
            if budget.intrusions < deficit:
                return None
            placed = 0
            result = state
            for idx in order:
                if placed >= deficit:
                    break
                site = state.sites[idx]
                count = min(deficit - placed, site.spec.replicas - site.intrusions)
                if count > 0:
                    result = result.with_intrusions(idx, count)
                    placed += count
            return result if placed >= deficit else None
        # Per-site groups: some functioning site must exceed f on its own.
        best: SystemState | None = None
        for idx in order:
            site = state.sites[idx]
            deficit = target - site.intrusions
            if deficit <= 0:
                return state  # safety is already compromised
            capacity = site.spec.replicas - site.intrusions
            if deficit <= budget.intrusions and deficit <= capacity:
                if best is None:
                    best = state.with_intrusions(idx, deficit)
        return best

    # -- rule 2 ---------------------------------------------------------
    def _apply_isolations(self, state: SystemState, isolations: int) -> SystemState:
        result = state
        for _ in range(isolations):
            order = _serving_site_order(result)
            if not order:
                break
            result = result.with_isolation(order[0])
        return result

    # -- rule 3 ---------------------------------------------------------
    def _apply_intrusions(self, state: SystemState, intrusions: int) -> SystemState:
        result = state
        remaining = intrusions
        for idx in _serving_site_order(result):
            if remaining == 0:
                break
            site = result.sites[idx]
            count = min(remaining, site.spec.replicas - site.intrusions)
            if count > 0:
                result = result.with_intrusions(idx, count)
                remaining -= count
        return result

    # -- the batched kernel ---------------------------------------------
    def attack_batch(
        self,
        architecture: ArchitectureSpec,
        flooded: np.ndarray,
        isolated: np.ndarray,
        intrusions: np.ndarray,
        budget: CyberAttackBudget,
        draws: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The greedy algorithm over a whole (realization x site) grid.

        Vectorized transcription of :meth:`attack`, bitwise-identical to
        applying it row by row (asserted by the batched-executor tests):
        rule 1 resolves rows where safety can be (or already is)
        compromised and those rows bypass the final severity guard,
        exactly as the scalar early returns do; rules 2-3 run on the
        rest in the same static (attack-priority, slot) order the scalar
        code follows -- the order never changes mid-attack because
        isolating or intruding a site cannot revive another.

        Returns the post-attack ``(isolated, intrusions)`` grids.
        ``draws`` is part of the unified ``attack_batch`` signature (the
        RNG-draw contract); a deterministic attacker ignores it.
        """
        del draws  # deterministic attacker
        if budget.is_empty:
            return isolated, intrusions
        n_rows, n_sites = flooded.shape
        order = sorted(
            range(n_sites),
            key=lambda i: (architecture.sites[i].role.attack_priority, i),
        )
        replicas = np.array(
            [site.replicas for site in architecture.sites], dtype=np.int64
        )
        functioning = ~(flooded | isolated)
        target = architecture.intrusions_f + 1
        out_iso = isolated.copy()
        out_intr = intrusions.copy()

        # Rule 1: rows it resolves (already compromised, or successfully
        # compromised) never reach rules 2-3 or the severity guard.
        if architecture.family is ArchitectureFamily.ACTIVE_MULTISITE:
            total = np.where(functioning, intrusions, 0).sum(axis=1)
            deficit = target - total
            already = deficit <= 0
            attempt = ~already & (deficit <= budget.intrusions)
            remaining = np.where(attempt, deficit, 0)
            placed = intrusions.copy()
            for s in order:
                capacity = np.where(
                    functioning[:, s], replicas[s] - intrusions[:, s], 0
                )
                take = np.minimum(remaining, capacity)
                placed[:, s] += take
                remaining -= take
            success = attempt & (remaining <= 0)
            out_intr[success] = placed[success]
            resolved = already | success
        else:
            # Per-site groups: any functioning site already past f wins
            # outright; otherwise the first functioning site (in order)
            # whose deficit fits the budget *and* its replica count.
            already = (np.where(functioning, intrusions, 0) >= target).any(axis=1)
            chosen = np.full(n_rows, -1, dtype=np.int64)
            for s in order:
                hit = (
                    ~already
                    & (chosen < 0)
                    & functioning[:, s]
                    & (target - intrusions[:, s] <= budget.intrusions)
                    & (target <= replicas[s])
                )
                chosen[hit] = s
            for s in order:
                rows = chosen == s
                out_intr[rows, s] = target
            resolved = already | (chosen >= 0)

        pending = ~resolved
        if pending.any():
            # Rule 2: isolate the first L functioning sites in order.
            iso23 = isolated.copy()
            intr23 = intrusions.copy()
            iso_budget = np.where(pending, budget.isolations, 0)
            for s in order:
                hit = functioning[:, s] & (iso_budget > 0)
                iso23[hit, s] = True
                iso_budget -= hit
            # Rule 3: distribute remaining intrusions greedily in order.
            still_functioning = ~(flooded | iso23)
            remaining = np.where(pending, budget.intrusions, 0)
            for s in order:
                capacity = np.where(
                    still_functioning[:, s], replicas[s] - intr23[:, s], 0
                )
                take = np.minimum(remaining, capacity)
                intr23[:, s] += take
                remaining -= take
            # Doing nothing is always within the attacker's power: never
            # return an outcome milder than the starting state.
            before = evaluate_batch(architecture, flooded, isolated, intrusions)
            after = evaluate_batch(architecture, flooded, iso23, intr23)
            keep = pending & (after >= before)
            out_iso[keep] = iso23[keep]
            out_intr[keep] = intr23[keep]
        return out_iso, out_intr


class ExhaustiveAttacker:
    """Brute force: evaluate every target combination, keep the worst.

    Exponential in sites and budget, but both are tiny here.  Used to
    validate that the greedy algorithm is genuinely worst-case.
    """

    name = "exhaustive"
    deterministic = True

    def attack(
        self,
        state: SystemState,
        budget: CyberAttackBudget,
        rng: np.random.Generator | None = None,
    ) -> SystemState:
        del rng  # deterministic attacker
        best_state = state
        best_severity = evaluate(state).severity
        n = len(state.sites)
        site_indices = range(n)

        isolation_choices = []
        for k in range(min(budget.isolations, n) + 1):
            isolation_choices.extend(itertools.combinations(site_indices, k))

        for isolated in isolation_choices:
            base = state
            for idx in isolated:
                base = base.with_isolation(idx)
            for assignment in self._intrusion_assignments(base, budget.intrusions):
                candidate = base
                for idx, count in enumerate(assignment):
                    if count:
                        candidate = candidate.with_intrusions(idx, count)
                severity = evaluate(candidate).severity
                if severity > best_severity:
                    best_severity = severity
                    best_state = candidate
        return best_state

    def attack_batch(
        self,
        architecture: ArchitectureSpec,
        flooded: np.ndarray,
        isolated: np.ndarray,
        intrusions: np.ndarray,
        budget: CyberAttackBudget,
        draws: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exhaustive enumeration once per distinct pre-attack pattern.

        Native batched kernel under the unified ``attack_batch``
        signature; replaces routing through the deprecated
        ``repro.core.batch.attack_batch_fallback``.  ``draws`` is
        ignored (deterministic attacker).
        """
        del draws  # deterministic attacker
        return _replay_rows(self, architecture, flooded, isolated, intrusions, budget)

    @staticmethod
    def _intrusion_assignments(state: SystemState, total: int):
        """All per-site *additional* intrusion distributions within budget.

        Each site can absorb at most its remaining uncompromised replicas.
        """
        caps = [site.spec.replicas - site.intrusions for site in state.sites]
        ranges = [range(min(cap, total) + 1) for cap in caps]
        for combo in itertools.product(*ranges):
            if sum(combo) <= total:
                yield combo


@dataclass(frozen=True)
class ProbabilisticAttacker:
    """Future-work extension: attack capabilities that may fail.

    Each budgeted intrusion succeeds with probability ``p_intrusion`` and
    each isolation with ``p_isolation``; the realized capabilities are then
    spent by the worst-case algorithm.  Deterministic given the ``rng``
    stream, so ensemble analyses remain reproducible.
    """

    p_intrusion: float = 1.0
    p_isolation: float = 1.0
    name: str = "probabilistic"

    #: Consumes the rng (capability sampling): stages wrapping it must
    #: not be treated as a deterministic chain prefix.
    deterministic = False

    def __post_init__(self) -> None:
        for p in (self.p_intrusion, self.p_isolation):
            if not 0.0 <= p <= 1.0:
                raise AnalysisError(f"probability {p} outside [0, 1]")

    def sample_budget(
        self, budget: CyberAttackBudget, rng: np.random.Generator
    ) -> CyberAttackBudget:
        intrusions = int(np.sum(rng.random(budget.intrusions) < self.p_intrusion))
        isolations = int(np.sum(rng.random(budget.isolations) < self.p_isolation))
        return CyberAttackBudget(intrusions=intrusions, isolations=isolations)

    def attack(
        self,
        state: SystemState,
        budget: CyberAttackBudget,
        rng: np.random.Generator,
    ) -> SystemState:
        realized = self.sample_budget(budget, rng)
        return WorstCaseAttacker().attack(state, realized)

    # -- the RNG-draw contract ------------------------------------------
    def batch_draws(self, budget: CyberAttackBudget) -> int:
        """Uniform draws one scalar :meth:`attack` call consumes.

        :meth:`sample_budget` draws ``rng.random(budget.intrusions)``
        then ``rng.random(budget.isolations)`` -- a fixed count per
        realization, which is exactly what lets the batched executor
        replay the stream with one matrix draw.
        """
        return budget.intrusions + budget.isolations

    def attack_batch(
        self,
        architecture: ArchitectureSpec,
        flooded: np.ndarray,
        isolated: np.ndarray,
        intrusions: np.ndarray,
        budget: CyberAttackBudget,
        draws: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Capability sampling + the worst-case kernel, fully batched.

        ``draws`` must be the ``(n_realizations, batch_draws(budget))``
        uniform block whose row ``r`` replays realization ``r``'s scalar
        stream: the first ``budget.intrusions`` columns are the
        intrusion capability draws, the rest the isolation draws --
        identical comparisons to :meth:`sample_budget`.  Rows are then
        grouped by realized budget (at most ``(intrusions + 1) *
        (isolations + 1)`` groups) and each group runs the worst-case
        attacker's native batched kernel, which is bitwise-faithful to
        the scalar greedy algorithm per row.
        """
        if self.batch_draws(budget) == 0:
            # An empty budget samples nothing and attacks nothing; the
            # scalar path consumes zero draws too (rng.random(0) twice).
            return isolated, intrusions
        if draws is None:
            raise AnalysisError(
                "probabilistic attacker needs the executor's draw block "
                "(the RNG-draw contract) to run batched"
            )
        expected = (flooded.shape[0], self.batch_draws(budget))
        if draws.shape != expected:
            raise AnalysisError(
                f"draw block shape {draws.shape} does not match "
                f"expected {expected}"
            )
        realized_intr = (draws[:, : budget.intrusions] < self.p_intrusion).sum(axis=1)
        realized_iso = (draws[:, budget.intrusions :] < self.p_isolation).sum(axis=1)
        out_iso = isolated.copy()
        out_intr = intrusions.copy()
        worst = WorstCaseAttacker()
        codes = realized_intr * (budget.isolations + 1) + realized_iso
        for code in np.unique(codes):
            realized = CyberAttackBudget(
                intrusions=int(code) // (budget.isolations + 1),
                isolations=int(code) % (budget.isolations + 1),
            )
            if realized.is_empty:
                continue  # WorstCaseAttacker.attack returns state unchanged
            rows = codes == code
            iso_g, intr_g = worst.attack_batch(
                architecture,
                flooded[rows],
                isolated[rows],
                intrusions[rows],
                realized,
            )
            out_iso[rows] = iso_g
            out_intr[rows] = intr_g
        return out_iso, out_intr
