"""The composable threat chain: Fig. 5 as a sequence of stage transforms.

The paper's framework is a *pipeline* -- topology + hazard -> post-disaster
state -> post-attack state -> operational classification -- and every layer
the reproduction has grown since (grid power-flow cascades, WAN/power
interdependency, alternative hazards, alternative attackers) is another
state transform in that pipeline, not a fork of it.  This module makes the
pipeline explicit:

* :class:`Stage` -- the protocol every transform satisfies: a ``name``, a
  ``deterministic`` flag, and ``apply(state, ctx, rng) -> state``.
* :class:`ThreatChain` -- an ordered tuple of stages plus the executor
  that runs one realization through them and assembles the
  :class:`RealizationOutcome`.
* Built-in stages wrapping the existing layers:
  :class:`HazardImpactStage` (fragility -> flooded sites),
  :class:`InterdependencyStage` (grid contingency + WAN coupling from
  :mod:`repro.grid.storm_impact` / :mod:`repro.network.interdependency`),
  :class:`CyberAttackStage` (any :class:`Attacker`), and
  :class:`ClassificationStage` (Table I).
* A registry of named presets (``"paper"``, ``"grid-coupled"``,
  ``"earthquake"``), looked up like architectures and scenarios, so a
  :class:`~repro.api.StudyConfig` can select a chain by name.

The ``"paper"`` chain is bit-identical to the historical hardcoded
three-step loop: same rng consumption order, same states, same
classification.  ``scripts/bench_ensemble.py`` guards the executor's
overhead against the hardcoded loop (<3%).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.attacker import WorstCaseAttacker
from repro.core.batch import (
    BatchContext,
    BatchSupport,
    ChainBatch,
    ChainBatchPlan,
    _replay_attack_batch,
    classify_batch,
)
from repro.core.evaluator import evaluate
from repro.core.states import OperationalState
from repro.core.system_state import SystemState, initial_state
from repro.core.threat import CyberAttackBudget, ThreatScenario
from repro.errors import ConfigurationError
from repro.hazards.base import HazardRealization
from repro.hazards.fragility import FragilityModel, ThresholdFragility
from repro.registry import Registry
from repro.scada.architectures import ArchitectureSpec
from repro.scada.placement import Placement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.grid.model import GridModel
    from repro.network.interdependency import InterdependencyParams
    from repro.network.topology import WANTopology


@runtime_checkable
class Attacker(Protocol):
    """Anything that spends an attack budget on a post-disaster state."""

    name: str

    def attack(
        self,
        state: SystemState,
        budget: CyberAttackBudget,
        rng: np.random.Generator | None = None,
    ) -> SystemState:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class RealizationOutcome:
    """Full trace of one realization through the pipeline."""

    realization_index: int
    post_disaster: SystemState
    post_attack: SystemState
    state: OperationalState


class ChainContext:
    """Everything one realization's chain run can read (and annotate).

    One context is built per :meth:`CompoundThreatAnalysis.run` call and
    reused across realizations (the executor resets the per-realization
    slots), so the hot loop allocates nothing but the states themselves.

    ``fragility`` and ``attacker`` are the *analysis-level* models; stages
    constructed without their own model inherit these.  ``failed_lookup``
    is the (possibly memoized) failed-asset function -- the pipeline binds
    its :meth:`~repro.core.pipeline.CompoundThreatAnalysis._failed_assets`
    memo here so chains share the fragility pass exactly as the hardcoded
    loop did.  ``extras`` is a scratch mapping stages use to hand data
    downstream (e.g. the hazard stage publishes ``"failed_assets"``; the
    interdependency stage publishes its coupling summary).
    """

    __slots__ = (
        "architecture",
        "placement",
        "scenario",
        "realization",
        "fragility",
        "attacker",
        "failed_lookup",
        "classified",
        "extras",
    )

    def __init__(
        self,
        architecture: ArchitectureSpec,
        placement: Placement,
        scenario: ThreatScenario,
        realization: HazardRealization | None = None,
        *,
        fragility: FragilityModel | None = None,
        attacker: Attacker | None = None,
        failed_lookup: Callable[
            [HazardRealization, np.random.Generator | None], frozenset[str]
        ]
        | None = None,
    ) -> None:
        self.architecture = architecture
        self.placement = placement
        self.scenario = scenario
        self.realization = realization
        self.fragility = fragility if fragility is not None else ThresholdFragility()
        self.attacker = attacker if attacker is not None else WorstCaseAttacker()
        self.failed_lookup = (
            failed_lookup if failed_lookup is not None else self._direct_lookup
        )
        self.classified: OperationalState | None = None
        self.extras: dict[str, object] = {}

    def _direct_lookup(
        self, realization: HazardRealization, rng: np.random.Generator | None
    ) -> frozenset[str]:
        return realization.failed_assets(self.fragility, rng)

    def failed_assets(self, rng: np.random.Generator | None) -> frozenset[str]:
        """The current realization's failed assets (memoized when bound)."""
        if self.realization is None:
            raise ConfigurationError("chain context has no realization")
        return self.failed_lookup(self.realization, rng)

    def base_state(self) -> SystemState:
        """The deployed architecture untouched by any hazard."""
        return initial_state(self.architecture, self.placement, ())


@runtime_checkable
class Stage(Protocol):
    """One transform of the threat chain.

    ``deterministic`` declares whether ``apply`` is a pure function of
    ``(state, ctx.realization)`` -- i.e. never consumes the rng.  The
    sweep engine only shares fragility memos across studies when the
    chain's hazard prefix is deterministic, so a stochastic stage must
    not claim determinism.
    """

    name: str

    @property
    def deterministic(self) -> bool:
        ...  # pragma: no cover - protocol

    def apply(
        self,
        state: SystemState | None,
        ctx: ChainContext,
        rng: np.random.Generator | None,
    ) -> SystemState:
        ...  # pragma: no cover - protocol


@runtime_checkable
class BatchedStage(Stage, Protocol):
    """A stage that can also run as one fused pass over the whole grid.

    ``apply_batch`` is the batched analogue of ``apply``: it transforms
    a :class:`~repro.core.batch.ChainBatch` (``None`` meaning "no stage
    has run yet", exactly like ``apply``'s ``None`` state) under a
    :class:`~repro.core.batch.BatchContext` and must be bitwise-faithful
    to applying the scalar stage per realization.  ``supports_batch``
    reports whether that is possible for a *specific* context.

    A stage wrapping a *stochastic* model batches under the RNG-draw
    contract: it additionally implements ``batch_support(ctx,
    upstream_failed=...) -> BatchSupport`` declaring how many uniform
    draws one scalar application consumes per realization, and its
    ``apply_batch`` reads the executor-provided ``ctx.draws`` column
    block instead of the rng.  :meth:`ThreatChain.batch_plan` folds the
    declarations into a :class:`~repro.core.batch.ChainBatchPlan`;
    ``upstream_failed`` tells the stage whether a failed-grid-producing
    stage precedes it in the chain.  Stages without ``batch_support``
    are consulted through the boolean ``supports_batch`` and declared
    draw-free; custom stages without any batch methods simply keep the
    per-realization executor.
    """

    def supports_batch(self, ctx: BatchContext) -> bool:
        ...  # pragma: no cover - protocol

    def apply_batch(
        self,
        batch: ChainBatch | None,
        ctx: BatchContext,
        rng: np.random.Generator | None,
    ) -> ChainBatch:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class HazardImpactStage:
    """Fig. 5 box one: natural-disaster impact via the fragility model.

    With ``fragility=None`` (the presets) the stage inherits the
    analysis-level model through the context's memoized lookup, so the
    deterministic-fragility failed-asset cache keeps working unchanged.
    """

    fragility: FragilityModel | None = None
    name: str = "fragility"

    #: The state this stage produces is the chain's post-disaster state.
    captures = "post_disaster"
    #: Its batched pass publishes the failed-asset grid (``batch.failed``)
    #: for downstream stages -- ``batch_plan`` tracks this so stages after
    #: it know they will be fed the grid instead of computing their own.
    emits_failed_grid = True

    @property
    def deterministic(self) -> bool:
        # An inherited model routes through the pipeline memo, which
        # itself gates on the model's own `deterministic` flag.
        if self.fragility is None:
            return True
        return bool(getattr(self.fragility, "deterministic", False))

    def apply(
        self,
        state: SystemState | None,
        ctx: ChainContext,
        rng: np.random.Generator | None,
    ) -> SystemState:
        if self.fragility is None:
            failed = ctx.failed_assets(rng)
        else:
            failed = ctx.realization.failed_assets(self.fragility, rng)
        ctx.extras["failed_assets"] = failed
        return initial_state(ctx.architecture, ctx.placement, failed)

    def supports_batch(self, ctx: BatchContext) -> bool:
        return self.batch_support(ctx).ok

    def batch_support(
        self, ctx: BatchContext, upstream_failed: bool = False
    ) -> BatchSupport:
        model = self.fragility if self.fragility is not None else ctx.fragility
        if getattr(model, "deterministic", False):
            return BatchSupport(True)
        if not getattr(model, "batch_sampling", False):
            return BatchSupport(
                False,
                f"fragility model {type(model).__name__} does not declare "
                "the RNG-draw batch-sampling contract",
            )
        # One uniform draw per asset per realization -- the scalar
        # failed_assets stride under the RNG-draw contract.
        return BatchSupport(True, draws=len(ctx.asset_names))

    def apply_batch(
        self,
        batch: ChainBatch | None,
        ctx: BatchContext,
        rng: np.random.Generator | None,
    ) -> ChainBatch:
        # Like `apply`, the hazard stage ignores any incoming state: its
        # output is the post-disaster initial state for every realization.
        model = self.fragility if self.fragility is not None else ctx.fragility
        if getattr(model, "deterministic", False):
            failed = ctx.failure_matrix(self.fragility)
        else:
            if ctx.draws is None:
                raise ConfigurationError(
                    "batched stochastic fragility needs the executor's "
                    "draw block (run through ThreatChain.run_batch)"
                )
            # Probabilities are a pure function of the depth grid and
            # memoized across cells; the sampled outcomes are not (each
            # cell draws its own fresh stream, like the scalar loop).
            failed = model.sample_failure_matrix(
                ctx.depths, ctx.draws, probabilities=ctx.probability_matrix(model)
            )
        fresh = ctx.fresh_batch(failed)
        if batch is not None and batch.classified is not None:
            # A classification recorded earlier in the chain survives,
            # exactly as `ctx.classified` does in the scalar executor.
            fresh = fresh.replace(classified=batch.classified)
        return fresh


class InterdependencyStage:
    """Grid/WAN coupling: the disaster's *indirect* control-site outages.

    The same realization that floods control sites also floods grid buses
    (:mod:`repro.grid.storm_impact`); the surviving grid re-islands under
    a cascade, WAN PoPs on badly-shed islands go dark, and dark PoPs
    partition the WAN (:mod:`repro.network.interdependency`).  Control
    sites cut off from the largest mutually-reachable site group become
    ``isolated`` in the system state -- so the downstream attack and
    classification stages see the compound (grid + comms) impact, not
    just the direct inundation.

    The coupling is deterministic per failed-bus set and memoized on the
    stage instance, so an ensemble pays one cascade per *distinct* damage
    pattern (most realizations damage nothing and share one entry).
    """

    name = "interdependency"
    deterministic = True
    captures = "post_disaster"
    #: Its batched pass back-fills ``batch.failed`` when no hazard stage
    #: ran before it, so downstream stages see the grid either way.
    emits_failed_grid = True

    def __init__(
        self,
        grid: "GridModel | None" = None,
        wan: "WANTopology | None" = None,
        pop_to_bus: dict[str, str] | None = None,
        params: "InterdependencyParams | None" = None,
    ) -> None:
        self._grid = grid
        self._wan = wan
        self._pop_to_bus = dict(pop_to_bus) if pop_to_bus is not None else None
        self._params = params
        self._coupling_cache: dict[frozenset[str], tuple[frozenset[str], dict]] = {}

    def _materialize(self):
        """Build the default Oahu grid/WAN substrate lazily, once."""
        from repro.network.interdependency import OAHU_POP_POWER, InterdependencyParams

        if self._params is None:
            self._params = InterdependencyParams()
        if self._grid is None:
            from repro.grid.model import build_oahu_grid

            self._grid = build_oahu_grid()
        if self._wan is None:
            from repro.geo import (
                DRFORTRESS,
                HONOLULU_CC,
                KAHE_CC,
                WAIAU_CC,
                build_oahu_catalog,
            )
            from repro.network.topology import build_site_wan

            self._wan = build_site_wan(
                build_oahu_catalog(),
                [HONOLULU_CC, WAIAU_CC, KAHE_CC, DRFORTRESS],
            )
        if self._pop_to_bus is None:
            self._pop_to_bus = dict(OAHU_POP_POWER)
        return self._grid, self._wan, self._pop_to_bus, self._params

    def _coupling(self, failed: frozenset[str]) -> tuple[frozenset[str], dict]:
        """(isolated control sites, summary) for one damage pattern."""
        import networkx as nx

        from repro.errors import NetworkModelError
        from repro.grid.contingency import simulate_contingency
        from repro.grid.storm_impact import damaged_grid

        grid, wan, pop_to_bus, params = self._materialize()
        out_buses = frozenset(name for name in failed if name in grid.buses)
        try:
            return self._coupling_cache[out_buses]
        except KeyError:
            pass
        survivor, shed = damaged_grid(grid, out_buses)
        degenerate = (
            not survivor.lines
            or not survivor.generators
            or survivor.total_demand_mw == 0
        )
        scada = True
        rounds = 0
        served_mw = 0.0
        while True:
            rounds += 1
            if rounds > params.max_rounds:
                raise NetworkModelError(
                    "interdependency cascade did not converge"
                )
            bus_service: dict[str, float] = {}
            if not degenerate:
                cascade = simulate_contingency(survivor, set(), scada)
                for island in cascade.islands:
                    fraction = (
                        island.served_mw / island.demand_mw
                        if island.demand_mw > 0
                        else 1.0
                    )
                    for bus in island.buses:
                        bus_service[bus] = fraction
                served_mw = cascade.served_fraction * survivor.total_demand_mw
            dead = {
                pop
                for pop, bus in pop_to_bus.items()
                if bus in out_buses
                or bus_service.get(bus, 0.0) < params.pop_power_threshold
            }
            graph = wan.graph.copy()
            graph.remove_nodes_from(dead)
            best_group: frozenset[str] = frozenset()
            for component in nx.connected_components(graph):
                group = frozenset(component & wan.site_nodes)
                if len(group) > len(best_group):
                    best_group = group
            scada_next = scada and len(best_group) >= params.required_connected_sites
            if scada_next == scada:
                break
            scada = scada_next
        isolated = frozenset(wan.site_nodes - best_group)
        summary = {
            "out_buses": tuple(sorted(out_buses)),
            "shed_at_damaged_mw": shed,
            "served_fraction": (
                served_mw / grid.total_demand_mw if grid.total_demand_mw > 0 else 1.0
            ),
            "scada_operational": scada,
            "dead_pops": tuple(sorted(dead)),
            "connected_sites": len(best_group),
            "rounds": rounds,
        }
        self._coupling_cache[out_buses] = (isolated, summary)
        return isolated, summary

    def apply(
        self,
        state: SystemState | None,
        ctx: ChainContext,
        rng: np.random.Generator | None,
    ) -> SystemState:
        if state is None:
            state = ctx.base_state()
        failed = ctx.extras.get("failed_assets")
        if failed is None:
            failed = ctx.failed_assets(rng)
            ctx.extras["failed_assets"] = failed
        isolated, summary = self._coupling(frozenset(failed))
        ctx.extras["interdependency"] = summary
        if isolated:
            for index, site in enumerate(state.sites):
                if site.asset_name in isolated and not site.isolated:
                    state = state.with_isolation(index)
        return state

    def supports_batch(self, ctx: BatchContext) -> bool:
        return self.batch_support(ctx).ok

    def batch_support(
        self, ctx: BatchContext, upstream_failed: bool = False
    ) -> BatchSupport:
        # Fed an upstream failed grid (the registered chains always put
        # a hazard stage first) the coupling is a pure function of it --
        # stochastic fragility included, since the hazard stage already
        # sampled.  Only when the stage would have to compute the grid
        # itself does it need a deterministic analysis-level model.
        if upstream_failed or getattr(ctx.fragility, "deterministic", False):
            return BatchSupport(True)
        return BatchSupport(
            False,
            "no upstream hazard stage and the analysis fragility model "
            "is stochastic; the coupling cannot sample it",
        )

    def apply_batch(
        self,
        batch: ChainBatch | None,
        ctx: BatchContext,
        rng: np.random.Generator | None,
    ) -> ChainBatch:
        from repro.grid.storm_impact import damage_pattern_groups

        if batch is None:
            batch = ctx.base_batch()
        failed = batch.failed
        if failed is None:
            failed = ctx.failure_matrix()
            batch = batch.replace(failed=failed)
        grid, _wan, _pop_to_bus, _params = self._materialize()
        # One coupling call per distinct damage pattern, through the same
        # memo the scalar path uses (identical cache keys: both reduce
        # the failed set to its grid-bus subset before lookup).
        patterns, inverse = damage_pattern_groups(
            failed, ctx.asset_names, frozenset(grid.buses)
        )
        masks = np.zeros((len(patterns), len(ctx.site_names)), dtype=bool)
        for p, pattern in enumerate(patterns):
            isolated, _summary = self._coupling(pattern)
            if isolated:
                for j, name in enumerate(ctx.site_names):
                    if name in isolated:
                        masks[p, j] = True
        return batch.replace(isolated=batch.isolated | masks[inverse])


@dataclass(frozen=True)
class CyberAttackStage:
    """Fig. 5 box two: the follow-on cyberattack spends its budget.

    With ``attacker=None`` (the presets) the stage inherits the
    analysis-level attacker from the context, so ``StudyConfig.attacker``
    and ``CompoundThreatAnalysis(attacker=...)`` keep working.
    """

    attacker: Attacker | None = None
    name: str = "cyberattack"

    #: The state this stage produces is the chain's post-attack state.
    captures = "post_attack"

    @property
    def deterministic(self) -> bool:
        # An inherited attacker defaults to the deterministic worst-case
        # model; an explicit one reports its own flag (absent -> assume
        # stochastic, the safe direction for memo sharing).
        if self.attacker is None:
            return True
        return bool(getattr(self.attacker, "deterministic", False))

    def apply(
        self,
        state: SystemState | None,
        ctx: ChainContext,
        rng: np.random.Generator | None,
    ) -> SystemState:
        if state is None:
            state = ctx.base_state()
        attacker = self.attacker if self.attacker is not None else ctx.attacker
        return attacker.attack(state, ctx.scenario.budget, rng)

    def supports_batch(self, ctx: BatchContext) -> bool:
        return self.batch_support(ctx).ok

    def batch_support(
        self, ctx: BatchContext, upstream_failed: bool = False
    ) -> BatchSupport:
        attacker = self.attacker if self.attacker is not None else ctx.attacker
        if getattr(attacker, "deterministic", False):
            # Deterministic attackers batch draw-free: a native kernel
            # when they have one, per-pattern replay otherwise.
            return BatchSupport(True)
        # A stochastic attacker batches under the RNG-draw contract: it
        # must declare its per-realization draw count (batch_draws) and
        # provide a native kernel consuming the executor's draw block.
        counter = getattr(attacker, "batch_draws", None)
        if callable(counter) and callable(getattr(attacker, "attack_batch", None)):
            return BatchSupport(True, draws=int(counter(ctx.scenario.budget)))
        label = getattr(attacker, "name", type(attacker).__name__)
        return BatchSupport(
            False,
            f"attacker {label!r} is stochastic without an RNG-draw "
            "batched kernel (attack_batch + batch_draws)",
        )

    def apply_batch(
        self,
        batch: ChainBatch | None,
        ctx: BatchContext,
        rng: np.random.Generator | None,
    ) -> ChainBatch:
        if batch is None:
            batch = ctx.base_batch()
        attacker = self.attacker if self.attacker is not None else ctx.attacker
        native = getattr(attacker, "attack_batch", None)
        if callable(native):
            if ctx.draws is not None:
                isolated, intrusions = native(
                    ctx.architecture,
                    batch.flooded,
                    batch.isolated,
                    batch.intrusions,
                    ctx.scenario.budget,
                    draws=ctx.draws,
                )
            else:
                # Draw-free stages keep the historical 5-argument call,
                # so custom attackers with the old signature still work.
                isolated, intrusions = native(
                    ctx.architecture,
                    batch.flooded,
                    batch.isolated,
                    batch.intrusions,
                    ctx.scenario.budget,
                )
        else:
            isolated, intrusions = _replay_attack_batch(attacker, ctx, batch)
        return batch.replace(isolated=isolated, intrusions=intrusions)


@dataclass(frozen=True)
class ClassificationStage:
    """Fig. 5 box three: Table I maps the final state to a color."""

    name: str = "classification"
    deterministic: bool = True

    def apply(
        self,
        state: SystemState | None,
        ctx: ChainContext,
        rng: np.random.Generator | None,
    ) -> SystemState:
        if state is None:
            state = ctx.base_state()
        ctx.classified = evaluate(state)
        return state

    def supports_batch(self, ctx: BatchContext) -> bool:
        return True

    def batch_support(
        self, ctx: BatchContext, upstream_failed: bool = False
    ) -> BatchSupport:
        return BatchSupport(True)

    def apply_batch(
        self,
        batch: ChainBatch | None,
        ctx: BatchContext,
        rng: np.random.Generator | None,
    ) -> ChainBatch:
        if batch is None:
            batch = ctx.base_batch()
        return batch.replace(classified=classify_batch(ctx, batch))


@dataclass(frozen=True)
class NoOpStage:
    """An identity stage; exists for composition tests and as a template."""

    name: str = "noop"
    deterministic: bool = True

    def apply(
        self,
        state: SystemState | None,
        ctx: ChainContext,
        rng: np.random.Generator | None,
    ) -> SystemState:
        return state

    def supports_batch(self, ctx: BatchContext) -> bool:
        return True

    def apply_batch(
        self,
        batch: ChainBatch | None,
        ctx: BatchContext,
        rng: np.random.Generator | None,
    ) -> ChainBatch:
        return batch if batch is not None else ctx.base_batch()


@dataclass(frozen=True)
class ThreatChain:
    """An ordered pipeline of stages plus its per-realization executor.

    Stage names need not be unique; per-stage timings accumulate by name.
    A chain without a :class:`ClassificationStage` still classifies: the
    executor evaluates the final state when no stage did.
    """

    name: str
    stages: tuple[Stage, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError("a threat chain needs at least one stage")
        for stage in self.stages:
            if not getattr(stage, "name", None) or not hasattr(stage, "apply"):
                raise ConfigurationError(
                    f"{stage!r} does not satisfy the Stage protocol "
                    "(needs a name and an apply method)"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def deterministic_prefix(self) -> tuple[str, ...]:
        """Names of the leading stages that never consume the rng."""
        names: list[str] = []
        for stage in self.stages:
            if not stage.deterministic:
                break
            names.append(stage.name)
        return tuple(names)

    def hazard_prefix_deterministic(self) -> bool:
        """Whether the failed-asset memo may be shared across studies.

        True when every stage up to and including the first
        post-disaster-capturing stage (the hazard impact) is
        deterministic; a chain with no hazard stage returns False (there
        is no fragility pass to share).
        """
        for stage in self.stages:
            if not stage.deterministic:
                return False
            if getattr(stage, "captures", None) == "post_disaster":
                return True
        return False

    def spec(self) -> dict:
        """The resolved chain description recorded in run manifests."""
        return {
            "name": self.name,
            "stages": [
                {
                    "name": stage.name,
                    "type": type(stage).__name__,
                    "deterministic": bool(stage.deterministic),
                }
                for stage in self.stages
            ],
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, ctx: ChainContext, rng: np.random.Generator | None
    ) -> RealizationOutcome:
        """One realization through every stage, with state snapshots."""
        ctx.classified = None
        ctx.extras.clear()
        state: SystemState | None = None
        snapshots: dict[str, SystemState] = {}
        for stage in self.stages:
            state = stage.apply(state, ctx, rng)
            captures = getattr(stage, "captures", None)
            if captures is not None:
                snapshots[captures] = state
        return self._outcome(ctx, state, snapshots)

    def run_state(
        self, ctx: ChainContext, rng: np.random.Generator | None
    ) -> OperationalState:
        """The classification only -- the ensemble loop's fast path."""
        ctx.classified = None
        ctx.extras.clear()
        state: SystemState | None = None
        for stage in self.stages:
            state = stage.apply(state, ctx, rng)
        if ctx.classified is not None:
            return ctx.classified
        return evaluate(state if state is not None else ctx.base_state())

    def run_state_timed(
        self,
        ctx: ChainContext,
        rng: np.random.Generator | None,
        totals: dict[str, float],
    ) -> OperationalState:
        """The fast path with per-stage wall-clock accumulated by name."""
        perf = time.perf_counter
        ctx.classified = None
        ctx.extras.clear()
        state: SystemState | None = None
        for stage in self.stages:
            t0 = perf()
            state = stage.apply(state, ctx, rng)
            elapsed = perf() - t0
            name = stage.name
            totals[name] = totals.get(name, 0.0) + elapsed
        if ctx.classified is not None:
            return ctx.classified
        return evaluate(state if state is not None else ctx.base_state())

    def supports_batch(self, ctx: BatchContext) -> bool:
        """Whether every stage can run the fused batched pass under ``ctx``."""
        return self.batch_plan(ctx).ok

    def batch_plan(self, ctx: BatchContext) -> ChainBatchPlan:
        """The chain's batch capability and per-stage rng-draw layout.

        Walks the stages collecting their :class:`BatchSupport`
        declarations (falling back to the boolean ``supports_batch``
        probe for stages without one -- those are treated as draw-free).
        ``upstream_failed`` tracks whether a failed-grid-producing stage
        precedes, so e.g. the interdependency coupling batches under
        stochastic fragility whenever a hazard stage feeds it.  A stage
        without ``apply_batch``, or one that declines, yields a
        not-``ok`` plan whose reason names the obstacle; ``run_batch``
        auto-selection and the ``batch.fallback`` counter consume it.
        """
        stage_draws: list[int] = []
        upstream_failed = False
        for stage in self.stages:
            if not callable(getattr(stage, "apply_batch", None)):
                return ChainBatchPlan(
                    False,
                    f"stage {stage.name!r} has no batched implementation",
                    stage=stage.name,
                )
            probe = getattr(stage, "batch_support", None)
            if callable(probe):
                support = probe(ctx, upstream_failed=upstream_failed)
                if not support.ok:
                    return ChainBatchPlan(
                        False,
                        f"stage {stage.name!r}: {support.reason}",
                        stage=stage.name,
                    )
                stage_draws.append(int(support.draws))
            else:
                legacy = getattr(stage, "supports_batch", None)
                if callable(legacy) and not legacy(ctx):
                    return ChainBatchPlan(
                        False,
                        f"stage {stage.name!r} declines batching",
                        stage=stage.name,
                    )
                stage_draws.append(0)
            if getattr(stage, "emits_failed_grid", False):
                upstream_failed = True
        return ChainBatchPlan(True, None, tuple(stage_draws))

    def run_batch(
        self,
        ctx: BatchContext,
        rng: np.random.Generator | None,
        plan: ChainBatchPlan | None = None,
    ) -> np.ndarray:
        """Every realization through every stage as fused numpy passes.

        Returns ``(n_realizations,)`` severity codes indexing
        :data:`~repro.core.states.STATE_ORDER` -- the batched analogue of
        mapping :meth:`run_state` over the ensemble, bitwise identical
        to it for the built-in stages.  Stochastic stages replay the
        scalar loop's rng stream from one up-front matrix draw (the
        RNG-draw contract): the executor hands each stage its column
        block through ``ctx.draws``.
        """
        blocks = self._draw_blocks(ctx, rng, plan)
        batch: ChainBatch | None = None
        try:
            for stage, block in zip(self.stages, blocks):
                ctx.draws = block
                batch = getattr(stage, "apply_batch")(batch, ctx, rng)
        finally:
            ctx.draws = None
        return self._batch_codes(ctx, batch)

    def run_batch_timed(
        self,
        ctx: BatchContext,
        rng: np.random.Generator | None,
        totals: dict[str, float],
        plan: ChainBatchPlan | None = None,
    ) -> np.ndarray:
        """The batched pass with per-stage wall-clock accumulated by name."""
        perf = time.perf_counter
        blocks = self._draw_blocks(ctx, rng, plan)
        batch: ChainBatch | None = None
        try:
            for stage, block in zip(self.stages, blocks):
                t0 = perf()
                ctx.draws = block
                batch = getattr(stage, "apply_batch")(batch, ctx, rng)
                elapsed = perf() - t0
                name = stage.name
                totals[name] = totals.get(name, 0.0) + elapsed
        finally:
            ctx.draws = None
        return self._batch_codes(ctx, batch)

    def _draw_blocks(
        self,
        ctx: BatchContext,
        rng: np.random.Generator | None,
        plan: ChainBatchPlan | None,
    ) -> tuple[np.ndarray | None, ...]:
        """Materialize the per-stage draw blocks for one batched run."""
        if plan is None:
            plan = self.batch_plan(ctx)
        if not plan.ok or len(plan.stage_draws) != len(self.stages):
            return tuple(None for _ in self.stages)
        return plan.draw_blocks(ctx.n_realizations, rng)

    def _batch_codes(
        self, ctx: BatchContext, batch: ChainBatch | None
    ) -> np.ndarray:
        # Mirror the scalar executor's tail: a chain that never classified
        # evaluates its final state (base state when no stage produced one).
        if batch is None:
            batch = ctx.base_batch()
        if batch.classified is not None:
            return batch.classified
        return classify_batch(ctx, batch)

    def _outcome(
        self,
        ctx: ChainContext,
        state: SystemState | None,
        snapshots: dict[str, SystemState],
    ) -> RealizationOutcome:
        if state is None:
            state = ctx.base_state()
        post_attack = snapshots.get("post_attack", state)
        post_disaster = snapshots.get("post_disaster", post_attack)
        classified = ctx.classified
        if classified is None:
            classified = evaluate(state)
        return RealizationOutcome(
            realization_index=ctx.realization.index,
            post_disaster=post_disaster,
            post_attack=post_attack,
            state=classified,
        )


# ----------------------------------------------------------------------
# Registry (mirrors architectures / scenarios)
# ----------------------------------------------------------------------
_CHAINS: Registry[ThreatChain] = Registry("threat chain", plural="chains")


def register_chain(chain: ThreatChain, *, replace: bool = False) -> ThreatChain:
    """Register a chain under its name; returns it for assignment."""
    return _CHAINS.register(chain.name, chain, replace=replace)


def get_chain(name: str) -> ThreatChain:
    """Look up a registered threat chain by name."""
    return _CHAINS.get(name)


def available_chains() -> list[str]:
    """Registered chain names, sorted."""
    return _CHAINS.available()


def resolve_chain(chain: "ThreatChain | str | None") -> ThreatChain:
    """Normalize a chain argument: ``None`` -> paper, name -> registry."""
    if chain is None:
        return CHAIN_PAPER
    if isinstance(chain, str):
        return get_chain(chain)
    if not isinstance(chain, ThreatChain):
        raise ConfigurationError(
            f"chain must be a ThreatChain or a registered name, "
            f"not {type(chain).__name__}"
        )
    return chain


#: The paper's exact Fig. 5 pipeline (bit-identical to the historical
#: hardcoded loop): fragility -> worst-case attack -> Table I.
CHAIN_PAPER = register_chain(
    ThreatChain(
        name="paper",
        stages=(HazardImpactStage(), CyberAttackStage(), ClassificationStage()),
        description="The paper's three-stage pipeline (Fig. 5).",
    )
)

#: The paper pipeline with the grid/WAN interdependency coupling between
#: disaster impact and attack: storm-damaged buses cascade, dark PoPs
#: partition the WAN, and cut-off control sites enter the attack stage
#: already isolated.
CHAIN_GRID_COUPLED = register_chain(
    ThreatChain(
        name="grid-coupled",
        stages=(
            HazardImpactStage(),
            InterdependencyStage(),
            CyberAttackStage(),
            ClassificationStage(),
        ),
        description=(
            "Fig. 5 plus the grid contingency / WAN interdependency "
            "coupling between the disaster and the attack."
        ),
    )
)

#: The hazard-agnostic chain for non-inundation disasters: identical
#: stage structure to "paper", relying only on the hazard substrate's
#: ``failed_assets`` contract (pair with e.g. ``seismic_fragility()``).
CHAIN_EARTHQUAKE = register_chain(
    ThreatChain(
        name="earthquake",
        stages=(HazardImpactStage(), CyberAttackStage(), ClassificationStage()),
        description=(
            "The Fig. 5 stages over any failed-assets hazard; the "
            "earthquake ensemble's PGA realizations plug in unchanged."
        ),
    )
)

#: Riverine flooding shares the hurricane's intensity measure (depth in
#: metres), so the flood preset is the same stage structure again -- the
#: flood ensemble's depth realizations plug straight into the default
#: ThresholdFragility.
CHAIN_FLOOD = register_chain(
    ThreatChain(
        name="flood",
        stages=(HazardImpactStage(), CyberAttackStage(), ClassificationStage()),
        description=(
            "The Fig. 5 stages over the riverine flood ensemble's "
            "depth realizations."
        ),
    )
)
