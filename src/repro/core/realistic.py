"""Realistic attacker power (the paper's Section VII open question).

The worst-case model grants the attacker abstract capabilities ("can
isolate a site").  In practice a site-isolation attack is link flooding
(Crossfire / Coremelt), and its feasibility depends on the attacker's
traffic capacity versus the WAN's minimum cut around the target; an
intrusion is a campaign that succeeds with some probability.

:class:`ResourceConstrainedAttacker` grounds both: it carries a botnet
flooding capacity (Gb/s) and an intrusion success probability, consults
the WAN topology for the real cost of each isolation, and then spends the
*feasible* capabilities with the paper's greedy worst-case strategy.  As
``flood_capacity_gbps -> inf`` and ``p_intrusion -> 1`` it converges to
the worst-case attacker, so the paper's model is recovered as a limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.attacker import WorstCaseAttacker, _serving_site_order
from repro.core.system_state import SystemState
from repro.core.threat import CyberAttackBudget
from repro.errors import AnalysisError
from repro.network.attacks import LinkFloodingAttacker
from repro.network.topology import WANTopology


@dataclass(frozen=True)
class ResourceConstrainedAttacker:
    """An attacker whose capabilities have concrete costs.

    Parameters
    ----------
    wan:
        The communication topology connecting the control sites; site
        nodes must be named by the placed asset names.
    flood_capacity_gbps:
        Total DoS traffic the attacker can sustain.  Each isolation spends
        the capacity of the minimum cut around its target; isolations are
        skipped when the remaining capacity cannot cover the cheapest
        viable target.
    p_intrusion:
        Probability each budgeted intrusion campaign succeeds.
    """

    wan: WANTopology
    flood_capacity_gbps: float = 0.0
    p_intrusion: float = 1.0
    name: str = field(default="resource-constrained")

    #: Samples intrusion success from the rng when p_intrusion < 1.
    deterministic = False

    def __post_init__(self) -> None:
        if self.flood_capacity_gbps < 0.0:
            raise AnalysisError("flood capacity cannot be negative")
        if not 0.0 <= self.p_intrusion <= 1.0:
            raise AnalysisError("intrusion probability must be in [0, 1]")

    def feasible_isolations(
        self, state: SystemState, budget_isolations: int
    ) -> list[int]:
        """Site indices the attacker can afford to isolate, priority order.

        Walks the serving-site priority order and greedily spends the
        flooding capacity; a site missing from the WAN model cannot be
        targeted.
        """
        planner = LinkFloodingAttacker(self.wan)
        remaining = self.flood_capacity_gbps
        chosen: list[int] = []
        for idx in _serving_site_order(state):
            if len(chosen) >= budget_isolations:
                break
            name = state.sites[idx].asset_name
            if name not in self.wan.site_nodes:
                continue
            cost = planner.plan_isolation(name).attack_cost_gbps
            if cost <= remaining:
                chosen.append(idx)
                remaining -= cost
        return chosen

    def attack(
        self,
        state: SystemState,
        budget: CyberAttackBudget,
        rng: np.random.Generator | None = None,
    ) -> SystemState:
        if budget.is_empty:
            return state
        if budget.intrusions > 0 and self.p_intrusion < 1.0 and rng is None:
            raise AnalysisError(
                "probabilistic intrusions require an rng to sample outcomes"
            )
        successful_intrusions = budget.intrusions
        if self.p_intrusion < 1.0:
            assert rng is not None
            successful_intrusions = int(
                np.sum(rng.random(budget.intrusions) < self.p_intrusion)
            )
        greedy = WorstCaseAttacker()
        # Rule 1 first, exactly as in the worst-case algorithm: if the
        # realized intrusions can break safety, isolations are moot.
        intrusion_budget = CyberAttackBudget(intrusions=successful_intrusions)
        compromised = greedy._try_compromise_safety(state, intrusion_budget)
        if compromised is not None:
            return compromised
        # Rule 2 under the resource constraint: isolate exactly the
        # affordable targets (which need not be the top-priority ones --
        # the WorstCaseAttacker cannot be handed a bare count here or it
        # would "isolate" sites the flooding capacity cannot reach).
        result = state
        for idx in self.feasible_isolations(state, budget.isolations):
            result = result.with_isolation(idx)
        # Rule 3: spend the realized intrusions on serving sites.
        return greedy._apply_intrusions(result, successful_intrusions)
