"""Operational states (the paper's color scheme, Section V).

* **GREEN**  -- fully operational.
* **ORANGE** -- temporarily down: the primary control center is lost and
  the system incurs downtime until the cold backup is activated.
* **RED**    -- not operational until components are repaired or an attack
  ends.
* **GRAY**   -- safety compromised: the attacker controls enough servers
  that the system can behave incorrectly.

Severity orders the states for the worst-case attacker: an attacker
prefers gray over red over orange over green.
"""

from __future__ import annotations

import enum
from typing import Iterable


class OperationalState(enum.Enum):
    GREEN = "green"
    ORANGE = "orange"
    RED = "red"
    GRAY = "gray"

    @property
    def severity(self) -> int:
        """0 (green) .. 3 (gray); higher is worse for the defender."""
        return _SEVERITY[self]

    @property
    def is_operational(self) -> bool:
        """Whether the system is serving correctly right now."""
        return self is OperationalState.GREEN

    @property
    def is_safe(self) -> bool:
        """Whether system safety (correctness) is intact."""
        return self is not OperationalState.GRAY

    def __str__(self) -> str:
        return self.value


_SEVERITY = {
    OperationalState.GREEN: 0,
    OperationalState.ORANGE: 1,
    OperationalState.RED: 2,
    OperationalState.GRAY: 3,
}

#: Display order used by every table and figure (matches the paper).
STATE_ORDER: tuple[OperationalState, ...] = (
    OperationalState.GREEN,
    OperationalState.ORANGE,
    OperationalState.RED,
    OperationalState.GRAY,
)


def worst_state(states: Iterable[OperationalState]) -> OperationalState:
    """The highest-severity state in ``states`` (green if empty)."""
    worst = OperationalState.GREEN
    for state in states:
        if state.severity > worst.severity:
            worst = state
    return worst
