"""Statistical utilities for Monte Carlo results.

The case study's headline numbers are binomial proportions over 1000
realizations.  These helpers answer the questions a careful reader asks:
is the difference between two configurations statistically real, and how
many realizations does detecting a given effect require?
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.outcomes import OperationalProfile
from repro.core.states import OperationalState
from repro.errors import AnalysisError


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def _normal_ppf(p: float) -> float:
    """Inverse CDF of the standard normal (Acklam-style rational fit).

    Accurate to ~1e-8 over (0, 1); plenty for power calculations.
    """
    if not 0.0 < p < 1.0:
        raise AnalysisError("probability must be in (0, 1)")
    # Beasley-Springer-Moro coefficients.
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        return -_normal_ppf(1.0 - p)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


@dataclass(frozen=True)
class ProportionTest:
    """Result of a two-proportion z-test."""

    z: float
    p_value: float
    difference: float

    def significant(self, alpha: float = 0.05) -> bool:
        if not 0.0 < alpha < 1.0:
            raise AnalysisError("alpha must be in (0, 1)")
        return self.p_value < alpha


def two_proportion_test(
    successes_a: int, n_a: int, successes_b: int, n_b: int
) -> ProportionTest:
    """Two-sided pooled z-test for a difference between two proportions."""
    if n_a < 1 or n_b < 1:
        raise AnalysisError("sample sizes must be positive")
    if not 0 <= successes_a <= n_a or not 0 <= successes_b <= n_b:
        raise AnalysisError("successes must lie within sample sizes")
    p_a = successes_a / n_a
    p_b = successes_b / n_b
    pooled = (successes_a + successes_b) / (n_a + n_b)
    variance = pooled * (1.0 - pooled) * (1.0 / n_a + 1.0 / n_b)
    if variance == 0.0:
        # Identical degenerate samples: no evidence of a difference.
        return ProportionTest(z=0.0, p_value=1.0, difference=p_a - p_b)
    z = (p_a - p_b) / math.sqrt(variance)
    return ProportionTest(
        z=z, p_value=2.0 * _normal_sf(abs(z)), difference=p_a - p_b
    )


def compare_profiles(
    a: OperationalProfile,
    b: OperationalProfile,
    state: OperationalState,
) -> ProportionTest:
    """Is the probability of ``state`` different between two profiles?"""
    return two_proportion_test(a.count(state), a.total, b.count(state), b.total)


def required_realizations(
    p_baseline: float,
    p_alternative: float,
    alpha: float = 0.05,
    power: float = 0.8,
) -> int:
    """Realizations per ensemble to detect p_baseline vs p_alternative.

    Standard two-proportion sample size with pooled variance; answers
    "was the paper's 1000 enough to see this effect?".
    """
    for p in (p_baseline, p_alternative):
        if not 0.0 < p < 1.0:
            raise AnalysisError("proportions must be in (0, 1)")
    if p_baseline == p_alternative:
        raise AnalysisError("proportions must differ")
    if not 0.0 < alpha < 1.0 or not 0.0 < power < 1.0:
        raise AnalysisError("alpha and power must be in (0, 1)")
    z_alpha = _normal_ppf(1.0 - alpha / 2.0)
    z_beta = _normal_ppf(power)
    p_bar = (p_baseline + p_alternative) / 2.0
    numerator = (
        z_alpha * math.sqrt(2.0 * p_bar * (1.0 - p_bar))
        + z_beta
        * math.sqrt(
            p_baseline * (1.0 - p_baseline) + p_alternative * (1.0 - p_alternative)
        )
    ) ** 2
    return math.ceil(numerator / (p_baseline - p_alternative) ** 2)
