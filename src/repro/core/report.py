"""Tabular reports of analysis results.

Formats operational profiles the way the paper presents them: one table
per threat scenario with a row per SCADA configuration and a column per
operational state.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.outcomes import OperationalProfile, ScenarioMatrix
from repro.core.states import STATE_ORDER


def format_profile_table(
    profiles: Mapping[str, OperationalProfile],
    title: str = "",
) -> str:
    """A fixed-width table: configuration rows, state-probability columns."""
    header_cells = ["configuration"] + [s.value for s in STATE_ORDER]
    rows = [header_cells]
    for name, profile in profiles.items():
        rows.append(
            [name] + [f"{profile.probability(s):6.1%}" for s in STATE_ORDER]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header_cells))]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(rows[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_matrix_report(matrix: ScenarioMatrix) -> str:
    """All scenarios of a matrix, one table per scenario."""
    sections = [f"Placement: {matrix.placement_label}"]
    for scenario in matrix.scenario_names:
        sections.append("")
        sections.append(
            format_profile_table(
                matrix.scenario_profiles(scenario),
                title=f"Scenario: {scenario}",
            )
        )
    return "\n".join(sections)


def format_matrix_markdown(matrix: ScenarioMatrix) -> str:
    """The matrix as GitHub-flavored markdown (for docs and reports)."""
    lines = [f"### Placement: {matrix.placement_label}", ""]
    for scenario in matrix.scenario_names:
        lines.append(f"**Scenario: {scenario}**")
        lines.append("")
        header = "| configuration | " + " | ".join(s.value for s in STATE_ORDER) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (len(STATE_ORDER) + 1))
        for name, profile in matrix.scenario_profiles(scenario).items():
            cells = " | ".join(
                f"{profile.probability(s):.1%}" for s in STATE_ORDER
            )
            lines.append(f"| {name} | {cells} |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def format_matrix_csv(matrix: ScenarioMatrix) -> str:
    """The matrix as CSV text (placement, scenario, architecture, states)."""
    columns = ["placement", "scenario", "architecture"] + [
        s.value for s in STATE_ORDER
    ]
    lines = [",".join(columns)]
    for row in matrix.to_rows():
        cells = [str(row["placement"]), str(row["scenario"]), str(row["architecture"])]
        cells += [f"{row[s.value]:.6f}" for s in STATE_ORDER]
        lines.append(",".join(cells))
    return "\n".join(lines)
