"""Outcome aggregation: operational profiles over an ensemble.

The framework's bottom line (paper Section V-C): for each configuration
and threat scenario, the fraction of hurricane realizations ending in each
operational state.  :class:`OperationalProfile` is that distribution;
:class:`ScenarioMatrix` collects profiles across configurations and
scenarios -- one matrix row group per paper figure.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.core.states import STATE_ORDER, OperationalState
from repro.errors import AnalysisError
from repro.scada.failover import FailoverPolicy


@dataclass(frozen=True)
class OperationalProfile:
    """The distribution of operational states over an ensemble."""

    counts: Mapping[OperationalState, int]

    def __post_init__(self) -> None:
        clean = {s: int(self.counts.get(s, 0)) for s in STATE_ORDER}
        if any(v < 0 for v in clean.values()):
            raise AnalysisError("state counts cannot be negative")
        if sum(clean.values()) == 0:
            raise AnalysisError("profile must cover at least one realization")
        object.__setattr__(self, "counts", clean)

    @classmethod
    def from_states(cls, states: Iterable[OperationalState]) -> "OperationalProfile":
        return cls(Counter(states))

    @classmethod
    def from_state_codes(cls, codes: np.ndarray) -> "OperationalProfile":
        """A profile from severity codes (the batched executor's output).

        ``codes[i]`` indexes :data:`~repro.core.states.STATE_ORDER` --
        i.e. equals ``state.severity`` -- as produced by
        :func:`~repro.core.evaluator.evaluate_batch`.
        """
        counts = np.bincount(
            np.asarray(codes, dtype=np.int64), minlength=len(STATE_ORDER)
        )
        if counts.size > len(STATE_ORDER):
            raise AnalysisError("state code outside the operational-state range")
        return cls({state: int(counts[i]) for i, state in enumerate(STATE_ORDER)})

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def count(self, state: OperationalState) -> int:
        return self.counts[state]

    def probability(self, state: OperationalState) -> float:
        return self.counts[state] / self.total

    def probabilities(self) -> dict[OperationalState, float]:
        return {s: self.probability(s) for s in STATE_ORDER}

    def confidence_interval(
        self, state: OperationalState, z: float = 1.96
    ) -> tuple[float, float]:
        """Wilson score interval for a state's probability.

        The Monte Carlo estimate is a binomial proportion over the
        ensemble; the Wilson interval behaves sensibly even at the 0%/100%
        boundaries the paper's figures are full of.
        """
        if z <= 0.0:
            raise AnalysisError("z must be positive")
        n = self.total
        p = self.probability(state)
        denom = 1.0 + z * z / n
        center = (p + z * z / (2 * n)) / denom
        half = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
        # Clamp against float error so the interval always contains the
        # point estimate (exactly 0/1 at the boundaries).
        return (max(0.0, min(center - half, p)), min(1.0, max(center + half, p)))

    def almost_equal(self, other: "OperationalProfile", tolerance: float = 1e-9) -> bool:
        """Whether two profiles match state-by-state within ``tolerance``."""
        return all(
            abs(self.probability(s) - other.probability(s)) <= tolerance
            for s in STATE_ORDER
        )

    def dominates(self, other: "OperationalProfile") -> bool:
        """Stochastic dominance: at least as much mass at every severity cut.

        True when, for every severity level, this profile has at least the
        probability of being *at or below* that severity as ``other`` --
        i.e. this profile is unambiguously no worse.
        """
        cumulative_self = 0.0
        cumulative_other = 0.0
        for state in STATE_ORDER:
            cumulative_self += self.probability(state)
            cumulative_other += other.probability(state)
            if cumulative_self < cumulative_other - 1e-12:
                return False
        return True

    def expected_availability(self, policy: FailoverPolicy | None = None) -> float:
        """Downtime-weighted availability under a failover timing policy."""
        policy = policy or FailoverPolicy()
        return sum(
            self.probability(s) * policy.availability(s) for s in STATE_ORDER
        )

    def summary(self) -> str:
        parts = [
            f"{s.value}={self.probability(s):.1%}"
            for s in STATE_ORDER
            if self.counts[s]
        ]
        return ", ".join(parts) if parts else "empty"


@dataclass
class ScenarioMatrix:
    """Profiles indexed by (scenario name, architecture name)."""

    placement_label: str
    _profiles: dict[tuple[str, str], OperationalProfile] = field(default_factory=dict)
    _scenario_order: list[str] = field(default_factory=list)
    _architecture_order: list[str] = field(default_factory=list)

    def add(
        self, scenario_name: str, architecture_name: str, profile: OperationalProfile
    ) -> None:
        key = (scenario_name, architecture_name)
        if key in self._profiles:
            raise AnalysisError(f"duplicate matrix entry {key}")
        self._profiles[key] = profile
        if scenario_name not in self._scenario_order:
            self._scenario_order.append(scenario_name)
        if architecture_name not in self._architecture_order:
            self._architecture_order.append(architecture_name)

    def get(self, scenario_name: str, architecture_name: str) -> OperationalProfile:
        try:
            return self._profiles[(scenario_name, architecture_name)]
        except KeyError:
            raise AnalysisError(
                f"no profile for scenario {scenario_name!r} and architecture "
                f"{architecture_name!r}"
            ) from None

    @property
    def scenario_names(self) -> list[str]:
        return list(self._scenario_order)

    @property
    def architecture_names(self) -> list[str]:
        return list(self._architecture_order)

    def scenario_profiles(self, scenario_name: str) -> dict[str, OperationalProfile]:
        """Architecture -> profile for one scenario (one paper figure)."""
        return {
            arch: self._profiles[(scenario_name, arch)]
            for arch in self._architecture_order
            if (scenario_name, arch) in self._profiles
        }

    def to_rows(self) -> list[dict[str, object]]:
        """Flat records (for CSV/JSON export and tabular reports)."""
        rows: list[dict[str, object]] = []
        for scenario in self._scenario_order:
            for arch in self._architecture_order:
                key = (scenario, arch)
                if key not in self._profiles:
                    continue
                profile = self._profiles[key]
                row: dict[str, object] = {
                    "placement": self.placement_label,
                    "scenario": scenario,
                    "architecture": arch,
                }
                for state in STATE_ORDER:
                    row[state.value] = profile.probability(state)
                rows.append(row)
        return rows
