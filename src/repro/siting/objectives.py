"""Objectives for control-site placement optimization.

The paper's future-work question: *how should we choose additional
control site locations to maximize availability under compound threats?*
An objective maps the operational profiles a placement achieves (one per
threat scenario) to a single score to maximize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.outcomes import OperationalProfile
from repro.core.states import OperationalState
from repro.errors import AnalysisError
from repro.scada.failover import FailoverPolicy

ProfileScore = Callable[[OperationalProfile], float]


def prob_green(profile: OperationalProfile) -> float:
    """Probability of uninterrupted, fully operational service."""
    return profile.probability(OperationalState.GREEN)


def prob_eventually_operational(profile: OperationalProfile) -> float:
    """Probability the system serves after at most a failover (green or
    orange)."""
    return profile.probability(OperationalState.GREEN) + profile.probability(
        OperationalState.ORANGE
    )


def prob_safe(profile: OperationalProfile) -> float:
    """Probability the system never behaves incorrectly (not gray)."""
    return 1.0 - profile.probability(OperationalState.GRAY)


def expected_availability(policy: FailoverPolicy | None = None) -> ProfileScore:
    """Downtime-weighted availability under a failover timing policy."""
    chosen = policy or FailoverPolicy()

    def score(profile: OperationalProfile) -> float:
        return profile.expected_availability(chosen)

    return score


@dataclass(frozen=True)
class SitingObjective:
    """A named profile score aggregated across threat scenarios.

    ``aggregate`` is "mean" (balanced) or "min" (worst-scenario robust).
    """

    name: str
    profile_score: ProfileScore
    aggregate: str = "mean"

    def __post_init__(self) -> None:
        if self.aggregate not in ("mean", "min"):
            raise AnalysisError(
                f"aggregate must be 'mean' or 'min', not {self.aggregate!r}"
            )

    def score(self, profiles: Mapping[str, OperationalProfile]) -> float:
        if not profiles:
            raise AnalysisError("no profiles to score")
        values = [self.profile_score(p) for p in profiles.values()]
        return min(values) if self.aggregate == "min" else sum(values) / len(values)


GREEN_OBJECTIVE = SitingObjective("prob-green", prob_green)
OPERATIONAL_OBJECTIVE = SitingObjective(
    "prob-eventually-operational", prob_eventually_operational
)
SAFETY_OBJECTIVE = SitingObjective("prob-safe", prob_safe)
ROBUST_GREEN_OBJECTIVE = SitingObjective("worst-scenario-green", prob_green, "min")
