"""Placement search: which sites should host the control system?

Answers the paper's Section VII question with the framework itself as the
evaluation oracle: every candidate placement is scored by running the
full compound-threat analysis (ensemble x scenarios) and aggregating an
objective over the resulting operational profiles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.core.pipeline import CompoundThreatAnalysis
from repro.core.threat import ThreatScenario
from repro.errors import AnalysisError
from repro.scada.architectures import ArchitectureSpec
from repro.scada.placement import Placement
from repro.siting.objectives import GREEN_OBJECTIVE, SitingObjective


@dataclass(frozen=True)
class SitingResult:
    """One evaluated placement."""

    placement: Placement
    score: float
    profile_summaries: tuple[tuple[str, str], ...]  # (scenario, summary)

    def __str__(self) -> str:
        return f"{self.placement.label()}: {self.score:.4f}"


class PlacementOptimizer:
    """Searches placements for one architecture under given scenarios."""

    def __init__(
        self,
        analysis: CompoundThreatAnalysis,
        architecture: ArchitectureSpec,
        scenarios: Sequence[ThreatScenario],
        objective: SitingObjective = GREEN_OBJECTIVE,
    ) -> None:
        if not scenarios:
            raise AnalysisError("siting needs at least one threat scenario")
        self.analysis = analysis
        self.architecture = architecture
        self.scenarios = list(scenarios)
        self.objective = objective

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def evaluate(self, placement: Placement) -> SitingResult:
        profiles = {
            scenario.name: self.analysis.run(self.architecture, placement, scenario)
            for scenario in self.scenarios
        }
        return SitingResult(
            placement=placement,
            score=self.objective.score(profiles),
            profile_summaries=tuple(
                (name, profile.summary()) for name, profile in profiles.items()
            ),
        )

    # ------------------------------------------------------------------
    # Searches
    # ------------------------------------------------------------------
    def rank_backups(
        self,
        primary: str,
        candidates: Sequence[str],
        data_centers: tuple[str, ...] = (),
    ) -> list[SitingResult]:
        """Score every candidate backup site, best first.

        Reproduces the paper's Waiau-vs-Kahe comparison when given those
        two candidates, and answers "where should the backup go?" for any
        candidate list.
        """
        results = []
        for candidate in candidates:
            if candidate == primary or candidate in data_centers:
                continue
            placement = Placement(
                primary=primary, backup=candidate, data_centers=data_centers
            )
            results.append(self.evaluate(placement))
        if not results:
            raise AnalysisError("no usable backup candidates")
        return sorted(results, key=lambda r: (-r.score, r.placement.label()))

    def best_full_placement(
        self,
        candidates: Sequence[str],
        data_center_slots: int = 1,
    ) -> SitingResult:
        """Exhaustive search over (primary, backup, data centers).

        Exponential in slots but candidate lists are small (the island
        has a handful of hardened facilities).
        """
        sites_needed = 2 + data_center_slots
        if len(candidates) < sites_needed:
            raise AnalysisError(
                f"{len(candidates)} candidates cannot fill {sites_needed} slots"
            )
        best: SitingResult | None = None
        for combo in itertools.permutations(candidates, sites_needed):
            primary, backup = combo[0], combo[1]
            data_centers = tuple(sorted(combo[2:]))
            placement = Placement(primary, backup, data_centers)
            result = self.evaluate(placement)
            if (
                best is None
                or result.score > best.score + 1e-12
                or (
                    abs(result.score - best.score) <= 1e-12
                    and result.placement.label() < best.placement.label()
                )
            ):
                best = result
        assert best is not None
        return best
