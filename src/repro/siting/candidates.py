"""Candidate locations for hosting SCADA control software."""

from __future__ import annotations

from repro.errors import TopologyError
from repro.geo.catalog import AssetCatalog, AssetRole


def control_site_candidates(
    catalog: AssetCatalog,
    include_plants: bool = False,
    exclude: frozenset[str] = frozenset(),
) -> list[str]:
    """Asset names that could host a control site.

    By default: existing control centers and commercial data centers.
    ``include_plants=True`` adds power plants, modelling the option of
    building a hardened control room at a plant (the paper's Kahe backup
    is exactly this kind of siting).
    """
    roles = {AssetRole.CONTROL_CENTER, AssetRole.DATA_CENTER}
    if include_plants:
        roles.add(AssetRole.POWER_PLANT)
    names = [
        asset.name
        for asset in catalog
        if asset.role in roles and asset.name not in exclude
    ]
    if not names:
        raise TopologyError("no candidate control sites in the catalog")
    return names
