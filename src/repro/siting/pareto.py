"""Cost-resilience Pareto analysis across deployments.

A planner ultimately picks a point on the cost/resilience frontier.
This module evaluates (architecture, placement) candidates on two axes --
annual deployment cost and a resilience objective over the threat
scenarios -- and returns the non-dominated set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.pipeline import CompoundThreatAnalysis
from repro.core.threat import ThreatScenario
from repro.errors import AnalysisError
from repro.scada.architectures import ArchitectureSpec
from repro.scada.cost import CostModel
from repro.scada.placement import Placement
from repro.siting.objectives import GREEN_OBJECTIVE, SitingObjective


@dataclass(frozen=True)
class DeploymentPoint:
    """One candidate deployment on the cost/resilience plane."""

    architecture_name: str
    placement_label: str
    annual_cost: float
    resilience: float

    def dominates(self, other: "DeploymentPoint") -> bool:
        """No worse on both axes and strictly better on at least one."""
        no_worse = (
            self.annual_cost <= other.annual_cost
            and self.resilience >= other.resilience
        )
        strictly_better = (
            self.annual_cost < other.annual_cost
            or self.resilience > other.resilience
        )
        return no_worse and strictly_better


def evaluate_deployments(
    analysis: CompoundThreatAnalysis,
    candidates: Sequence[tuple[ArchitectureSpec, Placement]],
    scenarios: Sequence[ThreatScenario],
    objective: SitingObjective = GREEN_OBJECTIVE,
    cost_model: CostModel | None = None,
) -> list[DeploymentPoint]:
    """Score every candidate on (annual cost, resilience objective)."""
    if not candidates:
        raise AnalysisError("no candidate deployments")
    if not scenarios:
        raise AnalysisError("no threat scenarios")
    model = cost_model or CostModel()
    points = []
    for architecture, placement in candidates:
        profiles = {
            scenario.name: analysis.run(architecture, placement, scenario)
            for scenario in scenarios
        }
        points.append(
            DeploymentPoint(
                architecture_name=architecture.name,
                placement_label=placement.label(),
                annual_cost=model.annual_cost(architecture),
                resilience=objective.score(profiles),
            )
        )
    return points


def pareto_frontier(points: Sequence[DeploymentPoint]) -> list[DeploymentPoint]:
    """The non-dominated subset, cheapest first."""
    if not points:
        raise AnalysisError("no points to filter")
    frontier = [
        p
        for p in points
        if not any(other.dominates(p) for other in points if other is not p)
    ]
    return sorted(frontier, key=lambda p: (p.annual_cost, -p.resilience))
