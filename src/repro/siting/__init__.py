"""Control-site placement optimization (paper Section VII future work)."""

from repro.siting.candidates import control_site_candidates
from repro.siting.objectives import (
    GREEN_OBJECTIVE,
    OPERATIONAL_OBJECTIVE,
    ROBUST_GREEN_OBJECTIVE,
    SAFETY_OBJECTIVE,
    SitingObjective,
    expected_availability,
    prob_eventually_operational,
    prob_green,
    prob_safe,
)
from repro.siting.optimizer import PlacementOptimizer, SitingResult
from repro.siting.pareto import (
    DeploymentPoint,
    evaluate_deployments,
    pareto_frontier,
)

__all__ = [
    "control_site_candidates",
    "SitingObjective",
    "GREEN_OBJECTIVE",
    "OPERATIONAL_OBJECTIVE",
    "SAFETY_OBJECTIVE",
    "ROBUST_GREEN_OBJECTIVE",
    "prob_green",
    "prob_eventually_operational",
    "prob_safe",
    "expected_availability",
    "PlacementOptimizer",
    "SitingResult",
    "DeploymentPoint",
    "evaluate_deployments",
    "pareto_frontier",
]
