"""The observer object instrumented code talks to, and its activation.

Hot paths never import metrics or tracing directly; they grab the
*active* observer (:func:`current`) and call ``obs.inc`` / ``obs.span``
/ ``obs.event``.  Two implementations exist:

* :class:`Observability` -- a live bundle of one
  :class:`~repro.obs.metrics.MetricsRegistry`, one
  :class:`~repro.obs.tracing.Tracer`, and one
  :class:`~repro.obs.events.EventLog`.
* :class:`NullObservability` -- the default: every method is a no-op
  and ``span()`` returns one shared reusable null context, so
  instrumented code costs a few attribute lookups per call site when
  nobody is observing.  The benchmark in ``scripts/bench_ensemble.py``
  asserts this overhead stays under its budget.

:func:`activate` installs an observer for a ``with`` block; the facade
(:func:`repro.api.run_study`) is the only place that should need it --
instrumentation is wired once there rather than per script.  The active
observer is process-local: worker processes start with the null
observer and ship metric *snapshots* back instead (see
:meth:`MetricsRegistry.merge`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class _NullSpanContext:
    """A reusable, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class Observability:
    """A live observer: metrics + trace tree + event log for one run."""

    enabled = True

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.events = EventLog()

    # Thin delegation keeps one call-site idiom for instrumented code.
    def span(self, name: str, **meta):
        return self.tracer.span(name, **meta)

    def record_span(self, name: str, duration_s: float, **meta) -> None:
        self.tracer.record(name, duration_s, **meta)

    def inc(self, name: str, value: float = 1) -> None:
        self.metrics.inc(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def event(self, kind: str, **fields) -> None:
        self.events.emit(kind, **fields)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a worker process's metric snapshot into this observer.

        Worker processes run with their own observer and ship
        :meth:`MetricsRegistry.snapshot` payloads back; the parent merges
        them here so sweep- and run-level metrics aggregate across
        processes.
        """
        self.metrics.merge(snapshot)


class NullObservability:
    """The disabled observer: structurally compatible, does nothing."""

    enabled = False

    def span(self, name: str, **meta) -> _NullSpanContext:
        return _NULL_SPAN

    def record_span(self, name: str, duration_s: float, **meta) -> None:
        return None

    def inc(self, name: str, value: float = 1) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def event(self, kind: str, **fields) -> None:
        return None

    def merge_snapshot(self, snapshot: dict) -> None:
        return None


NULL_OBSERVER = NullObservability()

_active: Observability | NullObservability = NULL_OBSERVER


def current() -> Observability | NullObservability:
    """The active observer (the shared null observer by default)."""
    return _active


@contextmanager
def activate(obs: Observability | NullObservability) -> Iterator:
    """Install ``obs`` as the active observer for the duration of a block."""
    global _active
    previous = _active
    _active = obs
    try:
        yield obs
    finally:
        _active = previous
