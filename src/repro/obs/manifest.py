"""Run manifests: one JSON record of what a run was and what it did.

Every :func:`repro.api.run_study` call can emit a ``run_manifest.json``
capturing enough to reproduce and audit the run:

* identity -- the config hash, seed, realization count, and scenario /
  architecture / placement names;
* provenance -- package, Python, and numpy versions, platform;
* behavior -- wall-clock seconds per pipeline stage (from the trace
  tree), the full metric snapshot (retry / cache / runtime counters),
  and the bounded structured event log.

Writers here **never raise into the pipeline**: a manifest or metrics
file that cannot be written warns (:class:`ObservabilityWriteWarning`)
and the run's actual results are returned unharmed.  Successful writes
go through the same atomic tmp+rename writers as every other artifact
(:mod:`repro.io.atomic`), so a manifest on disk is never torn.
"""

from __future__ import annotations

import json
import platform
import warnings
from pathlib import Path

from repro.io.atomic import atomic_write_text
from repro.obs.observer import Observability, NullObservability

MANIFEST_SCHEMA_VERSION = 1

#: Keys every run manifest carries (locked by a golden schema test).
MANIFEST_REQUIRED_KEYS = frozenset(
    {
        "schema_version",
        "kind",
        "config_hash",
        "seed",
        "n_realizations",
        "configurations",
        "scenarios",
        "placement",
        "chain",
        "region",
        "hazard",
        "versions",
        "started_at_unix_s",
        "wall_clock_s",
        "stages",
        "metrics",
        "events",
        "events_dropped",
    }
)


class ObservabilityWriteWarning(RuntimeWarning):
    """A metrics/trace/manifest artifact could not be written; run continues."""


def build_run_manifest(
    *,
    config_hash: str,
    seed: int,
    n_realizations: int,
    configurations: list[str],
    scenarios: list[str],
    placement: str,
    chain: dict | None = None,
    region: str | None = None,
    hazard: str | None = None,
    obs: Observability | NullObservability,
    wall_clock_s: float,
) -> dict:
    """Assemble the manifest dict from run identity plus the observer."""
    import numpy
    import repro

    if obs.enabled:
        stages = obs.tracer.stage_durations()
        metrics = obs.metrics.snapshot()
        events = obs.events.to_list()
        events_dropped = obs.events.dropped
        started_at = obs.tracer.started_at
    else:
        stages, metrics, events, events_dropped = {}, {}, [], 0
        started_at = None
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "repro.run_manifest",
        "config_hash": config_hash,
        "seed": seed,
        "n_realizations": n_realizations,
        "configurations": list(configurations),
        "scenarios": list(scenarios),
        "placement": placement,
        # The resolved threat-chain spec (name + per-stage determinism),
        # or None for runs without a per-realization chain (timelines).
        "chain": chain,
        # Scenario-catalog selection, or None for the classic Oahu path.
        "region": region,
        "hazard": hazard,
        "versions": {
            "repro": repro.__version__,
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "platform": platform.platform(),
        },
        "started_at_unix_s": started_at,
        "wall_clock_s": round(wall_clock_s, 6),
        "stages": {name: round(s, 6) for name, s in sorted(stages.items())},
        "metrics": metrics,
        "events": events,
        "events_dropped": events_dropped,
    }


def write_json_artifact(path: str | Path, payload: dict, what: str) -> Path | None:
    """Atomically write ``payload`` as JSON; warn (never raise) on failure.

    Telemetry output is strictly best-effort: losing a metrics file must
    not lose the analysis that produced it.  Returns the written path,
    or ``None`` if the write failed.
    """
    target = Path(path)
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(target, json.dumps(payload, indent=2) + "\n")
    except (OSError, TypeError, ValueError) as exc:
        warnings.warn(
            f"could not write {what} to {str(target)!r}: {exc}; continuing",
            ObservabilityWriteWarning,
            stacklevel=2,
        )
        return None
    return target


def write_run_manifest(path: str | Path, manifest: dict) -> Path | None:
    """Write a run manifest atomically; warn and continue on failure."""
    return write_json_artifact(path, manifest, "run manifest")


def format_run_report(manifest: dict) -> str:
    """Render a manifest as a human-readable run report."""
    lines = [
        "Run report",
        "==========",
        f"config hash:    {manifest['config_hash']}",
        f"seed:           {manifest['seed']}",
        f"realizations:   {manifest['n_realizations']}",
        f"placement:      {manifest['placement']}",
        f"configurations: {', '.join(manifest['configurations'])}",
        f"scenarios:      {', '.join(manifest['scenarios'])}",
    ]
    chain = manifest.get("chain")
    if chain:
        stage_names = " -> ".join(s["name"] for s in chain.get("stages", []))
        lines.append(f"chain:          {chain['name']} ({stage_names})")
    lines += [
        f"versions:       repro {manifest['versions']['repro']}, "
        f"python {manifest['versions']['python']}, "
        f"numpy {manifest['versions']['numpy']}",
        f"wall clock:     {manifest['wall_clock_s']:.3f}s",
    ]
    stages = manifest.get("stages") or {}
    if stages:
        lines.append("")
        lines.append("Stage wall-clock (aggregated over the trace tree):")
        width = max(len(name) for name in stages)
        for name, seconds in sorted(
            stages.items(), key=lambda item: -item[1]
        ):
            lines.append(f"  {name:<{width}s}  {seconds:9.3f}s")
    counters = (manifest.get("metrics") or {}).get("counters") or {}
    fallbacks = counters.get("batch.fallback", 0)
    if fallbacks:
        # Why a run is on the slow path should not hide in the generic
        # counter dump: call out each scalar-loop fallback and its reason.
        prefix = "batch.fallback.reason."
        lines.append("")
        lines.append(
            f"Batch fallbacks: {fallbacks:g} cell(s) used the "
            "per-realization loop:"
        )
        for name in sorted(counters):
            if name.startswith(prefix):
                lines.append(
                    f"  {name[len(prefix):]}: {counters[name]:g}"
                )
    if counters:
        lines.append("")
        lines.append("Counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}s}  {counters[name]:g}")
    histograms = (manifest.get("metrics") or {}).get("histograms") or {}
    if histograms:
        lines.append("")
        lines.append("Timings (histogram summaries):")
        for name in sorted(histograms):
            h = histograms[name]
            if not h["count"]:
                continue
            lines.append(
                f"  {name}: n={h['count']} mean={h['mean']:.6f} "
                f"min={h['min']:.6f} max={h['max']:.6f}"
            )
    events = manifest.get("events") or []
    if events:
        lines.append("")
        dropped = manifest.get("events_dropped", 0)
        suffix = f" (+{dropped} dropped)" if dropped else ""
        lines.append(f"Events ({len(events)}{suffix}):")
        for event in events[-20:]:
            detail = ", ".join(
                f"{k}={v}" for k, v in event.items() if k not in ("t_s", "kind")
            )
            lines.append(f"  [{event['t_s']:10.3f}s] {event['kind']}  {detail}")
    return "\n".join(lines)
