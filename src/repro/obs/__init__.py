"""Observability: metrics, tracing, events, and run manifests.

A dependency-free telemetry layer for the analysis pipeline.  The
pieces:

* :class:`MetricsRegistry` -- counters / gauges / histograms with
  picklable snapshots that merge across processes
  (:mod:`repro.obs.metrics`);
* :class:`Tracer` / spans -- nested wall-clock timers forming a per-run
  trace tree (:mod:`repro.obs.tracing`);
* :class:`EventLog` -- a bounded structured log of notable occurrences
  (:mod:`repro.obs.events`);
* :class:`Observability` / :data:`NULL_OBSERVER` -- the bundle hot
  paths talk to, installed with :func:`activate` and looked up with
  :func:`current`; disabled by default at negligible cost
  (:mod:`repro.obs.observer`);
* run manifests -- :func:`build_run_manifest`,
  :func:`write_run_manifest`, :func:`format_run_report`
  (:mod:`repro.obs.manifest`).

Instrumentation is wired once at the :func:`repro.api.run_study`
facade; see ``docs/observability.md`` for the metric names, trace
format, and manifest schema.
"""

from repro.obs.events import EventLog
from repro.obs.manifest import (
    MANIFEST_REQUIRED_KEYS,
    MANIFEST_SCHEMA_VERSION,
    ObservabilityWriteWarning,
    build_run_manifest,
    format_run_report,
    write_json_artifact,
    write_run_manifest,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObservability,
    Observability,
    activate,
    current,
)
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "EventLog",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "Observability",
    "NullObservability",
    "NULL_OBSERVER",
    "activate",
    "current",
    "MANIFEST_REQUIRED_KEYS",
    "MANIFEST_SCHEMA_VERSION",
    "ObservabilityWriteWarning",
    "build_run_manifest",
    "format_run_report",
    "write_json_artifact",
    "write_run_manifest",
]
