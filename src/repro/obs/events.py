"""Structured event log: notable run occurrences as plain dicts.

Events complement metrics (which aggregate away *when*) and spans (which
only time code regions): a retry, a pool rebuild, a cache quarantine,
or a resumed checkpoint each append one timestamped record, so the
manifest can answer "what exactly happened, in what order" for the rare
paths that matter during an incident.

The log is bounded: beyond ``max_events`` the oldest records are
dropped and ``dropped`` counts them, so a pathological run (say, a
retry storm) cannot grow the manifest without bound.
"""

from __future__ import annotations

import time
from collections import deque

DEFAULT_MAX_EVENTS = 1000


class EventLog:
    """A bounded, append-only sequence of structured events."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self._epoch = time.perf_counter()
        self._events: deque[dict] = deque(maxlen=max_events)
        self.dropped = 0

    def emit(self, kind: str, **fields) -> dict:
        """Append one event; ``kind`` names it, fields carry the detail."""
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        event = {
            "t_s": round(time.perf_counter() - self._epoch, 6),
            "kind": kind,
            **fields,
        }
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def to_list(self) -> list[dict]:
        return list(self._events)

    def of_kind(self, kind: str) -> list[dict]:
        return [e for e in self._events if e["kind"] == kind]
