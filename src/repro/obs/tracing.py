"""Span tracing: nested wall-clock timers forming a per-run trace tree.

A :class:`Tracer` hands out :func:`~Tracer.span` context managers; spans
opened while another span is active nest under it, so one ``run_study``
call produces a tree like::

    run_study                     1.84s
      ensemble.generate           0.61s
        ensemble.parameter_pass   0.02s
        ensemble.realization_pass 0.58s
      analysis.run_matrix         1.21s
        analysis.run              0.09s   (x14, one per matrix cell)

Timestamps are ``time.perf_counter()`` offsets from the tracer's epoch,
so durations are monotonic and immune to wall-clock steps; the absolute
start time is recorded once on the tracer for the manifest.

:meth:`Tracer.record` appends an already-measured duration as a leaf
span -- used by hot loops that accumulate a stage total across
thousands of realizations and report it once, instead of allocating a
span object per realization.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ObservabilityError


@dataclass
class SpanRecord:
    """One node of the trace tree (times relative to the tracer epoch)."""

    name: str
    start_s: float
    duration_s: float | None = None
    meta: dict = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.duration_s is not None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": (
                None if self.duration_s is None else round(self.duration_s, 6)
            ),
            "meta": dict(self.meta),
            "children": [child.to_dict() for child in self.children],
        }


class _SpanContext:
    """Context manager closing one span on exit."""

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._record, failed=exc is not None)


class Tracer:
    """Builds the trace tree for one run."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.started_at = time.time()
        self.roots: list[SpanRecord] = []
        self._stack: list[SpanRecord] = []

    def _now(self) -> float:
        return time.perf_counter() - self.epoch

    def _attach(self, record: SpanRecord) -> None:
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.roots.append(record)

    def span(self, name: str, **meta) -> _SpanContext:
        """Open a span; it closes (and records its duration) on exit."""
        record = SpanRecord(name=name, start_s=self._now(), meta=meta)
        self._attach(record)
        self._stack.append(record)
        return _SpanContext(self, record)

    def _close(self, record: SpanRecord, failed: bool) -> None:
        if not self._stack or self._stack[-1] is not record:
            raise ObservabilityError(
                f"span {record.name!r} closed out of order"
            )
        self._stack.pop()
        record.duration_s = self._now() - record.start_s
        if failed:
            record.meta["failed"] = True

    def record(self, name: str, duration_s: float, **meta) -> SpanRecord:
        """Append an already-measured duration as a closed leaf span."""
        if duration_s < 0:
            raise ObservabilityError("span duration cannot be negative")
        record = SpanRecord(
            name=name,
            start_s=self._now(),
            duration_s=duration_s,
            meta={"aggregate": True, **meta},
        )
        self._attach(record)
        return record

    @property
    def depth(self) -> int:
        return len(self._stack)

    def to_dict(self) -> dict:
        """The whole trace tree as plain JSON."""
        return {
            "started_at_unix_s": self.started_at,
            "spans": [root.to_dict() for root in self.roots],
        }

    def stage_durations(self) -> dict[str, float]:
        """Total recorded seconds per span name, over the whole tree."""
        totals: dict[str, float] = {}

        def walk(record: SpanRecord) -> None:
            if record.duration_s is not None:
                totals[record.name] = totals.get(record.name, 0.0) + record.duration_s
            for child in record.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return totals
