"""Counters, gauges, and histograms with snapshot/merge aggregation.

A :class:`MetricsRegistry` is the numeric half of the observability
layer (:mod:`repro.obs`): hot paths increment counters, set gauges, and
observe histogram samples; at the end of a run the registry is frozen
into a plain-JSON :meth:`~MetricsRegistry.snapshot` that lands in the
run manifest and ``--metrics-out``.

Snapshots are designed to *merge*: a worker process can run its own
registry, ship ``registry.snapshot()`` back over the process boundary
(it is a plain dict of plain types, so it pickles), and the parent folds
it in with :meth:`~MetricsRegistry.merge` -- counters add, gauges take
the latest write, histograms pool their samples.  Merging is associative
and commutative over counters and histograms, so the aggregate is
independent of worker scheduling.

Histograms are summary-only (count / total / min / max plus geometric
buckets), which keeps them mergeable without shipping raw samples and
keeps ``observe()`` O(#buckets) worst case.  All write paths are
guarded by a lock, so one registry can be shared across threads.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

from repro.errors import ObservabilityError

#: Geometric histogram bucket upper bounds (seconds-flavored but unitless):
#: 1 µs .. ~100 s in half-decade steps, plus a catch-all +inf bucket.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (exp / 2.0) for exp in range(-12, 5)
)


@dataclass
class Histogram:
    """A mergeable summary of observed samples."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    bucket_bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS
    bucket_counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bucket_bounds) + 1)

    def observe(self, value: float) -> None:
        if not math.isfinite(value):
            raise ObservabilityError(f"histogram sample must be finite, got {value!r}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bucket_bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
            "bucket_bounds": list(self.bucket_bounds),
            "bucket_counts": list(self.bucket_counts),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        hist = cls(
            count=int(payload["count"]),
            total=float(payload["total"]),
            min=math.inf if payload["min"] is None else float(payload["min"]),
            max=-math.inf if payload["max"] is None else float(payload["max"]),
            bucket_bounds=tuple(payload["bucket_bounds"]),
            bucket_counts=[int(c) for c in payload["bucket_counts"]],
        )
        return hist

    def merge(self, other: "Histogram") -> None:
        if tuple(other.bucket_bounds) != tuple(self.bucket_bounds):
            raise ObservabilityError(
                "cannot merge histograms with different bucket bounds"
            )
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c


class MetricsRegistry:
    """A process-local registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to the named counter."""
        if value < 0:
            raise ObservabilityError(f"counter {name!r} cannot decrease")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time quantity."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one sample to the named histogram."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # ------------------------------------------------------------------
    # Read paths
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-JSON, picklable view of every metric in the registry."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, gauges take the incoming value (latest write wins),
        histogram summaries pool.  Merging worker snapshots in any order
        produces the same counters and histograms.
        """
        try:
            counters = snapshot["counters"]
            gauges = snapshot["gauges"]
            histograms = snapshot["histograms"]
        except (TypeError, KeyError) as exc:
            raise ObservabilityError(
                f"not a metrics snapshot: missing {exc}"
            ) from exc
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(gauges)
            for name, payload in histograms.items():
                incoming = Histogram.from_dict(payload)
                existing = self._histograms.get(name)
                if existing is None:
                    self._histograms[name] = incoming
                else:
                    existing.merge(incoming)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
