"""Link-flooding site-isolation attacks (Crossfire / Coremelt style).

The attacker cannot break into routers; instead it marshals botnet
traffic that saturates chosen *links*.  Isolating a site means flooding a
set of links whose removal disconnects the site from the rest of the
WAN.  The rational attacker floods the **minimum-capacity edge cut**
around the target, so the attack cost is the cut's total capacity -- this
gives the abstract "site isolation" capability of the threat model a
concrete price and lets extension studies compare targets.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import NetworkModelError
from repro.network.topology import WANTopology


@dataclass(frozen=True)
class IsolationPlan:
    """The links to flood to isolate one site, and what it costs."""

    target: str
    flooded_links: tuple[tuple[str, str], ...]
    attack_cost_gbps: float

    @property
    def link_count(self) -> int:
        return len(self.flooded_links)


class LinkFloodingAttacker:
    """Plans and applies minimum-cut link-flooding attacks."""

    def __init__(self, topology: WANTopology) -> None:
        self.topology = topology

    def plan_isolation(self, target_site: str) -> IsolationPlan:
        """The cheapest set of links whose flooding isolates the target."""
        if target_site not in self.topology.site_nodes:
            raise NetworkModelError(f"{target_site!r} is not a control site")
        graph = self.topology.graph
        others = [
            n for n in self.topology.site_nodes if n != target_site
        ]
        if not others:
            # A single-site system has no "rest of the network" to cut it
            # from; flooding its access links still silences it.
            cut = set(graph.edges(target_site))
        else:
            # Min cut separating the target from every other site: add a
            # virtual super-sink attached to the other sites.
            g = graph.copy()
            sink = "__sink__"
            for other in others:
                g.add_edge(other, sink, capacity=float("inf"))
            cut_value, (reachable, non_reachable) = nx.minimum_cut(
                g, target_site, sink, capacity="capacity"
            )
            cut = {
                (a, b)
                for a in reachable
                for b in g.neighbors(a)
                if b in non_reachable and b != sink
            }
        normalized = tuple(sorted(tuple(sorted(edge)) for edge in cut))
        cost = sum(self.topology.link_capacity(a, b) for a, b in normalized)
        return IsolationPlan(target_site, normalized, cost)

    def apply(self, plan: IsolationPlan) -> nx.Graph:
        """The WAN graph with the plan's links flooded (removed)."""
        return self.topology.without_links(set(plan.flooded_links))

    def cheapest_target(self, candidates: list[str] | None = None) -> IsolationPlan:
        """Which control site is cheapest to isolate?"""
        targets = candidates if candidates is not None else sorted(self.topology.site_nodes)
        if not targets:
            raise NetworkModelError("no candidate targets")
        plans = [self.plan_isolation(t) for t in targets]
        return min(plans, key=lambda p: (p.attack_cost_gbps, p.target))
