"""Wide-area network topology connecting SCADA control sites.

The paper's site-isolation attack is realized by resource-intensive
link-flooding DoS (Crossfire / Coremelt).  To give that attack a concrete
mechanism, this module models the WAN as a capacitated graph: control
sites attach to provider edge routers, which interconnect through a core.
The attack model (:mod:`repro.network.attacks`) floods the minimum edge
cut around a target site.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import NetworkModelError
from repro.geo.catalog import AssetCatalog
from repro.geo.coords import haversine_km


@dataclass(frozen=True)
class LinkSpec:
    """One WAN link with a flooding capacity (Gb/s)."""

    a: str
    b: str
    capacity_gbps: float

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise NetworkModelError("link capacity must be positive")
        if self.a == self.b:
            raise NetworkModelError("self-links are not allowed")


class WANTopology:
    """A capacitated WAN graph with designated control-site nodes."""

    def __init__(self, links: list[LinkSpec], site_nodes: set[str]) -> None:
        if not links:
            raise NetworkModelError("topology needs at least one link")
        self.graph = nx.Graph()
        for link in links:
            self.graph.add_edge(link.a, link.b, capacity=link.capacity_gbps)
        missing = site_nodes - set(self.graph.nodes)
        if missing:
            raise NetworkModelError(f"site nodes not in the graph: {sorted(missing)}")
        self.site_nodes = set(site_nodes)

    @property
    def router_nodes(self) -> set[str]:
        return set(self.graph.nodes) - self.site_nodes

    def degree_of(self, node: str) -> int:
        self._check_node(node)
        return self.graph.degree(node)

    def link_capacity(self, a: str, b: str) -> float:
        if not self.graph.has_edge(a, b):
            raise NetworkModelError(f"no link between {a!r} and {b!r}")
        return self.graph.edges[a, b]["capacity"]

    def without_links(self, removed: set[tuple[str, str]]) -> nx.Graph:
        """A copy of the graph with the given links removed."""
        g = self.graph.copy()
        for a, b in removed:
            if g.has_edge(a, b):
                g.remove_edge(a, b)
        return g

    def _check_node(self, node: str) -> None:
        if node not in self.graph:
            raise NetworkModelError(f"unknown node {node!r}")


def build_site_wan(
    catalog: AssetCatalog,
    site_names: list[str],
    redundant_uplinks: int = 2,
    access_capacity_gbps: float = 10.0,
    core_capacity_gbps: float = 100.0,
) -> WANTopology:
    """A realistic island WAN: core ring + redundant site uplinks.

    Core routers are placed implicitly (four PoPs); each control site gets
    ``redundant_uplinks`` access links to its geographically nearest core
    PoPs.  Core links are high-capacity (hard to flood); access links are
    an order of magnitude smaller -- which is exactly the asymmetry the
    Crossfire-style attack exploits.
    """
    if not site_names:
        raise NetworkModelError("need at least one control site")
    if redundant_uplinks < 1:
        raise NetworkModelError("sites need at least one uplink")
    pops = ["pop-honolulu", "pop-kapolei", "pop-wahiawa", "pop-kaneohe"]
    pop_locations = {
        "pop-honolulu": (21.31, -157.86),
        "pop-kapolei": (21.33, -158.08),
        "pop-wahiawa": (21.50, -158.02),
        "pop-kaneohe": (21.41, -157.80),
    }
    links = []
    ring = pops + [pops[0]]
    for a, b in zip(ring, ring[1:]):
        links.append(LinkSpec(a, b, core_capacity_gbps))
    # Cross-links make the core 3-connected.
    links.append(LinkSpec("pop-honolulu", "pop-wahiawa", core_capacity_gbps))

    from repro.geo.coords import GeoPoint

    for name in site_names:
        asset = catalog.get(name)
        by_distance = sorted(
            pops,
            key=lambda p: haversine_km(
                asset.location, GeoPoint(*pop_locations[p])
            ),
        )
        uplinks = min(redundant_uplinks, len(pops))
        for pop in by_distance[:uplinks]:
            links.append(LinkSpec(name, pop, access_capacity_gbps))
    return WANTopology(links, set(site_names))
