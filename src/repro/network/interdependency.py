"""Grid <-> communications interdependency (related work [18]-[20]).

The paper's related work highlights the dependence between power grid
SCADA and the communication infrastructure.  This module closes that
loop explicitly:

* WAN PoPs draw power from grid buses;
* a transmission contingency sheds load; PoPs on badly-shed islands go
  dark (after their backup power runs out);
* dark PoPs partition the WAN; control sites that lose connectivity can
  no longer run the SCADA system;
* without SCADA, the *next* round of the grid cascade runs uncontrolled,
  shedding more load -- potentially killing more PoPs.

The analysis iterates this coupling to a fixed point, exposing the
compound amplification that analyzing either infrastructure alone misses.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import NetworkModelError
from repro.grid.contingency import simulate_contingency
from repro.grid.model import GridModel
from repro.network.topology import WANTopology

#: Default PoP -> grid bus mapping for the Oahu case study.
OAHU_POP_POWER = {
    "pop-honolulu": "Iwilei Substation",
    "pop-kapolei": "Ewa Nui Substation",
    "pop-wahiawa": "Wahiawa Substation",
    "pop-kaneohe": "Kaneohe Substation",
}


@dataclass(frozen=True)
class InterdependencyParams:
    """Coupling assumptions."""

    pop_power_threshold: float = 0.5  # island served fraction keeping a PoP up
    required_connected_sites: int = 2  # control sites needed to run SCADA
    max_rounds: int = 6

    def __post_init__(self) -> None:
        if not 0.0 < self.pop_power_threshold <= 1.0:
            raise NetworkModelError("PoP power threshold must be in (0, 1]")
        if self.required_connected_sites < 1:
            raise NetworkModelError("SCADA needs at least one connected site")
        if self.max_rounds < 1:
            raise NetworkModelError("need at least one round")


@dataclass(frozen=True)
class InterdependencyResult:
    """Fixed point of the coupled grid/comms cascade."""

    served_fraction: float
    scada_operational: bool
    dead_pops: tuple[str, ...]
    connected_sites: int
    rounds: int

    @property
    def coupled_blackout(self) -> bool:
        return not self.scada_operational and self.served_fraction < 0.5


class InterdependencyAnalysis:
    """Couples the grid cascade model with the WAN topology."""

    def __init__(
        self,
        grid: GridModel,
        wan: WANTopology,
        pop_to_bus: dict[str, str] | None = None,
        params: InterdependencyParams | None = None,
    ) -> None:
        self.grid = grid
        self.wan = wan
        self.params = params or InterdependencyParams()
        mapping = pop_to_bus if pop_to_bus is not None else dict(OAHU_POP_POWER)
        for pop, bus in mapping.items():
            if pop not in self.wan.router_nodes:
                raise NetworkModelError(f"{pop!r} is not a router of the WAN")
            if bus not in grid.buses:
                raise NetworkModelError(f"{bus!r} is not a bus of the grid")
        unmapped = self.wan.router_nodes - set(mapping)
        if unmapped:
            raise NetworkModelError(
                f"routers without a power source: {sorted(unmapped)}"
            )
        self.pop_to_bus = dict(mapping)

    # ------------------------------------------------------------------
    def _bus_service(self, outages: set[tuple[str, str]], scada: bool) -> dict[str, float]:
        """Served fraction of each bus's island."""
        cascade = simulate_contingency(self.grid, outages, scada)
        service: dict[str, float] = {}
        for island in cascade.islands:
            fraction = (
                island.served_mw / island.demand_mw if island.demand_mw > 0 else 1.0
            )
            for bus in island.buses:
                service[bus] = fraction
        return service

    def _dead_pops(self, bus_service: dict[str, float]) -> set[str]:
        return {
            pop
            for pop, bus in self.pop_to_bus.items()
            if bus_service.get(bus, 0.0) < self.params.pop_power_threshold
        }

    def _connected_sites(self, dead_pops: set[str]) -> int:
        """Size of the largest mutually reachable group of control sites."""
        graph: nx.Graph = self.wan.graph.copy()
        graph.remove_nodes_from(dead_pops)
        best = 0
        for component in nx.connected_components(graph):
            best = max(best, len(component & self.wan.site_nodes))
        return best

    # ------------------------------------------------------------------
    def cascade(
        self,
        initial_outages: set[tuple[str, str]],
        scada_initially_operational: bool = True,
    ) -> InterdependencyResult:
        """Iterate the coupled cascade to a fixed point.

        SCADA availability is monotone non-increasing across rounds
        (losing control only sheds more load), so the iteration
        terminates within ``max_rounds``.
        """
        scada = scada_initially_operational
        rounds = 0
        while True:
            rounds += 1
            if rounds > self.params.max_rounds:
                raise NetworkModelError("interdependency cascade did not converge")
            bus_service = self._bus_service(initial_outages, scada)
            dead = self._dead_pops(bus_service)
            connected = self._connected_sites(dead)
            scada_next = scada and connected >= self.params.required_connected_sites
            if scada_next == scada:
                break
            scada = scada_next

        cascade = simulate_contingency(self.grid, initial_outages, scada)
        return InterdependencyResult(
            served_fraction=cascade.served_fraction,
            scada_operational=scada,
            dead_pops=tuple(sorted(dead)),
            connected_sites=connected,
            rounds=rounds,
        )
