"""Inter-site routing latency derived from the WAN topology.

The replication engine takes intra- and inter-site latencies as inputs;
this module derives them from the WAN graph (hop count x per-hop delay),
closing the loop between the network substrate and the BFT substrate: a
deployment's protocol latency follows from where its sites actually sit
on the island's network.
"""

from __future__ import annotations

import networkx as nx

from repro.bft.network_sim import NetworkParams
from repro.errors import NetworkModelError
from repro.network.topology import WANTopology

DEFAULT_PER_HOP_MS = 2.0


def site_latency_matrix(
    wan: WANTopology, per_hop_ms: float = DEFAULT_PER_HOP_MS
) -> dict[tuple[str, str], float]:
    """One-way latency between every pair of control sites (ms).

    Shortest path in hops times the per-hop forwarding delay.  Raises if
    any site pair is disconnected (a healthy design never is).
    """
    if per_hop_ms <= 0:
        raise NetworkModelError("per-hop latency must be positive")
    sites = sorted(wan.site_nodes)
    matrix: dict[tuple[str, str], float] = {}
    for i, a in enumerate(sites):
        for b in sites[i + 1 :]:
            try:
                hops = nx.shortest_path_length(wan.graph, a, b)
            except nx.NetworkXNoPath:
                raise NetworkModelError(
                    f"sites {a!r} and {b!r} are not connected"
                ) from None
            latency = hops * per_hop_ms
            matrix[(a, b)] = latency
            matrix[(b, a)] = latency
    return matrix


def network_params_from_wan(
    wan: WANTopology,
    per_hop_ms: float = DEFAULT_PER_HOP_MS,
    intra_site_latency_ms: float = 1.0,
) -> NetworkParams:
    """Replication-engine latencies derived from the WAN geometry.

    The engine models one inter-site latency; use the *worst* site pair
    (protocol rounds complete when the slowest quorum member answers).
    """
    if intra_site_latency_ms <= 0:
        raise NetworkModelError("intra-site latency must be positive")
    matrix = site_latency_matrix(wan, per_hop_ms)
    if not matrix:
        # Single-site deployment: inter-site latency is never exercised,
        # but NetworkParams requires a positive value.
        return NetworkParams(
            intra_site_latency_ms=intra_site_latency_ms,
            inter_site_latency_ms=intra_site_latency_ms,
        )
    return NetworkParams(
        intra_site_latency_ms=intra_site_latency_ms,
        inter_site_latency_ms=max(matrix.values()),
    )
