"""Communication-network substrate: WAN topology and isolation attacks."""

from repro.network.attacks import IsolationPlan, LinkFloodingAttacker
from repro.network.routing import network_params_from_wan, site_latency_matrix
from repro.network.interdependency import (
    OAHU_POP_POWER,
    InterdependencyAnalysis,
    InterdependencyParams,
    InterdependencyResult,
)
from repro.network.connectivity import (
    ConnectivityReport,
    analyze,
    isolated_sites,
    sites_reachable,
)
from repro.network.topology import LinkSpec, WANTopology, build_site_wan

__all__ = [
    "LinkSpec",
    "WANTopology",
    "build_site_wan",
    "IsolationPlan",
    "LinkFloodingAttacker",
    "InterdependencyAnalysis",
    "InterdependencyParams",
    "InterdependencyResult",
    "OAHU_POP_POWER",
    "site_latency_matrix",
    "network_params_from_wan",
    "ConnectivityReport",
    "analyze",
    "isolated_sites",
    "sites_reachable",
]
