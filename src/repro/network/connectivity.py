"""Connectivity analysis of the control-site WAN."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import NetworkModelError
from repro.network.topology import WANTopology


@dataclass(frozen=True)
class ConnectivityReport:
    """Summary of how robustly the control sites are interconnected."""

    connected_site_pairs: int
    total_site_pairs: int
    isolated_sites: tuple[str, ...]
    min_site_edge_connectivity: int

    @property
    def fully_connected(self) -> bool:
        return self.connected_site_pairs == self.total_site_pairs


def sites_reachable(graph: nx.Graph, a: str, b: str) -> bool:
    """Whether two sites can communicate over the (possibly attacked) WAN."""
    if a not in graph or b not in graph:
        return False
    return nx.has_path(graph, a, b)


def isolated_sites(graph: nx.Graph, site_nodes: set[str]) -> tuple[str, ...]:
    """Sites that cannot reach any *other* site."""
    out = []
    for site in sorted(site_nodes):
        others = [s for s in site_nodes if s != site]
        if not others:
            continue
        if site not in graph or not any(sites_reachable(graph, site, o) for o in others):
            out.append(site)
    return tuple(out)


def analyze(topology: WANTopology, graph: nx.Graph | None = None) -> ConnectivityReport:
    """Connectivity report for the WAN (optionally post-attack)."""
    g = graph if graph is not None else topology.graph
    sites = sorted(topology.site_nodes)
    if len(sites) < 1:
        raise NetworkModelError("no sites to analyze")
    pairs = 0
    connected = 0
    min_connectivity = None
    for i, a in enumerate(sites):
        for b in sites[i + 1 :]:
            pairs += 1
            if sites_reachable(g, a, b):
                connected += 1
                k = nx.edge_connectivity(g, a, b)
            else:
                k = 0
            if min_connectivity is None or k < min_connectivity:
                min_connectivity = k
    return ConnectivityReport(
        connected_site_pairs=connected,
        total_site_pairs=pairs,
        isolated_sites=isolated_sites(g, topology.site_nodes),
        min_site_edge_connectivity=min_connectivity or 0,
    )
