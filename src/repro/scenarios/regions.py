"""First-class regions: named bundles of geography + hazard scenarios.

A :class:`Region` packages everything a study needs to know about a
place -- coastline, asset catalog, terrain, grid topology, and the
hazard scenario each family uses there -- behind lazy, memoized
accessors.  Regions live in a :class:`~repro.registry.Registry` so
``StudyConfig(region="oahu", hazard="earthquake")`` is pure data: the
facade resolves the name, asks the region for that family's generator,
and the rest of the stack (cache, sweep dedup, batched executor) is
unchanged.

Oahu is registered at import time (see :mod:`repro.scenarios.oahu`);
scenario packs register further regions from data files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping

from repro.errors import ConfigurationError
from repro.geo.catalog import AssetCatalog
from repro.geo.digest import geo_content_key
from repro.geo.region import CoastalRegion
from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geo.terrain import TerrainModel
    from repro.hazards.base import Hazard

__all__ = [
    "Region",
    "register_region",
    "get_region",
    "available_regions",
    "unregister_region",
]


@dataclass
class Region:
    """A registered region: lazy geography factories + hazard scenarios.

    ``build_*`` fields are zero-argument factories so registration stays
    cheap -- nothing is constructed until a study asks for it, and each
    product is memoized per :class:`Region` instance.  ``hazard_specs``
    maps hazard-family names ("hurricane", "earthquake", "flood") to the
    family's scenario object for this region; ``hazard_overrides`` lets
    a region supply a prebuilt generator for a family (Oahu's hurricane
    entry reuses the process-wide standard generator so the paper
    goldens are bit-identical by construction).
    """

    name: str
    build_catalog: Callable[[], AssetCatalog]
    description: str = ""
    build_coastal: Callable[[], CoastalRegion] | None = None
    build_terrain: Callable[[], "TerrainModel"] | None = None
    build_grid: Callable[[], Any] | None = None
    hazard_specs: Mapping[str, Any] = field(default_factory=dict)
    hazard_overrides: Mapping[str, Callable[[], "Hazard"]] = field(
        default_factory=dict
    )
    _built: Dict[str, Any] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("region name must be a non-empty string")

    def _memo(self, key: str, factory: Callable[[], Any]) -> Any:
        if key not in self._built:
            self._built[key] = factory()
        return self._built[key]

    def catalog(self) -> AssetCatalog:
        """The region's asset catalog (built once, memoized)."""
        return self._memo("catalog", self.build_catalog)

    def coastal(self) -> CoastalRegion:
        """The region's coastline, or raise if it has none."""
        if self.build_coastal is None:
            raise ConfigurationError(
                f"region {self.name!r} has no coastline data"
            )
        return self._memo("coastal", self.build_coastal)

    def terrain(self) -> "TerrainModel":
        """The region's terrain model, or raise if it has none."""
        if self.build_terrain is None:
            raise ConfigurationError(
                f"region {self.name!r} has no terrain data"
            )
        return self._memo("terrain", self.build_terrain)

    def grid(self) -> Any:
        """The region's grid topology, or raise if it has none."""
        if self.build_grid is None:
            raise ConfigurationError(
                f"region {self.name!r} has no grid topology"
            )
        return self._memo("grid", self.build_grid)

    def available_hazards(self) -> list[str]:
        """Hazard-family names this region has scenarios for."""
        return sorted(set(self.hazard_specs) | set(self.hazard_overrides))

    def hazard_spec(self, family: str) -> Any:
        """The scenario object for ``family``, or raise listing families."""
        try:
            return self.hazard_specs[family]
        except KeyError:
            raise ConfigurationError(
                f"region {self.name!r} has no {family!r} hazard scenario; "
                f"available hazards: {self.available_hazards()}"
            ) from None

    def hazard(self, family: str) -> "Hazard":
        """Build (and memoize) the ``family`` generator for this region."""
        key = f"hazard:{family}"
        if key in self._built:
            return self._built[key]
        override = self.hazard_overrides.get(family)
        if override is not None:
            generator = override()
        else:
            from repro.scenarios.hazards import get_hazard_family

            generator = get_hazard_family(family).build(self)
        self._built[key] = generator
        return generator

    def geo_key(self) -> str:
        """Content hash of the region's catalog (+ coastline if any)."""
        coastal = self.coastal() if self.build_coastal is not None else None
        return geo_content_key(self.catalog(), coastal)


_REGIONS: Registry[Region] = Registry("region")


def register_region(region: Region, *, replace: bool = False) -> Region:
    """Register a region under its name; returns it for assignment."""
    return _REGIONS.register(region.name, region, replace=replace)


def get_region(name: str) -> Region:
    """Look up a registered region by name."""
    return _REGIONS.get(name)


def available_regions() -> list[str]:
    """Registered region names, sorted."""
    return _REGIONS.available()


def unregister_region(name: str) -> None:
    """Remove a region registration (used by tests and pack reloads)."""
    _REGIONS.unregister(name)
