"""Scenario catalog: regions, hazard families, and scenario packs.

The data-driven face of the study stack.  A *region* bundles geography
(coastline, asset catalog, terrain, grid) with one scenario per hazard
*family* (hurricane, earthquake, flood); a *scenario pack* ships a
region as schema-validated, content-hashed data files.  Studies select
both by name::

    from repro import StudyConfig, run_study

    result = run_study(StudyConfig(region="oahu", hazard="flood"))

and sweeps treat ``region`` and ``hazard`` as axes, sharing each
distinct ensemble exactly once.  See ``docs/scenario_packs.md``.
"""

from repro.scenarios.hazards import (
    HazardFamily,
    HurricaneHazardSpec,
    available_hazard_families,
    get_hazard_family,
    register_hazard_family,
)
from repro.scenarios.regions import (
    Region,
    available_regions,
    get_region,
    register_region,
    unregister_region,
)

# Registering Oahu is an import side effect, exactly like the chain
# presets in repro.core.chain.
from repro.scenarios.oahu import OAHU_REGION  # noqa: E402  (isort: after registries)
from repro.scenarios.pack import (
    PACK_SCHEMA_VERSION,
    ScenarioPack,
    load_scenario_pack,
    register_scenario_pack,
    write_scenario_pack,
)

__all__ = [
    "Region",
    "register_region",
    "get_region",
    "available_regions",
    "unregister_region",
    "HazardFamily",
    "HurricaneHazardSpec",
    "register_hazard_family",
    "get_hazard_family",
    "available_hazard_families",
    "OAHU_REGION",
    "ScenarioPack",
    "PACK_SCHEMA_VERSION",
    "load_scenario_pack",
    "register_scenario_pack",
    "write_scenario_pack",
]
