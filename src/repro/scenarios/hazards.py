"""Hazard-family registry: how each family builds generators from regions.

A :class:`HazardFamily` is the data-driven description of one hazard
kind: how to build a :class:`~repro.hazards.base.Hazard` generator from
a :class:`~repro.scenarios.regions.Region`'s scenario entry, which
fragility model is its natural default (inundation depth thresholds for
water hazards, PGA capacity for shaking), which threat-chain preset
pairs with it, and how its scenario round-trips through pack JSON.

Three families ship built in -- ``hurricane``, ``earthquake``, and
``flood`` -- and new ones register through :func:`register_hazard_family`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigurationError
from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hazards.base import Hazard
    from repro.hazards.fragility import FragilityModel
    from repro.scenarios.regions import Region

__all__ = [
    "HurricaneHazardSpec",
    "HazardFamily",
    "register_hazard_family",
    "get_hazard_family",
    "available_hazard_families",
]


@dataclass(frozen=True)
class HurricaneHazardSpec:
    """A region's hurricane entry: storm scenario + surge-model options.

    The storm parameters alone don't determine the generator -- basin
    extensions and mesh resolution are regional modelling choices -- so
    the hurricane family's region entry carries all three.
    """

    scenario: Any  # HurricaneScenarioSpec
    basins: tuple = ()
    mesh_spacing_km: float = 2.0


def _build_hurricane(region: "Region") -> "Hazard":
    from repro.hazards.hurricane.ensemble import EnsembleGenerator
    from repro.hazards.hurricane.inundation import ExtensionParams

    spec = region.hazard_spec("hurricane")
    if not isinstance(spec, HurricaneHazardSpec):
        spec = HurricaneHazardSpec(scenario=spec)
    return EnsembleGenerator(
        region=region.coastal(),
        catalog=region.catalog(),
        scenario=spec.scenario,
        extension_params=ExtensionParams(basins=tuple(spec.basins)),
        mesh_spacing_km=spec.mesh_spacing_km,
    )


def _build_earthquake(region: "Region") -> "Hazard":
    from repro.hazards.earthquake import EarthquakeGenerator

    return EarthquakeGenerator(region.catalog(), region.hazard_spec("earthquake"))


def _build_flood(region: "Region") -> "Hazard":
    from repro.hazards.flood import FloodGenerator

    return FloodGenerator(region.catalog(), region.hazard_spec("flood"))


def _hurricane_default_fragility() -> "FragilityModel | None":
    return None  # ThresholdFragility(PAPER_FAILURE_THRESHOLD_M) downstream default


def _earthquake_default_fragility() -> "FragilityModel | None":
    from repro.hazards.earthquake import seismic_fragility

    return seismic_fragility()


def _flood_default_fragility() -> "FragilityModel | None":
    return None  # flood depths use the same 0.5 m threshold as surge


def _hurricane_spec_to_dict(spec: Any) -> dict:
    from repro.io.scenario_io import scenario_to_dict

    if not isinstance(spec, HurricaneHazardSpec):
        spec = HurricaneHazardSpec(scenario=spec)
    from dataclasses import asdict

    return {
        "scenario": scenario_to_dict(spec.scenario),
        "basins": [asdict(b) for b in spec.basins],
        "mesh_spacing_km": spec.mesh_spacing_km,
    }


def _hurricane_spec_from_dict(data: dict) -> Any:
    from repro.errors import SerializationError
    from repro.hazards.hurricane.inundation import Basin
    from repro.io.scenario_io import scenario_from_dict

    try:
        basins = tuple(
            Basin(
                name=b["name"],
                segment_names=tuple(b["segment_names"]),
                membership_distance_km=b.get("membership_distance_km", 3.0),
            )
            for b in data.get("basins", [])
        )
        return HurricaneHazardSpec(
            scenario=scenario_from_dict(data["scenario"]),
            basins=basins,
            mesh_spacing_km=data.get("mesh_spacing_km", 2.0),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed hurricane hazard entry: {exc}") from exc


def _earthquake_spec_to_dict(spec: Any) -> dict:
    from repro.io.geo_io import earthquake_scenario_to_dict

    return earthquake_scenario_to_dict(spec)


def _flood_spec_to_dict(spec: Any) -> dict:
    from repro.io.geo_io import flood_scenario_to_dict

    return flood_scenario_to_dict(spec)


def _earthquake_spec_from_dict(data: dict) -> Any:
    from repro.io.geo_io import earthquake_scenario_from_dict

    return earthquake_scenario_from_dict(data)


def _flood_spec_from_dict(data: dict) -> Any:
    from repro.io.geo_io import flood_scenario_from_dict

    return flood_scenario_from_dict(data)


@dataclass(frozen=True)
class HazardFamily:
    """One hazard kind: region->generator builder plus family defaults."""

    name: str
    description: str
    build: Callable[["Region"], "Hazard"]
    default_fragility: Callable[[], "FragilityModel | None"] = lambda: None
    default_chain: str | None = None
    spec_to_dict: Callable[[Any], dict] | None = None
    spec_from_dict: Callable[[dict], Any] | None = None
    requires_coastline: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("hazard family name must be non-empty")


_FAMILIES: Registry[HazardFamily] = Registry(
    "hazard family", plural="hazard families"
)


def register_hazard_family(
    family: HazardFamily, *, replace: bool = False
) -> HazardFamily:
    """Register a family under its name; returns it for assignment."""
    return _FAMILIES.register(family.name, family, replace=replace)


def get_hazard_family(name: str) -> HazardFamily:
    """Look up a registered hazard family by name."""
    return _FAMILIES.get(name)


def available_hazard_families() -> list[str]:
    """Registered hazard-family names, sorted."""
    return _FAMILIES.available()


FAMILY_HURRICANE = register_hazard_family(
    HazardFamily(
        name="hurricane",
        description="Hurricane storm-surge inundation (the paper's hazard).",
        build=_build_hurricane,
        default_fragility=_hurricane_default_fragility,
        default_chain=None,  # the paper chain is already the global default
        spec_to_dict=_hurricane_spec_to_dict,
        spec_from_dict=_hurricane_spec_from_dict,
        requires_coastline=True,
    )
)

FAMILY_EARTHQUAKE = register_hazard_family(
    HazardFamily(
        name="earthquake",
        description="Fault-rupture PGA shaking with soft-soil amplification.",
        build=_build_earthquake,
        default_fragility=_earthquake_default_fragility,
        default_chain="earthquake",
        spec_to_dict=_earthquake_spec_to_dict,
        spec_from_dict=_earthquake_spec_from_dict,
    )
)

FAMILY_FLOOD = register_hazard_family(
    HazardFamily(
        name="flood",
        description="Riverine flooding from lognormal peak discharge.",
        build=_build_flood,
        default_fragility=_flood_default_fragility,
        default_chain="flood",
        spec_to_dict=_flood_spec_to_dict,
        spec_from_dict=_flood_spec_from_dict,
    )
)
