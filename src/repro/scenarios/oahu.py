"""Oahu as the first registered region.

The paper's case study, re-expressed as catalog data: the same
geography builders that used to be reached through ``repro.geo.oahu``
module state, bundled with one scenario per hazard family.  The
hurricane entry is overridden to reuse
:func:`~repro.hazards.hurricane.standard.shared_standard_generator`, so
``StudyConfig(region="oahu", hazard="hurricane")`` resolves to the
*identical* generator object the classic no-argument ``StudyConfig()``
path uses -- the paper goldens (93/1000 red) are bit-identical by
construction, not by coincidence.
"""

from __future__ import annotations

from repro.geo._oahu_data import (
    build_oahu_catalog,
    build_oahu_region,
    build_oahu_terrain,
)
from repro.hazards.earthquake import standard_oahu_fault
from repro.hazards.flood import standard_oahu_flood
from repro.hazards.hurricane.standard import (
    OAHU_SOUTH_SHORE_BASIN,
    shared_standard_generator,
    standard_oahu_scenario,
)
from repro.scenarios.hazards import HurricaneHazardSpec
from repro.scenarios.regions import Region, register_region

__all__ = ["build_oahu_region_entry", "OAHU_REGION"]


def _build_grid():
    from repro.grid.model import build_oahu_grid

    return build_oahu_grid()


def build_oahu_region_entry() -> Region:
    """The Oahu case-study bundle (unregistered; see ``OAHU_REGION``)."""
    return Region(
        name="oahu",
        description=(
            "The paper's Oahu, Hawaii case study: synthetic coastline, "
            "24-asset catalog, and one scenario per hazard family."
        ),
        build_catalog=build_oahu_catalog,
        build_coastal=build_oahu_region,
        build_terrain=build_oahu_terrain,
        build_grid=_build_grid,
        hazard_specs={
            "hurricane": HurricaneHazardSpec(
                scenario=standard_oahu_scenario(),
                basins=(OAHU_SOUTH_SHORE_BASIN,),
            ),
            "earthquake": standard_oahu_fault(),
            "flood": standard_oahu_flood(),
        },
        hazard_overrides={"hurricane": shared_standard_generator},
    )


#: Registered at import of :mod:`repro.scenarios`.
OAHU_REGION = register_region(build_oahu_region_entry())
