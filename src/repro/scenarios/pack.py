"""Versioned scenario packs: regions as data files.

A scenario pack is a directory (or zip) containing a ``scenario.json``
manifest plus the data files it references::

    my-region/
      scenario.json      <- manifest: name, schema_version, file hashes
      assets.json        <- asset catalog (repro.io.geo_io.catalog_*)
      coastline.json     <- optional coastline (region_*)
      hurricane.json     <- one scenario file per hazard family
      flood.json

The manifest records a sha256 for every data file; loading re-hashes
each file and refuses to proceed on mismatch, so a pack edited after it
was written fails loudly instead of silently reusing stale cached
ensembles.  The surviving content *also* flows into ensemble cache keys
(generators hash the geography + scenario they were built from), so two
packs differing in any data file never share a cache entry.

``schema_version`` is bumped only for breaking manifest changes; loaders
must reject versions they don't understand rather than guess (see
``docs/scenario_packs.md`` for the policy).
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError, SerializationError
from repro.geo.catalog import AssetCatalog
from repro.geo.region import CoastalRegion
from repro.io.atomic import atomic_write_text
from repro.io.geo_io import (
    catalog_from_dict,
    catalog_to_dict,
    region_from_dict,
    region_to_dict,
)
from repro.scenarios.hazards import get_hazard_family
from repro.scenarios.regions import Region, register_region

__all__ = [
    "PACK_SCHEMA_VERSION",
    "PACK_KIND",
    "MANIFEST_NAME",
    "ScenarioPack",
    "load_scenario_pack",
    "register_scenario_pack",
    "write_scenario_pack",
]

PACK_SCHEMA_VERSION = 1
PACK_KIND = "repro.scenario_pack"
MANIFEST_NAME = "scenario.json"


@dataclass(frozen=True)
class ScenarioPack:
    """A validated scenario pack: manifest metadata plus the built region."""

    name: str
    description: str
    schema_version: int
    path: Path
    digest: str
    region: Region = field(compare=False)
    manifest: Mapping[str, Any] = field(compare=False)

    def info(self) -> dict[str, Any]:
        """Human-facing summary (the ``pack info`` CLI payload)."""
        return {
            "name": self.name,
            "description": self.description,
            "schema_version": self.schema_version,
            "path": str(self.path),
            "digest": self.digest,
            "hazards": self.region.available_hazards(),
            "assets": len(self.region.catalog()),
            "has_coastline": self.region.build_coastal is not None,
            "files": dict(self.manifest.get("files", {})),
        }


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _make_reader(path: Path) -> Callable[[str], bytes]:
    """A filename->bytes reader over a pack directory or zip archive."""
    if path.is_dir():

        def read_dir(name: str) -> bytes:
            file_path = path / name
            if not file_path.is_file():
                raise SerializationError(
                    f"scenario pack {path} is missing file {name!r}"
                )
            return file_path.read_bytes()

        return read_dir
    if path.is_file() and zipfile.is_zipfile(path):
        archive = zipfile.ZipFile(path)
        names = set(archive.namelist())
        # Tolerate a single top-level folder inside the archive.
        prefix = ""
        if MANIFEST_NAME not in names:
            tops = {n.split("/", 1)[0] for n in names if "/" in n}
            for top in sorted(tops):
                if f"{top}/{MANIFEST_NAME}" in names:
                    prefix = f"{top}/"
                    break

        def read_zip(name: str) -> bytes:
            try:
                return archive.read(prefix + name)
            except KeyError:
                raise SerializationError(
                    f"scenario pack {path} is missing file {name!r}"
                ) from None

        return read_zip
    raise SerializationError(
        f"no scenario pack at {path}: expected a directory or zip archive "
        f"containing {MANIFEST_NAME}"
    )


def _parse_json(raw: bytes, label: str) -> Any:
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"{label} is not valid JSON: {exc}") from exc


def _require(manifest: Mapping[str, Any], key: str, kind: type, label: str) -> Any:
    value = manifest.get(key)
    if not isinstance(value, kind) or (kind is str and not value):
        raise SerializationError(
            f"malformed scenario pack manifest in {label}: "
            f"{key!r} must be a non-empty {kind.__name__}"
        )
    return value


def load_scenario_pack(path: str | Path) -> ScenarioPack:
    """Load and validate a scenario pack from a directory or zip.

    Raises :class:`~repro.errors.SerializationError` on a malformed
    manifest, a missing data file, or a content-hash mismatch, and
    :class:`~repro.errors.ConfigurationError` for unknown hazard
    families.
    """
    path = Path(path)
    read = _make_reader(path)
    manifest = _parse_json(read(MANIFEST_NAME), f"{path}/{MANIFEST_NAME}")
    if not isinstance(manifest, dict):
        raise SerializationError(
            f"malformed scenario pack manifest in {path}: expected an object"
        )
    if manifest.get("kind") != PACK_KIND:
        raise SerializationError(
            f"{path} is not a scenario pack: manifest kind is "
            f"{manifest.get('kind')!r}, expected {PACK_KIND!r}"
        )
    version = manifest.get("schema_version")
    if version != PACK_SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported scenario pack schema_version {version!r} in {path}; "
            f"this build reads version {PACK_SCHEMA_VERSION}"
        )
    name = _require(manifest, "name", str, str(path))
    description = manifest.get("description", "")
    region_entry = _require(manifest, "region", dict, str(path))
    hazards_entry = _require(manifest, "hazards", dict, str(path))
    files_entry = _require(manifest, "files", dict, str(path))

    # Verify every declared file's content hash before trusting any of it.
    contents: dict[str, bytes] = {}
    for file_name, expected in sorted(files_entry.items()):
        raw = read(file_name)
        actual = _sha256(raw)
        if actual != expected:
            raise SerializationError(
                f"content-hash mismatch for {file_name!r} in scenario pack "
                f"{path}: manifest says {expected}, file hashes to {actual} "
                f"(the pack was modified after it was written; rebuild it "
                f"rather than editing data files in place)"
            )
        contents[file_name] = raw

    def declared(file_name: str, role: str) -> bytes:
        if file_name not in contents:
            raise SerializationError(
                f"scenario pack {path}: {role} file {file_name!r} is not "
                f"listed in the manifest 'files' hash map"
            )
        return contents[file_name]

    assets_name = _require(region_entry, "assets", str, str(path))
    catalog = catalog_from_dict(
        _parse_json(declared(assets_name, "asset"), assets_name)
    )
    coastal: CoastalRegion | None = None
    coast_name = region_entry.get("coastline")
    if coast_name is not None:
        coastal = region_from_dict(
            _parse_json(declared(coast_name, "coastline"), coast_name)
        )

    hazard_specs: dict[str, Any] = {}
    for family_name, file_name in sorted(hazards_entry.items()):
        family = get_hazard_family(family_name)
        if family.spec_from_dict is None:
            raise ConfigurationError(
                f"hazard family {family_name!r} does not support scenario packs"
            )
        if family.requires_coastline and coastal is None:
            raise SerializationError(
                f"scenario pack {path}: hazard family {family_name!r} "
                f"requires a coastline file but the pack declares none"
            )
        spec_doc = _parse_json(declared(file_name, family_name), file_name)
        hazard_specs[family_name] = family.spec_from_dict(spec_doc)

    digest = _sha256(
        json.dumps(manifest, sort_keys=True, separators=(",", ":")).encode()
    )
    region = Region(
        name=name,
        description=description,
        build_catalog=lambda: catalog,
        build_coastal=(lambda: coastal) if coastal is not None else None,
        hazard_specs=hazard_specs,
    )
    return ScenarioPack(
        name=name,
        description=description,
        schema_version=version,
        path=path,
        digest=digest,
        region=region,
        manifest=manifest,
    )


def register_scenario_pack(
    path: str | Path, *, replace: bool = False
) -> ScenarioPack:
    """Load a pack and register its region under the pack's name."""
    pack = load_scenario_pack(path)
    register_region(pack.region, replace=replace)
    return pack


def write_scenario_pack(
    directory: str | Path,
    *,
    name: str,
    catalog: AssetCatalog,
    description: str = "",
    coastal: CoastalRegion | None = None,
    hazards: Mapping[str, Any] | None = None,
) -> Path:
    """Write a pack directory (data files + hashed manifest); returns it.

    ``hazards`` maps family names to that family's scenario object (the
    hurricane family accepts either a bare ``HurricaneScenarioSpec`` or
    a :class:`~repro.scenarios.hazards.HurricaneHazardSpec`).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    files: dict[str, str] = {}

    def emit(file_name: str, payload: Any) -> None:
        text = json.dumps(payload, indent=2, sort_keys=True)
        atomic_write_text(directory / file_name, text)
        files[file_name] = _sha256(text.encode())

    emit("assets.json", catalog_to_dict(catalog))
    region_entry: dict[str, str] = {"assets": "assets.json"}
    if coastal is not None:
        emit("coastline.json", region_to_dict(coastal))
        region_entry["coastline"] = "coastline.json"

    hazards_entry: dict[str, str] = {}
    for family_name, spec in sorted((hazards or {}).items()):
        family = get_hazard_family(family_name)
        if family.spec_to_dict is None:
            raise ConfigurationError(
                f"hazard family {family_name!r} does not support scenario packs"
            )
        file_name = f"{family_name}.json"
        emit(file_name, family.spec_to_dict(spec))
        hazards_entry[family_name] = file_name

    manifest = {
        "schema_version": PACK_SCHEMA_VERSION,
        "kind": PACK_KIND,
        "name": name,
        "description": description,
        "region": region_entry,
        "hazards": hazards_entry,
        "files": files,
    }
    atomic_write_text(
        directory / MANIFEST_NAME, json.dumps(manifest, indent=2, sort_keys=True)
    )
    return directory
