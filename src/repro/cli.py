"""Command-line interface: ``compound-threats`` / ``python -m repro``.

Subcommands mirror the paper's workflow:

* ``run``         -- the supported entrypoint: build a ``StudyConfig``,
                     call :func:`repro.run_study`, print the matrix, and
                     optionally persist ``run_manifest.json`` /
                     ``--metrics-out`` / ``--trace-out`` telemetry.
* ``sweep``       -- run a grid of studies through
                     :func:`repro.sweep.run_sweep`: repeatable axis flags
                     build the cross-product, hazard ensembles are
                     deduplicated across the grid, and ``--sweep-dir`` /
                     ``--resume`` checkpoint at study granularity.
* ``serve``       -- run the always-on study service
                     (:mod:`repro.service`): submit/status/result over
                     HTTP with a bounded admission queue, persistent
                     result store, and journal-backed restart recovery.
* ``pack``        -- validate or describe a scenario pack
                     (``pack validate PATH`` / ``pack info PATH``).
* ``ensemble``    -- generate the hurricane realizations (CSV output).
* ``analyze``     -- deprecated alias of ``run`` (old flag spellings
                     keep working; it routes through the same facade and
                     will be removed in 2.0.0).
* ``figures``     -- regenerate every paper figure as text charts.
* ``siting``      -- rank backup control-center locations.
* ``bft-demo``    -- run the replication engine under compound faults.
* ``grid-impact`` -- quantify SCADA value via N-1 cascade analysis, then
                     run the ``grid-coupled`` threat chain through the
                     facade.
* ``timeline``    -- downtime distributions via :func:`repro.run_timeline`.
* ``earthquake``  -- the seismic hazard through ``run_study`` with the
                     ``earthquake`` chain.

``run`` and ``sweep`` accept ``--chain`` to pick the threat chain
(registered presets: ``paper``, ``grid-coupled``, ``earthquake``,
``flood``, ``tail-risk``) and ``--region``/``--hazard`` to pick from
the scenario catalog (``--pack PATH`` registers a scenario pack first);
the facade-backed subcommands all share the ``--jobs``/``--cache-dir``
and ``--manifest-out``/``--metrics-out``/``--trace-out`` plumbing.
``run`` also accepts ``--sampling`` (a registered plan name or a JSON
spec) and ``--target-ci`` (promotes the plan to an adaptive run that
stops at the requested relative CI); ``sweep`` takes ``--sampling`` as
a repeatable axis.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import StudyConfig, run_study, run_timeline
from repro.core.pipeline import CompoundThreatAnalysis
from repro.core.report import format_matrix_csv
from repro.core.threat import PAPER_SCENARIOS, get_scenario
from repro.errors import ReproError
from repro.geo import HONOLULU_CC
from repro.hazards.hurricane.standard import (
    DEFAULT_REALIZATIONS,
    DEFAULT_SEED,
    standard_oahu_ensemble,
    standard_oahu_generator,
)
from repro.io.realization_io import load_ensemble_csv, save_ensemble_csv
from repro.scada.architectures import PAPER_CONFIGURATIONS, get_architecture
from repro.scada.placement import (
    PLACEMENT_KAHE,
    PLACEMENT_WAIAU,
    available_placements,
)
from repro.viz import profile_chart


def _parse_sampling(value: str | None):
    """A ``--sampling`` flag value: a plan name or an inline JSON spec."""
    if value is None:
        return None
    text = value.strip()
    if text.startswith("{"):
        import json

        from repro.errors import ConfigurationError

        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"--sampling JSON spec is invalid: {exc}"
            ) from exc
    return text


def _register_packs(args: argparse.Namespace) -> None:
    """Register every ``--pack`` path before configs are built."""
    from repro.scenarios import register_scenario_pack

    for path in getattr(args, "pack", None) or []:
        pack = register_scenario_pack(path, replace=True)
        print(f"registered scenario pack {pack.name!r} from {path}", file=sys.stderr)


def _cmd_ensemble(args: argparse.Namespace) -> int:
    if args.scenario_file:
        from repro.geo import build_oahu_catalog, build_oahu_region
        from repro.hazards.hurricane.ensemble import EnsembleGenerator
        from repro.hazards.hurricane.inundation import ExtensionParams
        from repro.hazards.hurricane.standard import OAHU_SOUTH_SHORE_BASIN
        from repro.io.scenario_io import load_scenario_json

        generator = EnsembleGenerator(
            region=build_oahu_region(),
            catalog=build_oahu_catalog(),
            scenario=load_scenario_json(args.scenario_file),
            extension_params=ExtensionParams(basins=(OAHU_SOUTH_SHORE_BASIN,)),
        )
    else:
        generator = standard_oahu_generator()
    retry = None
    if args.max_retries is not None or args.task_timeout is not None:
        from repro.runtime.controller import RetryPolicy

        kwargs = {}
        if args.max_retries is not None:
            kwargs["max_retries"] = args.max_retries
        if args.task_timeout is not None:
            kwargs["task_timeout_s"] = args.task_timeout
        retry = RetryPolicy(**kwargs)
    ensemble = generator.generate(
        count=args.count,
        seed=args.seed,
        n_jobs=args.jobs,
        cache_dir=args.cache_dir,
        resume=args.resume,
        retry=retry,
    )
    save_ensemble_csv(ensemble, args.output)
    p = ensemble.flood_probability(HONOLULU_CC)
    print(
        f"wrote {len(ensemble)} realizations to {args.output} "
        f"(Honolulu CC flood probability: {p:.1%})"
    )
    return 0


def _load_or_generate(args: argparse.Namespace):
    if getattr(args, "ensemble", None):
        return load_ensemble_csv(args.ensemble)
    return standard_oahu_ensemble(
        n_jobs=getattr(args, "jobs", 1),
        cache_dir=getattr(args, "cache_dir", None),
        resume=getattr(args, "resume", False),
        max_retries=getattr(args, "max_retries", None),
        task_timeout=getattr(args, "task_timeout", None),
    )


def _study_config_from_args(
    args: argparse.Namespace, *, placement: str | None = None
) -> StudyConfig:
    """The one flags -> :class:`StudyConfig` mapping `run` and `sweep` share.

    ``placement`` overrides ``args.placement`` for callers (the sweep)
    whose placement flag is an axis rather than a single value.
    """
    ensemble = (
        load_ensemble_csv(args.ensemble) if getattr(args, "ensemble", None) else None
    )
    chain = getattr(args, "chain", None)
    if isinstance(chain, list):  # the sweep's --chain is an axis (append)
        chain = chain[0] if chain else None
    region = getattr(args, "region", None)
    if isinstance(region, list):  # the sweep's --region is an axis (append)
        region = region[0] if region else None
    hazard = getattr(args, "hazard", None)
    if isinstance(hazard, list):  # the sweep's --hazard is an axis (append)
        hazard = hazard[0] if hazard else None
    sampling = getattr(args, "sampling", None)
    if isinstance(sampling, list):  # the sweep's --sampling is an axis (append)
        sampling = sampling[0] if sampling else None
    if sampling is not None or getattr(args, "target_ci", None) is not None:
        from repro.sampling.plans import sampling_from_options

        sampling = sampling_from_options(
            _parse_sampling(sampling), getattr(args, "target_ci", None)
        )
    return StudyConfig(
        configurations=tuple(args.config) if args.config else PAPER_CONFIGURATIONS,
        placement=placement if placement is not None else args.placement,
        scenarios=tuple(args.scenario) if args.scenario else PAPER_SCENARIOS,
        n_realizations=args.realizations,
        seed=args.seed,
        ensemble=ensemble,
        chain=chain,
        region=region,
        hazard=hazard,
        sampling=sampling,
        batch=False if getattr(args, "no_batch", False) else None,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        resume=args.resume,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        observability=not args.no_observability,
        manifest_out=getattr(args, "manifest_out", None),
        metrics_out=getattr(args, "metrics_out", None),
        trace_out=getattr(args, "trace_out", None),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    """Build a ``StudyConfig`` from the flags and drive the facade."""
    if getattr(args, "deprecated_alias", None):
        from repro._deprecation import deprecation_message

        # The canonical message (with the removal release) comes from the
        # shared deprecation registry; see repro._deprecation.
        print(
            f"note: `{args.deprecated_alias}` is a deprecated alias of "
            "`run`: "
            + deprecation_message(f"compound-threats {args.deprecated_alias}")
            + " (flags keep working and route through repro.run_study())",
            file=sys.stderr,
        )
    _register_packs(args)
    config = _study_config_from_args(args)
    plan = config.resolve_sampling()
    if plan is not None and plan.name == "adaptive":
        from repro.sampling import run_adaptive_study

        adaptive = run_adaptive_study(config)
        print(adaptive.report(), file=sys.stderr)
        result = adaptive.result
    else:
        result = run_study(config)
    if args.csv:
        print(format_matrix_csv(result.matrix))
    else:
        print(result.report())
    if args.run_report:
        print()
        print(result.run_report())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Build a grid from repeatable axis flags and drive the sweep engine."""
    from repro.sweep import run_sweep, sweep_grid

    _register_packs(args)
    placements = args.placement or ["waiau"]
    base = _study_config_from_args(args, placement=placements[0])
    axes: dict = {
        "configurations": list(args.config)
        if args.config
        else [a.name for a in PAPER_CONFIGURATIONS],
        "scenarios": list(args.scenario)
        if args.scenario
        else [s.name for s in PAPER_SCENARIOS],
    }
    if len(placements) > 1:
        axes["placement"] = placements
    if args.category:
        axes["category"] = args.category
    if args.fragility_threshold:
        axes["threshold"] = args.fragility_threshold
    if args.chain and len(args.chain) > 1:
        axes["chain"] = args.chain
    if args.region and len(args.region) > 1:
        axes["region"] = args.region
    if args.hazard and len(args.hazard) > 1:
        axes["hazard"] = args.hazard
    if args.sampling and len(args.sampling) > 1:
        axes["sampling"] = [_parse_sampling(value) for value in args.sampling]
    grid = sweep_grid(base, **axes)
    result = run_sweep(
        grid,
        jobs=args.jobs,
        sweep_dir=args.sweep_dir,
        resume=args.resume,
        manifest_out=args.sweep_manifest_out,
        observability=not args.no_observability,
        strict=not args.keep_going,
        study_deadline_s=args.study_deadline,
        budget_s=args.sweep_budget,
    )
    if args.table:
        rows = result.to_table()
        columns = list(rows[0]) if rows else []
        print(",".join(columns))
        for row in rows:
            print(",".join(str(row[c]) for c in columns))
    else:
        print(result.report())
    for axis in args.compare or []:
        print()
        print(result.compare(axis).format())
    counters = result.manifest.get("telemetry", {}).get("metrics", {}).get(
        "counters", {}
    )
    print(
        f"\nsweep: {len(result)} studies, "
        f"{result.manifest['n_groups']} ensemble group(s), "
        f"{int(counters.get('sweep.ensemble.generated', 0))} generated, "
        f"{int(counters.get('sweep.ensemble.reused', 0))} reused, "
        f"{int(counters.get('sweep.studies_resumed', 0))} resumed",
        file=sys.stderr,
    )
    if args.out:
        print(f"sweep result written to {result.save_json(args.out)}", file=sys.stderr)
    if result.failures:
        print(
            f"sweep: {len(result.failures)} study(ies) FAILED:", file=sys.stderr
        )
        for failure in result.failures:
            print(
                f"  [{failure.position}] {failure.label}: "
                f"{failure.error_type}: {failure.message} "
                f"(after {failure.attempts} attempt(s))",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    ensemble = _load_or_generate(args)
    analysis = CompoundThreatAnalysis(ensemble)
    figures = [
        ("Figure 6: Hurricane (Honolulu + Waiau + DRFortress)", PLACEMENT_WAIAU, "hurricane"),
        ("Figure 7: Hurricane + Server Intrusion", PLACEMENT_WAIAU, "hurricane+intrusion"),
        ("Figure 8: Hurricane + Site Isolation", PLACEMENT_WAIAU, "hurricane+isolation"),
        (
            "Figure 9: Hurricane + Server Intrusion + Site Isolation",
            PLACEMENT_WAIAU,
            "hurricane+intrusion+isolation",
        ),
        ("Figure 10: Hurricane (Honolulu + Kahe + DRFortress)", PLACEMENT_KAHE, "hurricane"),
        (
            "Figure 11: Hurricane + Server Intrusion (Kahe backup)",
            PLACEMENT_KAHE,
            "hurricane+intrusion",
        ),
    ]
    for title, placement, scenario_name in figures:
        scenario = get_scenario(scenario_name)
        profiles = {
            arch.name: analysis.run(arch, placement, scenario)
            for arch in PAPER_CONFIGURATIONS
        }
        print(profile_chart(profiles, title=title))
        print()
    return 0


def _cmd_siting(args: argparse.Namespace) -> int:
    from repro.siting.candidates import control_site_candidates
    from repro.siting.objectives import (
        GREEN_OBJECTIVE,
        OPERATIONAL_OBJECTIVE,
        SAFETY_OBJECTIVE,
    )
    from repro.siting.optimizer import PlacementOptimizer

    objectives = {
        "green": GREEN_OBJECTIVE,
        "operational": OPERATIONAL_OBJECTIVE,
        "safety": SAFETY_OBJECTIVE,
    }
    ensemble = _load_or_generate(args)
    analysis = CompoundThreatAnalysis(ensemble)
    from repro.geo import build_oahu_catalog

    catalog = build_oahu_catalog()
    candidates = control_site_candidates(
        catalog, include_plants=args.include_plants
    )
    optimizer = PlacementOptimizer(
        analysis,
        get_architecture(args.config),
        list(PAPER_SCENARIOS),
        objectives[args.objective],
    )
    ranked = optimizer.rank_backups(primary=args.primary, candidates=candidates)
    print(f"Backup ranking for {args.config!r} (objective: {args.objective}):")
    for i, result in enumerate(ranked, 1):
        print(f"  {i}. {result.placement.backup}: {result.score:.4f}")
    return 0


def _cmd_bft_demo(args: argparse.Namespace) -> int:
    from repro.bft.engine import BFTCluster, ClusterSpec
    from repro.bft.replica import Behavior

    spec = ClusterSpec(
        sites=("control-center-1", "control-center-2", "data-center"),
        replicas_per_site=6,
    )
    cluster = BFTCluster(spec, byzantine={args.byzantine: Behavior.EQUIVOCATE})
    if args.flood_site:
        cluster.flood_site(args.flood_site)
    if args.isolate_site:
        cluster.isolate_site(args.isolate_site)
    cluster.enable_proactive_recovery()
    cluster.submit_workload(args.requests, interval_ms=50.0)
    report = cluster.run(duration_ms=60_000.0)
    print(f"requests submitted:   {report.requests_submitted}")
    print(f"safety preserved:     {report.safety_ok}")
    print(f"workload ordered:     {report.ordered_everywhere}")
    print(f"proactive recoveries: {report.recoveries_completed}")
    print(f"messages delivered:   {report.messages_delivered}")
    return 0 if report.safety_ok else 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    """Downtime rollout via the :func:`repro.run_timeline` facade."""
    from repro.core.timeline import TimelineParams

    if not args.scenario:
        args.scenario = ["hurricane+intrusion+isolation"]
    config = _study_config_from_args(args)
    # The rollout's repair/cleanup sampling is seeded separately from the
    # hazard ensemble, exactly as the pre-facade subcommand did.
    config = config.replace(analysis_seed=args.timeline_seed)
    if config.ensemble is not None and args.realizations < len(config.ensemble):
        config = config.replace(ensemble=config.ensemble.subset(args.realizations))
    result = run_timeline(
        config,
        params=TimelineParams(
            attack_delay_h=args.attack_delay_hours,
            isolation_duration_h=args.isolation_hours,
            site_repair_median_h=args.repair_hours,
        ),
    )
    print(result.report())
    if args.run_report:
        print()
        print(result.run_report())
    return 0


def _cmd_earthquake(args: argparse.Namespace) -> int:
    """Seismic hazard through the same facade as `run` (chain field set)."""
    from repro.geo import build_oahu_catalog
    from repro.hazards.earthquake import (
        EarthquakeGenerator,
        seismic_fragility,
        standard_oahu_fault,
    )

    generator = EarthquakeGenerator(build_oahu_catalog(), standard_oahu_fault())
    ensemble = generator.generate(count=args.realizations, seed=args.seed)
    config = _study_config_from_args(args).replace(
        ensemble=ensemble,
        fragility=seismic_fragility(args.capacity_g),
        chain=args.chain or "earthquake",
    )
    result = run_study(config)
    print(
        f"Earthquake compound-threat analysis ({len(ensemble)} realizations, "
        f"capacity {args.capacity_g} g):"
    )
    print(result.report())
    if args.run_report:
        print()
        print(result.run_report())
    return 0


def _cmd_correlation(args: argparse.Namespace) -> int:
    from repro.geo import build_oahu_catalog
    from repro.hazards.correlation import analyze_failure_correlation

    ensemble = _load_or_generate(args)
    catalog = build_oahu_catalog()
    names = [a.name for a in catalog.control_sites()]
    report = analyze_failure_correlation(ensemble, names)
    print("Control-site failure marginals:")
    for name in names:
        print(f"  {name:32s} {report.marginals[name]:6.1%}")
    print()
    pairs = report.correlated_pairs(args.threshold)
    if pairs:
        print(f"Failure-correlated pairs (phi >= {args.threshold}):")
        for a, b, phi in pairs:
            print(f"  {a}  <->  {b}   phi={phi:.2f}")
    else:
        print(f"No pairs with phi >= {args.threshold}.")
    print()
    partners = report.independent_partners(args.anchor)
    print(f"Independent backup candidates for {args.anchor}:")
    for name in partners:
        print(f"  {name}")
    return 0


def _cmd_grid_impact(args: argparse.Namespace) -> int:
    from repro.grid import build_oahu_grid, n_minus_1_report

    grid = build_oahu_grid()
    report = n_minus_1_report(grid)
    print("N-1 contingency: load served with vs. without SCADA control")
    print(f"{'line':55s} {'with':>7s} {'without':>8s}")
    for entry in sorted(report, key=lambda e: e.served_fraction_without_scada):
        line = f"{entry.line[0]} -- {entry.line[1]}"
        print(
            f"{line:55s} {entry.served_fraction_with_scada:6.1%} "
            f"{entry.served_fraction_without_scada:7.1%}"
        )
    avg_with = sum(e.served_fraction_with_scada for e in report) / len(report)
    avg_without = sum(e.served_fraction_without_scada for e in report) / len(report)
    print(f"{'average':55s} {avg_with:6.1%} {avg_without:7.1%}")
    if args.no_study:
        return 0
    # The ensemble view: the same grid coupled into the threat chain, so
    # storm-damaged buses feed WAN partitions feed the attack surface.
    config = _study_config_from_args(args).replace(chain="grid-coupled")
    result = run_study(config)
    print()
    print(
        f"Compound study over the grid-coupled chain "
        f"({len(result.ensemble)} realizations):"
    )
    print(result.report())
    if args.run_report:
        print()
        print(result.run_report())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on study service until SIGTERM/SIGINT."""
    from repro.runtime.controller import RetryPolicy
    from repro.service import ServiceConfig, run_forever

    retry = None
    if args.max_retries is not None or args.task_timeout is not None:
        retry = RetryPolicy.from_options(args.max_retries, args.task_timeout)
    config = ServiceConfig(
        service_dir=args.dir,
        host=args.host,
        port=args.port,
        queue_capacity=args.queue_capacity,
        retry_after_s=args.retry_after,
        retry=retry,
        study_deadline_s=args.study_deadline,
    )
    print(
        f"study service listening on http://{config.host}:{config.port} "
        f"(state dir: {config.service_dir}, queue capacity: "
        f"{config.queue_capacity})",
        file=sys.stderr,
    )
    return run_forever(config)


def _cmd_pack(args: argparse.Namespace) -> int:
    """Validate or describe a scenario pack without running a study."""
    from repro.scenarios import load_scenario_pack

    pack = load_scenario_pack(args.path)
    if args.action == "validate":
        print(
            f"ok: scenario pack {pack.name!r} (schema v{pack.schema_version}, "
            f"digest {pack.digest}) validates"
        )
        return 0
    info = pack.info()
    width = max(len(k) for k in info)
    for key, value in info.items():
        if isinstance(value, dict):
            value = ", ".join(
                f"{name} ({digest[:12]})" for name, digest in sorted(value.items())
            )
        elif isinstance(value, (list, tuple)):
            value = ", ".join(str(v) for v in value)
        print(f"{key:<{width}s}  {value}")
    return 0


def _add_perf_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for ensemble generation (output is identical "
        "for any value)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk ensemble cache (reused across runs)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from its checkpoint shards "
        "(requires --cache-dir; output is bit-identical to an "
        "uninterrupted run)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retries per realization for crashed/hung/corrupt workers "
        "(default: 3)",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="seconds before a running realization is declared hung and "
        "its worker replaced (default: no timeout)",
    )


def _add_observability_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--manifest-out",
        default=None,
        help="write a run_manifest.json (config hash, versions, stage "
        "timings, metric snapshot) to this path",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's metric snapshot (counters/gauges/histograms) "
        "as JSON to this path",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        help="write the run's span trace tree as JSON to this path",
    )
    p.add_argument(
        "--run-report",
        action="store_true",
        help="print the human-readable run report (stage timings, counters) "
        "after the matrix",
    )
    p.add_argument(
        "--no-observability",
        action="store_true",
        help="disable all telemetry collection for this run",
    )


def _add_common_study_args(
    p: argparse.ArgumentParser,
    *,
    default_realizations: int = DEFAULT_REALIZATIONS,
    default_seed: int = DEFAULT_SEED,
    include_ensemble: bool = True,
) -> None:
    """The study flags every facade-backed subcommand shares.

    ``run``/``sweep`` use the paper defaults; the ``timeline``,
    ``grid-impact``, and ``earthquake`` subcommands keep their historical
    ensemble sizes/seeds via the overrides.
    """
    p.add_argument("--config", action="append", help="architecture name (repeatable)")
    p.add_argument("--scenario", action="append", help="scenario name (repeatable)")
    if include_ensemble:
        p.add_argument(
            "--ensemble", help="ensemble CSV (default: regenerate standard)"
        )
    p.add_argument(
        "--realizations",
        "--count",
        dest="realizations",
        type=int,
        default=default_realizations,
        help="ensemble size (--count is the deprecated spelling)",
    )
    p.add_argument("--seed", type=int, default=default_seed)
    p.add_argument(
        "--no-batch",
        action="store_true",
        help="force the per-realization executor instead of the fused "
        "batched one (results are bitwise identical; diagnostic only)",
    )
    _add_perf_args(p)


def _add_chain_arg(p: argparse.ArgumentParser, *, repeatable: bool = False) -> None:
    from repro.core.chain import available_chains

    names = ", ".join(available_chains())
    if repeatable:
        p.add_argument(
            "--chain",
            action="append",
            help=f"threat chain axis value (repeatable; registered: {names})",
        )
    else:
        p.add_argument(
            "--chain",
            default=None,
            help=f"threat chain each realization runs through "
            f"(registered: {names}; default: paper)",
        )


def _add_catalog_args(p: argparse.ArgumentParser, *, repeatable: bool = False) -> None:
    """The scenario-catalog flags: region/hazard names plus pack paths."""
    p.add_argument(
        "--pack",
        action="append",
        metavar="PATH",
        help="scenario pack (directory or .zip) to register before the "
        "study is built; its region becomes addressable via --region "
        "(repeatable)",
    )
    if repeatable:
        p.add_argument(
            "--region",
            action="append",
            help="registered region axis value (repeatable; default: oahu)",
        )
        p.add_argument(
            "--hazard",
            action="append",
            help="hazard family axis value, e.g. hurricane/earthquake/flood "
            "(repeatable; default: hurricane)",
        )
    else:
        p.add_argument(
            "--region",
            default=None,
            help="registered region to study (default: oahu)",
        )
        p.add_argument(
            "--hazard",
            default=None,
            help="hazard family to generate, e.g. hurricane/earthquake/flood "
            "(default: hurricane)",
        )


def _add_sampling_args(
    p: argparse.ArgumentParser, *, repeatable: bool = False
) -> None:
    """The tail-risk sampling flags (see docs/tail_risk.md)."""
    if repeatable:
        p.add_argument(
            "--sampling",
            action="append",
            help="sampling plan axis value: a registered name (plain, "
            "stratified, importance) or an inline JSON spec "
            "(repeatable; default: plain only)",
        )
        return
    p.add_argument(
        "--sampling",
        default=None,
        help="sampling plan: a registered name (plain, stratified, "
        "importance, adaptive) or an inline JSON spec like "
        '\'{"plan": "importance", "scale": 3.0}\' (default: plain, '
        "the paper's sampler)",
    )
    p.add_argument(
        "--target-ci",
        type=float,
        default=None,
        help="run adaptively until the target outcome's 95%% CI half-width "
        "is at most this fraction of the estimate (promotes --sampling "
        "to the adaptive plan's per-round base; default base: importance)",
    )


def _add_study_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--placement", choices=available_placements(), default="waiau")
    p.add_argument("--csv", action="store_true", help="emit CSV instead of tables")
    _add_chain_arg(p)
    _add_catalog_args(p)
    _add_sampling_args(p)
    _add_common_study_args(p)
    _add_observability_args(p)


def _add_sweep_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--placement",
        action="append",
        choices=available_placements(),
        help="placement axis value (repeatable; default: waiau only)",
    )
    _add_chain_arg(p, repeatable=True)
    _add_catalog_args(p, repeatable=True)
    _add_sampling_args(p, repeatable=True)
    _add_common_study_args(p)
    p.add_argument(
        "--category",
        action="append",
        type=int,
        help="Saffir-Simpson hurricane category axis value (repeatable)",
    )
    p.add_argument(
        "--fragility-threshold",
        action="append",
        type=float,
        help="inundation failure threshold in meters, axis value (repeatable)",
    )
    p.add_argument(
        "--sweep-dir",
        default=None,
        help="directory for study-granular sweep checkpoints (shards + "
        "sweep_manifest.json); required for --resume",
    )
    p.add_argument(
        "--sweep-manifest-out",
        default=None,
        help="also write the sweep manifest to this path",
    )
    p.add_argument(
        "--compare",
        action="append",
        help="print outcome deltas across this axis, all else held equal "
        "(repeatable; e.g. placement)",
    )
    p.add_argument(
        "--out", default=None, help="write the full sweep result as JSON here"
    )
    p.add_argument(
        "--table",
        action="store_true",
        help="emit one flat CSV row per (study, scenario, architecture)",
    )
    p.add_argument(
        "--no-observability",
        action="store_true",
        help="disable all telemetry collection for this sweep",
    )
    p.add_argument(
        "--keep-going",
        action="store_true",
        help="record a failed study and keep running the rest of the grid "
        "(failures are listed on stderr and exit code is 1), instead of "
        "aborting the sweep on the first terminal failure",
    )
    p.add_argument(
        "--study-deadline",
        type=float,
        default=None,
        help="seconds before a pooled study is declared hung and its worker "
        "replaced (default: no deadline)",
    )
    p.add_argument(
        "--sweep-budget",
        type=float,
        default=None,
        help="whole-sweep wall-clock budget in seconds; studies not started "
        "in time fail fast instead of running (default: no budget)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="compound-threats",
        description="Compound-threat analysis of power grid SCADA (DSN-W 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "run",
        help="run a full study via the run_study() facade (the supported "
        "entrypoint)",
    )
    _add_study_args(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "sweep",
        help="run a grid of studies with shared-ensemble dedup and "
        "study-granular resume",
    )
    _add_sweep_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="run the always-on study service (submit/status/result over "
        "HTTP, bounded queue, journal-backed restart recovery)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument(
        "--dir",
        required=True,
        help="service state directory (job journal + persistent result store)",
    )
    p.add_argument(
        "--queue-capacity",
        type=int,
        default=8,
        help="max queued studies before submissions get 429 (default: 8)",
    )
    p.add_argument(
        "--retry-after",
        type=int,
        default=5,
        help="Retry-After seconds sent with 429 responses (default: 5)",
    )
    p.add_argument(
        "--study-deadline",
        type=float,
        default=None,
        help="per-study wall-clock deadline in seconds (default: none)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retries per failed study before it is recorded failed "
        "(default: 3)",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="seconds before a generation worker is declared hung "
        "(default: no timeout)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "pack",
        help="validate or describe a scenario pack (directory or .zip)",
    )
    p.add_argument(
        "action",
        choices=["validate", "info"],
        help="validate: check the manifest and content hashes; "
        "info: print the pack summary",
    )
    p.add_argument("path", help="pack directory or .zip archive")
    p.set_defaults(func=_cmd_pack)

    p = sub.add_parser("ensemble", help="generate hurricane realizations")
    p.add_argument("--count", type=int, default=DEFAULT_REALIZATIONS)
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--output", default="oahu_ensemble.csv")
    p.add_argument(
        "--scenario-file",
        help="JSON scenario spec (default: the standard Category-2 scenario)",
    )
    _add_perf_args(p)
    p.set_defaults(func=_cmd_ensemble)

    p = sub.add_parser(
        "analyze",
        help="deprecated alias of `run` (kept so existing invocations work)",
    )
    _add_study_args(p)
    p.set_defaults(func=_cmd_run, deprecated_alias="analyze")

    p = sub.add_parser("figures", help="regenerate all paper figures")
    p.add_argument("--ensemble", help="ensemble CSV (default: regenerate standard)")
    _add_perf_args(p)
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("siting", help="rank backup control-center sites")
    p.add_argument("--primary", default=HONOLULU_CC)
    p.add_argument("--config", default="6-6")
    p.add_argument(
        "--objective", choices=["green", "operational", "safety"], default="operational"
    )
    p.add_argument("--include-plants", action="store_true")
    p.add_argument("--ensemble", help="ensemble CSV (default: regenerate standard)")
    p.set_defaults(func=_cmd_siting)

    p = sub.add_parser("bft-demo", help="run the replication engine under faults")
    p.add_argument("--requests", type=int, default=20)
    p.add_argument("--byzantine", type=int, default=7, help="replica id to corrupt")
    p.add_argument("--flood-site", help="site name to flood")
    p.add_argument("--isolate-site", help="site name to isolate")
    p.set_defaults(func=_cmd_bft_demo)

    p = sub.add_parser(
        "grid-impact",
        help="N-1 cascade analysis plus the grid-coupled compound study",
    )
    p.add_argument("--placement", choices=available_placements(), default="waiau")
    p.add_argument(
        "--no-study",
        action="store_true",
        help="print only the N-1 table, skip the grid-coupled ensemble study",
    )
    _add_common_study_args(p, default_realizations=150)
    _add_observability_args(p)
    p.set_defaults(func=_cmd_grid_impact)

    p = sub.add_parser("timeline", help="downtime hours per compound event")
    p.add_argument("--placement", choices=available_placements(), default="waiau")
    p.add_argument("--attack-delay-hours", type=float, default=6.0)
    p.add_argument("--isolation-hours", type=float, default=48.0)
    p.add_argument("--repair-hours", type=float, default=72.0)
    p.add_argument(
        "--timeline-seed",
        type=int,
        default=3,
        help="seed for the rollout's repair/cleanup sampling (the hazard "
        "ensemble has its own --seed)",
    )
    _add_common_study_args(p, default_realizations=300)
    _add_observability_args(p)
    p.set_defaults(func=_cmd_timeline)

    p = sub.add_parser(
        "correlation", help="failure-correlation screening of control sites"
    )
    p.add_argument("--threshold", type=float, default=0.8)
    p.add_argument("--anchor", default=HONOLULU_CC)
    p.add_argument("--ensemble", help="ensemble CSV (default: regenerate standard)")
    p.set_defaults(func=_cmd_correlation)

    p = sub.add_parser("earthquake", help="run the analysis on the seismic hazard")
    p.add_argument("--placement", choices=available_placements(), default="waiau")
    p.add_argument("--capacity-g", type=float, default=0.30)
    _add_chain_arg(p)
    _add_common_study_args(
        p, default_realizations=500, default_seed=42, include_ensemble=False
    )
    _add_observability_args(p)
    p.set_defaults(func=_cmd_earthquake)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
