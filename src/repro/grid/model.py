"""A transmission-grid model of the case-study island.

The paper tracks power plants and substations as inundation targets but
leaves grid electrical behaviour out of scope.  This substrate adds it as
an extension: a bus-branch model with DC power flow, so analyses can
quantify what losing SCADA *means* for the grid (no post-contingency
redispatch -> cascading overloads -> load shed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GridModelError
from repro.geo.catalog import AssetCatalog, AssetRole


@dataclass(frozen=True)
class Bus:
    """A transmission bus (collocated with a plant or substation)."""

    name: str
    demand_mw: float = 0.0

    def __post_init__(self) -> None:
        if self.demand_mw < 0:
            raise GridModelError(f"bus {self.name!r} has negative demand")


@dataclass(frozen=True)
class Generator:
    """A dispatchable generating unit attached to a bus."""

    name: str
    bus: str
    capacity_mw: float

    def __post_init__(self) -> None:
        if self.capacity_mw <= 0:
            raise GridModelError(f"generator {self.name!r} needs positive capacity")


@dataclass(frozen=True)
class Line:
    """A transmission line with DC parameters."""

    a: str
    b: str
    reactance_pu: float
    capacity_mw: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise GridModelError("line endpoints must differ")
        if self.reactance_pu <= 0:
            raise GridModelError(f"line {self.a}-{self.b} needs positive reactance")
        if self.capacity_mw <= 0:
            raise GridModelError(f"line {self.a}-{self.b} needs positive capacity")

    @property
    def key(self) -> tuple[str, str]:
        return (self.a, self.b)


@dataclass
class GridModel:
    """Buses, lines, and generators with consistency validation."""

    buses: dict[str, Bus] = field(default_factory=dict)
    lines: list[Line] = field(default_factory=list)
    generators: dict[str, Generator] = field(default_factory=dict)

    def add_bus(self, bus: Bus) -> None:
        if bus.name in self.buses:
            raise GridModelError(f"duplicate bus {bus.name!r}")
        self.buses[bus.name] = bus

    def add_line(self, line: Line) -> None:
        for endpoint in (line.a, line.b):
            if endpoint not in self.buses:
                raise GridModelError(f"line endpoint {endpoint!r} is not a bus")
        self.lines.append(line)

    def add_generator(self, gen: Generator) -> None:
        if gen.name in self.generators:
            raise GridModelError(f"duplicate generator {gen.name!r}")
        if gen.bus not in self.buses:
            raise GridModelError(f"generator bus {gen.bus!r} is not a bus")
        self.generators[gen.name] = gen

    @property
    def total_demand_mw(self) -> float:
        return sum(b.demand_mw for b in self.buses.values())

    @property
    def total_capacity_mw(self) -> float:
        return sum(g.capacity_mw for g in self.generators.values())

    def generation_at(self, bus_name: str) -> float:
        return sum(
            g.capacity_mw for g in self.generators.values() if g.bus == bus_name
        )

    def validate(self) -> None:
        if len(self.buses) < 2:
            raise GridModelError("grid needs at least two buses")
        if not self.lines:
            raise GridModelError("grid has no lines")
        if not self.generators:
            raise GridModelError("grid has no generators")
        if self.total_capacity_mw < self.total_demand_mw:
            raise GridModelError(
                f"capacity {self.total_capacity_mw} MW cannot serve demand "
                f"{self.total_demand_mw} MW"
            )


def build_oahu_grid(catalog: AssetCatalog | None = None) -> GridModel:
    """A synthetic Oahu transmission grid over the catalog's assets.

    Loads concentrate in Honolulu; generation sits at the western plants
    (Kahe, Kalaeloa, H-POWER) and Waiau -- so the dominant flow is the
    real island's west-to-east corridor.  Values are representative, not
    utility data.
    """
    if catalog is None:
        from repro.geo import build_oahu_catalog

        catalog = build_oahu_catalog()
    grid = GridModel()

    demands = {
        "Iwilei Substation": 180.0,
        "Archer Substation": 170.0,
        "Kamoku Substation": 140.0,
        "Makalapa Substation": 90.0,
        "Halawa Substation": 80.0,
        "Ewa Nui Substation": 110.0,
        "Koolau Substation": 70.0,
        "Kaneohe Substation": 90.0,
        "Waimanalo Substation": 40.0,
        "Wahiawa Substation": 50.0,
        "Mililani Substation": 60.0,
        "Waialua Substation": 25.0,
        "Kahuku Substation": 20.0,
        "Waianae Substation": 45.0,
    }
    for asset in catalog:
        if asset.role in (AssetRole.SUBSTATION, AssetRole.POWER_PLANT):
            grid.add_bus(Bus(asset.name, demands.get(asset.name, 0.0)))

    generators = [
        Generator("Kahe 1-6", "Kahe Power Plant", 650.0),
        Generator("Waiau 5-10", "Waiau Power Plant", 450.0),
        Generator("Kalaeloa CC", "Kalaeloa Power Plant", 200.0),
        Generator("H-POWER WTE", "H-POWER Plant", 70.0),
        Generator("Honolulu Peakers", "Honolulu Power Plant", 110.0),
    ]
    for gen in generators:
        grid.add_generator(gen)

    lines = [
        # Leeward corridor (the island's backbone).
        Line("Kahe Power Plant", "Waianae Substation", 0.04, 100.0),
        Line("Kahe Power Plant", "Kalaeloa Power Plant", 0.03, 650.0),
        Line("Kalaeloa Power Plant", "H-POWER Plant", 0.02, 850.0),
        Line("H-POWER Plant", "Ewa Nui Substation", 0.02, 950.0),
        Line("Ewa Nui Substation", "Makalapa Substation", 0.03, 450.0),
        Line("Makalapa Substation", "Waiau Power Plant", 0.02, 350.0),
        Line("Waiau Power Plant", "Halawa Substation", 0.02, 850.0),
        Line("Halawa Substation", "Iwilei Substation", 0.03, 550.0),
        Line("Iwilei Substation", "Honolulu Power Plant", 0.01, 150.0),
        Line("Iwilei Substation", "Archer Substation", 0.01, 430.0),
        Line("Archer Substation", "Kamoku Substation", 0.02, 200.0),
        # Central / north spine.
        Line("Waiau Power Plant", "Mililani Substation", 0.05, 120.0),
        Line("Mililani Substation", "Wahiawa Substation", 0.03, 240.0),
        Line("Wahiawa Substation", "Waialua Substation", 0.05, 170.0),
        Line("Waialua Substation", "Kahuku Substation", 0.06, 140.0),
        # Windward crossings over the Koolau range.
        Line("Halawa Substation", "Koolau Substation", 0.06, 200.0),
        Line("Koolau Substation", "Kaneohe Substation", 0.02, 120.0),
        Line("Kaneohe Substation", "Waimanalo Substation", 0.04, 80.0),
        Line("Kahuku Substation", "Kaneohe Substation", 0.07, 110.0),
        # Second leeward path (N-1 relief).
        Line("Ewa Nui Substation", "Mililani Substation", 0.05, 360.0),
    ]
    for line in lines:
        grid.add_line(line)
    grid.validate()
    return grid
