"""DC power flow and proportional dispatch.

Standard B-theta DC power flow: bus angles solve ``B' theta = P`` with a
slack bus pinned to zero, line flow is ``(theta_i - theta_j) / x``.
Dispatch scales every generator proportionally to meet total served
demand (the simple AGC abstraction a SCADA master implements).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GridModelError
from repro.grid.model import GridModel, Line


@dataclass(frozen=True)
class PowerFlowResult:
    """Flows and injections of one DC power-flow solution."""

    flows_mw: dict[tuple[str, str], float]
    injections_mw: dict[str, float]
    served_demand_mw: float

    def overloaded_lines(self, grid: GridModel, tolerance: float = 1.0) -> list[Line]:
        """Lines carrying more than ``tolerance`` times their capacity."""
        out = []
        for line in grid.lines:
            flow = self.flows_mw.get(line.key)
            if flow is not None and abs(flow) > tolerance * line.capacity_mw:
                out.append(line)
        return out

    def max_loading(self, grid: GridModel) -> float:
        """Highest |flow| / capacity ratio across lines in service."""
        ratios = [
            abs(self.flows_mw[line.key]) / line.capacity_mw
            for line in grid.lines
            if line.key in self.flows_mw
        ]
        return max(ratios, default=0.0)


def proportional_dispatch(
    grid: GridModel,
    buses: list[str] | None = None,
    out_generators: set[str] = frozenset(),
) -> dict[str, float]:
    """Scale available generators to meet the (sub)grid's demand.

    ``buses`` restricts the balance to an island of the grid; generators
    in ``out_generators`` are unavailable.  Raises if the island cannot
    cover its demand (callers shed load instead).
    """
    bus_set = set(buses) if buses is not None else set(grid.buses)
    demand = sum(grid.buses[b].demand_mw for b in bus_set)
    available = [
        g
        for g in grid.generators.values()
        if g.bus in bus_set and g.name not in out_generators
    ]
    capacity = sum(g.capacity_mw for g in available)
    if demand > 0 and capacity < demand - 1e-9:
        raise GridModelError(
            f"island demand {demand:.0f} MW exceeds available capacity "
            f"{capacity:.0f} MW"
        )
    if capacity == 0.0:
        return {}
    scale = demand / capacity
    return {g.name: g.capacity_mw * scale for g in available}


def solve_dc_powerflow(
    grid: GridModel,
    dispatch: dict[str, float] | None = None,
    out_lines: set[tuple[str, str]] = frozenset(),
) -> PowerFlowResult:
    """Solve DC power flow for the connected component of the slack bus.

    ``out_lines`` removes lines from service.  The slack bus is the first
    bus hosting an available generator; any mismatch lands there (standard
    DC slack convention).
    """
    if dispatch is None:
        dispatch = proportional_dispatch(grid)
    lines = [l for l in grid.lines if l.key not in out_lines]
    if not lines:
        raise GridModelError("no lines in service")

    bus_names = sorted(grid.buses)
    index = {name: i for i, name in enumerate(bus_names)}
    n = len(bus_names)

    injections = np.zeros(n)
    for name, bus in grid.buses.items():
        injections[index[name]] -= bus.demand_mw
    for gen_name, mw in dispatch.items():
        gen = grid.generators[gen_name]
        injections[index[gen.bus]] += mw

    # Build susceptance matrix over in-service lines.
    b_matrix = np.zeros((n, n))
    for line in lines:
        i, j = index[line.a], index[line.b]
        b = 1.0 / line.reactance_pu
        b_matrix[i, i] += b
        b_matrix[j, j] += b
        b_matrix[i, j] -= b
        b_matrix[j, i] -= b

    slack = None
    for gen_name in sorted(dispatch):
        slack = index[grid.generators[gen_name].bus]
        break
    if slack is None:
        raise GridModelError("no generation dispatched; nothing to solve")

    keep = [i for i in range(n) if i != slack]
    reduced = b_matrix[np.ix_(keep, keep)]
    rhs = injections[keep]
    try:
        theta_reduced = np.linalg.solve(reduced, rhs)
    except np.linalg.LinAlgError:
        raise GridModelError(
            "singular susceptance matrix: the in-service grid is split; "
            "solve each island separately"
        ) from None
    theta = np.zeros(n)
    theta[keep] = theta_reduced

    flows: dict[tuple[str, str], float] = {}
    for line in lines:
        i, j = index[line.a], index[line.b]
        flows[line.key] = (theta[i] - theta[j]) / line.reactance_pu
    served = sum(grid.buses[b].demand_mw for b in bus_names)
    return PowerFlowResult(
        flows_mw=flows,
        injections_mw={name: float(injections[index[name]]) for name in bus_names},
        served_demand_mw=served,
    )
