"""Storm damage to the grid itself, from the same hurricane data.

The paper tracks power plants and substations as inundation targets but
analyzes only the SCADA system.  This module closes the loop: the *same*
hurricane realizations that flood control centers also flood grid assets;
a flooded bus (plant or substation switchyard) drops out of service, its
load is shed, its generation is lost, and the surviving grid re-islands
-- with or without SCADA control of the aftermath.

This is the full compound picture: one realization yields both the SCADA
operational state (can the operators see and steer?) and the grid state
(how much of the island is dark regardless?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GridModelError
from repro.grid.contingency import simulate_contingency
from repro.grid.model import GridModel
from repro.hazards.base import HazardEnsemble, HazardRealization
from repro.hazards.fragility import FragilityModel, ThresholdFragility


def damaged_grid(grid: GridModel, out_buses: frozenset[str]) -> tuple[GridModel, float]:
    """The surviving grid after bus outages, plus the demand shed at them.

    Unknown bus names in ``out_buses`` are ignored (the hazard catalog
    tracks assets beyond the grid model, e.g. control centers).
    """
    lost = {name for name in out_buses if name in grid.buses}
    if not lost:
        return grid, 0.0
    survivor = GridModel()
    for name, bus in grid.buses.items():
        if name not in lost:
            survivor.add_bus(bus)
    for line in grid.lines:
        if line.a not in lost and line.b not in lost:
            survivor.add_line(line)
    for gen in grid.generators.values():
        if gen.bus not in lost:
            survivor.add_generator(gen)
    shed = sum(grid.buses[name].demand_mw for name in lost)
    return survivor, shed


@dataclass(frozen=True)
class StormGridImpact:
    """Grid outcome of one hurricane realization."""

    realization_index: int
    out_buses: tuple[str, ...]
    shed_at_damaged_mw: float
    served_fraction: float
    cascade_tripped_lines: int


def storm_grid_impact(
    grid: GridModel,
    realization: HazardRealization,
    fragility: FragilityModel | None = None,
    scada_operational: bool = True,
) -> StormGridImpact:
    """Load served immediately after one realization's storm damage."""
    model = fragility or ThresholdFragility()
    failed = realization.failed_assets(model)
    survivor, shed = damaged_grid(grid, frozenset(failed))
    total = grid.total_demand_mw
    if total <= 0:
        raise GridModelError("grid has no demand")
    out_buses = tuple(sorted(name for name in failed if name in grid.buses))
    if not survivor.lines or not survivor.generators or survivor.total_demand_mw == 0:
        return StormGridImpact(
            realization_index=realization.index,
            out_buses=out_buses,
            shed_at_damaged_mw=shed,
            served_fraction=0.0,
            cascade_tripped_lines=0,
        )
    cascade = simulate_contingency(survivor, set(), scada_operational)
    served_mw = cascade.served_fraction * survivor.total_demand_mw
    return StormGridImpact(
        realization_index=realization.index,
        out_buses=out_buses,
        shed_at_damaged_mw=shed,
        served_fraction=served_mw / total,
        cascade_tripped_lines=len(cascade.tripped_lines),
    )


@dataclass(frozen=True)
class EnsembleGridImpact:
    """Grid impact statistics over a hurricane ensemble."""

    mean_served_fraction: float
    worst_served_fraction: float
    damage_probability: float  # fraction of realizations with any bus out

    def summary(self) -> str:
        return (
            f"mean served {self.mean_served_fraction:.1%}, "
            f"worst {self.worst_served_fraction:.1%}, "
            f"P(grid damage) {self.damage_probability:.1%}"
        )


def ensemble_grid_impact(
    grid: GridModel,
    ensemble: HazardEnsemble,
    fragility: FragilityModel | None = None,
    scada_operational: bool = True,
) -> EnsembleGridImpact:
    """Aggregate storm grid impact over an ensemble."""
    fractions = []
    damaged = 0
    for realization in ensemble:
        impact = storm_grid_impact(grid, realization, fragility, scada_operational)
        fractions.append(impact.served_fraction)
        if impact.out_buses:
            damaged += 1
    if not fractions:
        raise GridModelError("ensemble is empty")
    return EnsembleGridImpact(
        mean_served_fraction=sum(fractions) / len(fractions),
        worst_served_fraction=min(fractions),
        damage_probability=damaged / len(fractions),
    )


def damage_pattern_groups(
    failed: np.ndarray,
    asset_names: Sequence[str],
    bus_names: frozenset[str] | set[str],
) -> tuple[list[frozenset[str]], np.ndarray]:
    """Distinct grid-damage patterns in a (realization x asset) failure grid.

    Returns ``(patterns, inverse)`` with ``patterns[inverse[i]]`` the set
    of failed grid buses in realization ``i``.  Only columns naming grid
    buses enter the dedup, so control-center-only flooding collapses into
    the no-damage pattern -- which is why the batched interdependency
    stage pays one cascade per *distinct* damage pattern instead of one
    per realization (most realizations damage no bus and share one
    entry, exactly as the per-realization coupling memo does).
    """
    columns = [i for i, name in enumerate(asset_names) if name in bus_names]
    n_rows = int(failed.shape[0])
    if not columns:
        return [frozenset()], np.zeros(n_rows, dtype=np.intp)
    sub = np.asarray(failed, dtype=bool)[:, columns]
    rows, inverse = np.unique(sub, axis=0, return_inverse=True)
    names = [asset_names[c] for c in columns]
    patterns = [
        frozenset(name for name, hit in zip(names, row) if hit) for row in rows
    ]
    return patterns, np.asarray(inverse).reshape(-1)
