"""Power grid substrate: bus-branch model, DC power flow, contingencies."""

from repro.grid.contingency import (
    CascadeResult,
    Island,
    NMinus1Entry,
    n_minus_1_report,
    simulate_contingency,
)
from repro.grid.model import Bus, Generator, GridModel, Line, build_oahu_grid
from repro.grid.storm_impact import (
    EnsembleGridImpact,
    StormGridImpact,
    damaged_grid,
    ensemble_grid_impact,
    storm_grid_impact,
)
from repro.grid.powerflow import (
    PowerFlowResult,
    proportional_dispatch,
    solve_dc_powerflow,
)

__all__ = [
    "Bus",
    "Generator",
    "Line",
    "GridModel",
    "build_oahu_grid",
    "PowerFlowResult",
    "proportional_dispatch",
    "solve_dc_powerflow",
    "CascadeResult",
    "Island",
    "NMinus1Entry",
    "simulate_contingency",
    "n_minus_1_report",
    "StormGridImpact",
    "EnsembleGridImpact",
    "damaged_grid",
    "storm_grid_impact",
    "ensemble_grid_impact",
]
