"""Contingency analysis and the SCADA-coupled cascade model.

This is the extension that closes the loop between the compound-threat
analysis and the physical grid: what does losing the SCADA system *cost*?

* With SCADA **operational**, operators redispatch after a contingency:
  each electrical island serves ``min(demand, capacity)`` and line limits
  are respected by curtailment -- no cascading.
* With SCADA **unavailable** (red/gray operational state), generation
  stays on blind proportional dispatch: overloaded lines trip, the grid
  re-islands, and the cascade iterates to a fixed point.  The difference
  in served load is the value of the control system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import GridModelError
from repro.grid.model import Bus, Generator, GridModel, Line
from repro.grid.powerflow import proportional_dispatch, solve_dc_powerflow


@dataclass(frozen=True)
class Island:
    """One electrically connected component after outages."""

    buses: frozenset[str]
    demand_mw: float
    capacity_mw: float

    @property
    def served_mw(self) -> float:
        return min(self.demand_mw, self.capacity_mw)


@dataclass(frozen=True)
class CascadeResult:
    """Fixed point of a contingency (possibly cascaded)."""

    served_fraction: float
    tripped_lines: tuple[tuple[str, str], ...]
    rounds: int
    islands: tuple[Island, ...]

    @property
    def blackout(self) -> bool:
        return self.served_fraction < 0.5


def _islands(grid: GridModel, out_lines: set[tuple[str, str]]) -> list[frozenset[str]]:
    g = nx.Graph()
    g.add_nodes_from(grid.buses)
    for line in grid.lines:
        if line.key not in out_lines:
            g.add_edge(line.a, line.b)
    return [frozenset(c) for c in nx.connected_components(g)]


def _island_info(grid: GridModel, buses: frozenset[str]) -> Island:
    demand = sum(grid.buses[b].demand_mw for b in buses)
    capacity = sum(
        g.capacity_mw for g in grid.generators.values() if g.bus in buses
    )
    return Island(buses, demand, capacity)


def _island_subgrid(
    grid: GridModel, island: Island, out_lines: set[tuple[str, str]]
) -> GridModel:
    """A standalone grid for one island, demand scaled to what's served."""
    sub = GridModel()
    scale = island.served_mw / island.demand_mw if island.demand_mw > 0 else 0.0
    for name in island.buses:
        bus = grid.buses[name]
        sub.add_bus(Bus(name, bus.demand_mw * scale))
    for line in grid.lines:
        if line.key not in out_lines and line.a in island.buses and line.b in island.buses:
            sub.add_line(line)
    for gen in grid.generators.values():
        if gen.bus in island.buses:
            sub.add_generator(gen)
    return sub


def simulate_contingency(
    grid: GridModel,
    initial_outages: set[tuple[str, str]],
    scada_operational: bool,
    overload_tolerance: float = 1.05,
    max_rounds: int = 25,
) -> CascadeResult:
    """Run a contingency to its fixed point.

    ``initial_outages`` are line keys taken out (storm damage or attack
    aftermath).  With SCADA up the result is immediate (operators secure
    the system); without it, overloads trip lines round by round.
    """
    for key in initial_outages:
        if key not in {l.key for l in grid.lines}:
            raise GridModelError(f"unknown line {key}")
    total_demand = grid.total_demand_mw
    if total_demand <= 0:
        raise GridModelError("grid has no demand to serve")

    out = set(initial_outages)
    rounds = 0
    while True:
        rounds += 1
        if rounds > max_rounds:
            raise GridModelError("cascade did not converge; check grid data")
        islands = [_island_info(grid, c) for c in _islands(grid, out)]
        if scada_operational:
            break
        tripped_this_round: set[tuple[str, str]] = set()
        for island in islands:
            if island.served_mw <= 0 or len(island.buses) < 2:
                continue
            sub = _island_subgrid(grid, island, out)
            if not sub.lines or not sub.generators:
                continue
            dispatch = proportional_dispatch(sub)
            if not dispatch:
                continue
            flow = solve_dc_powerflow(sub, dispatch)
            for line in flow.overloaded_lines(sub, overload_tolerance):
                tripped_this_round.add(line.key)
        if not tripped_this_round:
            break
        out |= tripped_this_round

    served = sum(i.served_mw for i in islands)
    return CascadeResult(
        served_fraction=served / total_demand,
        tripped_lines=tuple(sorted(out - initial_outages)),
        rounds=rounds,
        islands=tuple(islands),
    )


@dataclass(frozen=True)
class NMinus1Entry:
    line: tuple[str, str]
    islanded: bool
    max_loading: float
    served_fraction_with_scada: float
    served_fraction_without_scada: float


def n_minus_1_report(grid: GridModel, overload_tolerance: float = 1.05) -> list[NMinus1Entry]:
    """Screen every single-line outage with and without SCADA control."""
    entries = []
    for line in grid.lines:
        outage = {line.key}
        with_scada = simulate_contingency(grid, outage, True, overload_tolerance)
        without = simulate_contingency(grid, outage, False, overload_tolerance)
        islands = _islands(grid, outage)
        max_loading = 0.0
        for component in islands:
            island = _island_info(grid, component)
            if island.served_mw <= 0 or len(component) < 2:
                continue
            sub = _island_subgrid(grid, island, outage)
            if not sub.lines or not sub.generators:
                continue
            dispatch = proportional_dispatch(sub)
            if not dispatch:
                continue
            result = solve_dc_powerflow(sub, dispatch)
            max_loading = max(max_loading, result.max_loading(sub))
        entries.append(
            NMinus1Entry(
                line=line.key,
                islanded=len(islands) > 1,
                max_loading=max_loading,
                served_fraction_with_scada=with_scada.served_fraction,
                served_fraction_without_scada=without.served_fraction,
            )
        )
    return entries
