"""Deterministic fault injection for the run controller.

A :class:`FaultPlan` scripts exactly which realizations misbehave, how,
and on which attempts, so chaos tests can *prove* the controller's
guarantees (retry, resume, bit-identical output) instead of assuming
them.  Plans are plain picklable data: the controller ships the plan to
worker processes, and each worker consults it right before and after
running a task.

Faults are keyed by ``(realization index, attempt)``: a fault with
``times=n`` fires on attempts ``0 .. n-1`` and then stops, which is what
lets a retried task eventually succeed and keeps every run of the same
plan identical.  :meth:`FaultPlan.random` draws the victim indices from a
seeded generator for large randomized chaos sweeps.

Four behaviors are supported:

* ``crash`` -- the task raises; the worker survives.
* ``kill``  -- the worker process exits hard (``os._exit``), collapsing
  the pool (``BrokenProcessPool``).  Inline (``n_jobs=1``) runs downgrade
  this to ``crash`` so the host process survives.
* ``hang``  -- the task sleeps far past any sane per-task timeout.
* ``corrupt`` -- the task completes but returns a mangled payload (wrong
  index, non-finite depths) that must be caught by result validation.

The plan can also damage artifacts *at rest*: :meth:`corrupt_file`
overwrites a prefix of an on-disk shard or cache entry with seeded
garbage, simulating a torn write from a ``kill -9`` of a non-atomic
writer.
"""

from __future__ import annotations

import enum
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import RuntimeControlError


class FaultKind(str, enum.Enum):
    CRASH = "crash"
    KILL = "kill"
    HANG = "hang"
    CORRUPT = "corrupt"


class InjectedCrash(RuntimeError):
    """Raised inside a worker by a ``crash`` fault (deliberately *not* a
    :class:`~repro.errors.ReproError`, so the controller treats it as a
    retryable worker failure rather than a fatal modeling error)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: ``kind`` fires on the first ``times`` attempts."""

    index: int
    kind: FaultKind
    times: int = 1
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise RuntimeControlError("fault index cannot be negative")
        if self.times < 1:
            raise RuntimeControlError("fault must fire at least once")
        if self.hang_s <= 0:
            raise RuntimeControlError("hang duration must be positive")

    def fires_on(self, attempt: int) -> bool:
        return attempt < self.times


@dataclass
class FaultPlan:
    """A seeded, deterministic script of worker and disk faults."""

    seed: int = 0
    specs: dict[int, FaultSpec] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Building a plan
    # ------------------------------------------------------------------
    def _add(self, spec: FaultSpec) -> "FaultPlan":
        if spec.index in self.specs:
            raise RuntimeControlError(
                f"realization {spec.index} already has a scripted fault"
            )
        self.specs[spec.index] = spec
        return self

    def crash(self, index: int, times: int = 1) -> "FaultPlan":
        """Make realization ``index`` raise on its first ``times`` attempts."""
        return self._add(FaultSpec(index, FaultKind.CRASH, times))

    def kill(self, index: int, times: int = 1) -> "FaultPlan":
        """Make realization ``index`` kill its worker process outright."""
        return self._add(FaultSpec(index, FaultKind.KILL, times))

    def hang(self, index: int, times: int = 1, hang_s: float = 3600.0) -> "FaultPlan":
        """Make realization ``index`` sleep past the per-task timeout."""
        return self._add(FaultSpec(index, FaultKind.HANG, times, hang_s=hang_s))

    def corrupt(self, index: int, times: int = 1) -> "FaultPlan":
        """Make realization ``index`` return a mangled payload."""
        return self._add(FaultSpec(index, FaultKind.CORRUPT, times))

    @classmethod
    def random(
        cls,
        seed: int,
        count: int,
        crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        times: int = 1,
        hang_s: float = 3600.0,
    ) -> "FaultPlan":
        """Draw victim realizations deterministically from ``seed``.

        Each index suffers at most one fault; rates are per-realization
        probabilities evaluated in index order, so the same ``(seed,
        count, rates)`` always scripts the same chaos.
        """
        for name, rate in (
            ("crash_rate", crash_rate),
            ("hang_rate", hang_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise RuntimeControlError(f"{name} must be within [0, 1]")
        plan = cls(seed=seed)
        rng = np.random.default_rng(seed)
        for index in range(count):
            draw = float(rng.random())
            if draw < crash_rate:
                plan.crash(index, times=times)
            elif draw < crash_rate + hang_rate:
                plan.hang(index, times=times, hang_s=hang_s)
            elif draw < crash_rate + hang_rate + corrupt_rate:
                plan.corrupt(index, times=times)
        return plan

    # ------------------------------------------------------------------
    # Worker-side application
    # ------------------------------------------------------------------
    def action_for(self, index: int, attempt: int) -> FaultKind | None:
        """The fault (if any) scripted for this ``(index, attempt)``."""
        spec = self.specs.get(index)
        if spec is not None and spec.fires_on(attempt):
            return spec.kind
        return None

    def apply_before(self, index: int, attempt: int, inline: bool = False) -> None:
        """Fire any pre-task fault for ``(index, attempt)``.

        ``inline`` marks an in-process (``n_jobs=1``) run: ``kill`` is
        downgraded to ``crash`` (exiting would take the host with it) and
        ``hang`` sleeps only briefly before raising, since there is no
        supervising controller to preempt an in-process sleep.
        """
        kind = self.action_for(index, attempt)
        if kind is FaultKind.CRASH:
            raise InjectedCrash(f"injected crash (realization {index}, attempt {attempt})")
        if kind is FaultKind.KILL:
            if inline:
                raise InjectedCrash(
                    f"injected kill downgraded to crash inline (realization {index})"
                )
            os._exit(3)
        if kind is FaultKind.HANG:
            spec = self.specs[index]
            if inline:
                time.sleep(min(spec.hang_s, 0.05))
                raise InjectedCrash(f"injected hang (realization {index}, inline)")
            time.sleep(spec.hang_s)

    def mangle_result(self, index: int, attempt: int, result):
        """Apply a ``corrupt`` fault to a completed task's payload."""
        if self.action_for(index, attempt) is not FaultKind.CORRUPT:
            return result
        depths = {name: math.nan for name in result.inundation.depths_m}
        return type(result)(
            index=result.index,
            params=result.params,
            inundation=type(result.inundation)(depths_m=depths),
        )

    # ------------------------------------------------------------------
    # Disk-side application
    # ------------------------------------------------------------------
    def corrupt_file(self, path: str | Path, length: int = 256) -> None:
        """Overwrite the head of ``path`` with seeded garbage (torn write)."""
        target = Path(path)
        if not target.exists():
            raise RuntimeControlError(f"cannot corrupt missing file {target}")
        rng = np.random.default_rng(self.seed)
        garbage = rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
        size = target.stat().st_size
        with target.open("r+b") as handle:
            handle.write(garbage[: max(1, min(length, size))])

    def truncate_file(self, path: str | Path, keep_fraction: float = 0.5) -> None:
        """Truncate ``path`` as if its writer died mid-write."""
        if not 0.0 <= keep_fraction < 1.0:
            raise RuntimeControlError("keep_fraction must be within [0, 1)")
        target = Path(path)
        if not target.exists():
            raise RuntimeControlError(f"cannot truncate missing file {target}")
        size = target.stat().st_size
        with target.open("r+b") as handle:
            handle.truncate(int(size * keep_fraction))
