"""Sharded, crash-consistent checkpoints for long ensemble runs.

A run's progress lives under ``<cache_dir>/run-<key>/``:

* ``shard-<block>.npz`` -- the realizations of one contiguous index block
  (``shard_size`` wide): an ``indices`` vector plus matching ``depths``
  and ``params`` row blocks.  A shard may be *partial* (only some of its
  block completed) -- the ``indices`` vector is authoritative.
* ``manifest.json`` -- the run identity (cache key, count, seed, scenario
  name, asset names) and, per persisted shard, its filename, row count,
  and sha256 checksum.

Every file is written atomically (tmp sibling + ``os.replace``), and the
manifest is rewritten after each shard flush, so a controller killed at
*any* instant leaves either the previous or the new consistent state on
disk.  On resume the store re-verifies everything -- checksum, shapes,
index ranges, and that each stored parameter row is bit-identical to the
recomputed serial parameter pass -- and quarantines any shard that fails
(``<name>.corrupt`` + :class:`CorruptArtifactWarning`) so only its block
is regenerated.  Because realization ``i`` is a pure function of
``(seed, i)``, an ensemble resumed from shards is bit-identical to an
uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from pathlib import Path

import numpy as np

from repro.errors import CheckpointCorruptError
from repro.hazards.hurricane.ensemble import HurricaneRealization
from repro.hazards.hurricane.inundation import InundationField
from repro.io.atomic import atomic_path, atomic_write_text, quarantine_file
from repro.io.ensemble_cache import PARAM_COLUMNS, params_from_row, params_to_row

CHECKPOINT_FORMAT_VERSION = 1
DEFAULT_SHARD_SIZE = 32


def sha256_of(path: Path) -> str:
    """Streaming sha256 of a file (checksums for shard/manifest entries)."""
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


_sha256_of = sha256_of  # backwards-compatible alias


class CheckpointStore:
    """Persists per-realization progress for one (key, count, seed) run."""

    def __init__(
        self,
        run_dir: str | Path,
        key: str,
        count: int,
        seed: int | None,
        scenario_name: str,
        shard_size: int = DEFAULT_SHARD_SIZE,
        flush_interval: int | None = None,
    ) -> None:
        if count < 1:
            raise CheckpointCorruptError("checkpointed run needs at least one task")
        if shard_size < 1:
            raise CheckpointCorruptError("shard size must be at least 1")
        self.run_dir = Path(run_dir)
        self.key = key
        self.count = count
        self.seed = seed
        self.scenario_name = scenario_name
        self.shard_size = shard_size
        # How many newly recorded realizations may sit only in memory
        # before partial shards are flushed to disk.
        self.flush_interval = flush_interval or shard_size
        self._results: dict[int, HurricaneRealization] = {}
        self._asset_names: list[str] | None = None
        self._dirty_blocks: set[int] = set()
        self._unflushed = 0

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.run_dir / "manifest.json"

    def shard_path(self, block: int) -> Path:
        return self.run_dir / f"shard-{block:05d}.npz"

    def _block_of(self, index: int) -> int:
        return index // self.shard_size

    def _block_indices(self, block: int) -> range:
        start = block * self.shard_size
        return range(start, min(start + self.shard_size, self.count))

    # ------------------------------------------------------------------
    # Recording progress
    # ------------------------------------------------------------------
    def completed_indices(self) -> frozenset[int]:
        return frozenset(self._results)

    def is_complete(self) -> bool:
        return len(self._results) == self.count

    def results(self) -> dict[int, HurricaneRealization]:
        return dict(self._results)

    def record(self, realization: HurricaneRealization) -> None:
        """Accept one completed realization; flush shards as blocks fill."""
        index = realization.index
        if not 0 <= index < self.count:
            raise CheckpointCorruptError(
                f"realization index {index} outside run of {self.count}"
            )
        if self._asset_names is None:
            self._asset_names = list(realization.inundation.depths_m)
        if index in self._results:
            return
        self._results[index] = realization
        block = self._block_of(index)
        self._dirty_blocks.add(block)
        self._unflushed += 1
        block_done = all(i in self._results for i in self._block_indices(block))
        if block_done or self._unflushed >= self.flush_interval:
            self.flush()

    def flush(self) -> None:
        """Write every dirty shard and the manifest, all atomically."""
        if not self._dirty_blocks:
            return
        self.run_dir.mkdir(parents=True, exist_ok=True)
        for block in sorted(self._dirty_blocks):
            self._write_shard(block)
        self._dirty_blocks.clear()
        self._unflushed = 0
        self._write_manifest()

    def _write_shard(self, block: int) -> None:
        indices = sorted(
            i for i in self._block_indices(block) if i in self._results
        )
        if not indices:
            return
        depths = np.array(
            [
                [self._results[i].inundation.depths_m[n] for n in self._asset_names]
                for i in indices
            ]
        )
        params = np.array([params_to_row(self._results[i].params) for i in indices])
        with atomic_path(self.shard_path(block)) as tmp:
            with tmp.open("wb") as handle:
                np.savez_compressed(
                    handle,
                    indices=np.array(indices, dtype=np.int64),
                    depths=depths,
                    params=params,
                )

    def _write_manifest(self) -> None:
        shards = {}
        for block in range((self.count + self.shard_size - 1) // self.shard_size):
            path = self.shard_path(block)
            if not path.exists():
                continue
            n = sum(1 for i in self._block_indices(block) if i in self._results)
            shards[str(block)] = {
                "file": path.name,
                "rows": n,
                "sha256": _sha256_of(path),
            }
        manifest = {
            "format": CHECKPOINT_FORMAT_VERSION,
            "key": self.key,
            "count": self.count,
            "seed": self.seed,
            "scenario_name": self.scenario_name,
            "shard_size": self.shard_size,
            "asset_names": self._asset_names,
            "completed": len(self._results),
            "shards": shards,
        }
        atomic_write_text(self.manifest_path, json.dumps(manifest, indent=2))

    # ------------------------------------------------------------------
    # Loading / resuming
    # ------------------------------------------------------------------
    def load(self, expected_params=None) -> dict[int, HurricaneRealization]:
        """Recover verified progress from disk into the store.

        ``expected_params`` is the recomputed serial parameter pass (a
        sequence indexed by realization); any shard whose stored rows do
        not match it bit-for-bit is quarantined, as are shards with bad
        checksums, undecodable contents, or out-of-range indices.  The
        surviving realizations are returned (and retained, so subsequent
        flushes keep them on disk).
        """
        self._results.clear()
        self._dirty_blocks.clear()
        self._unflushed = 0
        if not self.manifest_path.exists():
            return {}
        try:
            manifest = json.loads(self.manifest_path.read_text())
            ok = (
                manifest["format"] == CHECKPOINT_FORMAT_VERSION
                and manifest["key"] == self.key
                and manifest["count"] == self.count
                and manifest["seed"] == self.seed
                and manifest["shard_size"] == self.shard_size
            )
        except (json.JSONDecodeError, KeyError, TypeError, OSError) as exc:
            quarantine_file(self.manifest_path, f"unreadable manifest: {exc}")
            return {}
        if not ok:
            quarantine_file(self.manifest_path, "manifest does not match this run")
            return {}
        names = manifest.get("asset_names")
        self._asset_names = list(names) if names else None
        for block_label, entry in sorted(manifest.get("shards", {}).items()):
            try:
                block = int(block_label)
                self._load_shard(block, entry, expected_params)
            except CheckpointCorruptError as exc:
                path = self.run_dir / str(entry.get("file", f"shard-{block_label}"))
                if path.exists():
                    quarantine_file(path, str(exc))
        return dict(self._results)

    def _load_shard(self, block: int, entry: dict, expected_params) -> None:
        path = self.run_dir / entry["file"]
        if not path.exists():
            raise CheckpointCorruptError(f"shard file {entry['file']} missing")
        if _sha256_of(path) != entry.get("sha256"):
            raise CheckpointCorruptError("shard checksum mismatch")
        if self._asset_names is None:
            raise CheckpointCorruptError("manifest lists shards but no asset names")
        try:
            with np.load(path) as data:
                indices = data["indices"]
                depths = data["depths"]
                params = data["params"]
        except Exception as exc:  # zipfile/np errors: torn write survived checksum?
            raise CheckpointCorruptError(f"undecodable shard: {exc}") from exc
        n = len(indices)
        if depths.shape != (n, len(self._asset_names)) or params.shape != (
            n,
            len(PARAM_COLUMNS),
        ):
            raise CheckpointCorruptError("shard array shapes inconsistent")
        block_range = self._block_indices(block)
        for row, raw_index in enumerate(indices):
            index = int(raw_index)
            if index not in block_range:
                raise CheckpointCorruptError(
                    f"index {index} outside shard block {block}"
                )
            stored = params_from_row(params[row])
            if expected_params is not None and stored != expected_params[index]:
                raise CheckpointCorruptError(
                    f"stored parameters for realization {index} diverge from "
                    "the deterministic parameter pass"
                )
            self._results[index] = HurricaneRealization(
                index=index,
                params=stored,
                inundation=InundationField(
                    depths_m=dict(zip(self._asset_names, depths[row].tolist()))
                ),
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget in-memory and on-disk progress (a fresh, non-resumed run)."""
        self._results.clear()
        self._dirty_blocks.clear()
        self._unflushed = 0
        self._asset_names = None
        if self.run_dir.exists():
            shutil.rmtree(self.run_dir)

    def discard(self) -> None:
        """Delete the run directory (called once the final artifact exists)."""
        if self.run_dir.exists():
            shutil.rmtree(self.run_dir)
