"""Fault-isolated supervision for batch study execution.

The sweep engine's original pool loop called ``future.result()`` bare:
one poisoned study aborted the whole sweep and discarded every
in-flight result, and a silently-hung worker could stall the sweep
forever.  :class:`StudySupervisor` wraps per-study execution the way
:class:`~repro.runtime.controller.RunController` wraps per-realization
execution:

* a failing study becomes a recorded :class:`StudyFailure` -- exception
  type, message, attempt count -- instead of a sweep abort;
* unexpected failures (worker crashes, collapsed pools, hung studies)
  are retried with the :class:`~repro.runtime.controller.RetryPolicy`
  backoff, while deterministic :class:`~repro.errors.ReproError`\\ s
  fail immediately (no retry can fix a modeling error);
* a collapsed pool (``BrokenProcessPool``) is rebuilt and the surviving
  studies resubmitted, mirroring what the run controller already did
  for ensemble generation but the sweep analysis pass never had;
* a per-study ``deadline_s`` bounds any one study on the pooled path
  (the pool is torn down and rebuilt around the hung worker), and a
  whole-run ``budget_s`` bounds the batch: studies that would start
  past the budget fail fast with :class:`~repro.errors.SweepBudgetError`
  instead of running half a grid past its deadline;
* ``strict=True`` preserves raise-on-failure semantics -- the first
  terminal failure raises :class:`~repro.errors.StudyFailureError`
  naming the study that died -- while ``strict=False`` degrades
  gracefully: the caller receives every completed result plus the
  failure records.

The supervisor is deliberately generic over *what* a study is: tasks
carry an opaque payload and the caller supplies the runner (serial) or
task function + pool initializer (pooled), so the sweep engine and the
study service can share one failure taxonomy.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.errors import (
    ReproError,
    RuntimeControlError,
    StudyFailureError,
    SweepBudgetError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.obs.observer import current as current_observer
from repro.runtime.controller import RetryPolicy, terminate_pool


@dataclass(frozen=True)
class SupervisedTask:
    """One unit of supervised work: identity plus an opaque payload."""

    #: The caller's index for this task (e.g. the sweep grid position).
    position: int
    #: Human-readable identity, used in failure records and messages.
    label: str
    #: Stable identity hash (e.g. the study config hash); "" if unknown.
    study_hash: str
    #: What the runner / task function receives.
    payload: object


@dataclass(frozen=True)
class StudyFailure:
    """The record a failed study leaves behind instead of an exception.

    ``attempts`` counts executions actually charged to the study; a
    study that never ran (the sweep budget expired first) has zero.
    """

    position: int
    study_hash: str
    label: str
    error_type: str
    message: str
    attempts: int

    def summary(self) -> dict:
        """JSON-friendly form (lands in manifests and service journals)."""
        return {
            "position": self.position,
            "study_hash": self.study_hash,
            "label": self.label,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }


class StudySupervisor:
    """Retry, deadline, budget, and failure-isolation for study batches.

    One supervisor instance spans one batch (e.g. one ``run_sweep``
    call): the time budget starts at construction and attempt counts
    are charged per task position across pool rebuilds.
    """

    def __init__(
        self,
        *,
        policy: RetryPolicy | None = None,
        strict: bool = True,
        deadline_s: float | None = None,
        budget_s: float | None = None,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise RuntimeControlError("study deadline must be positive")
        if budget_s is not None and budget_s <= 0:
            raise RuntimeControlError("sweep budget must be positive")
        self.policy = policy or RetryPolicy()
        self.strict = strict
        self.deadline_s = deadline_s
        self.budget_s = budget_s
        self.attempts: dict[int, int] = {}
        self.pool_rebuilds = 0
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # Budget
    # ------------------------------------------------------------------
    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def budget_exhausted(self) -> bool:
        return self.budget_s is not None and self.elapsed_s() >= self.budget_s

    def budget_failure(self, task: SupervisedTask) -> StudyFailure:
        message = (
            f"sweep time budget ({self.budget_s:.3g}s) exhausted after "
            f"{self.elapsed_s():.3g}s; study {task.label!r} did not run to "
            f"completion"
        )
        if self.strict:
            raise SweepBudgetError(message)
        return self._record_failure(task, SweepBudgetError(message))

    # ------------------------------------------------------------------
    # Failure accounting
    # ------------------------------------------------------------------
    def _retryable(self, exc: BaseException) -> bool:
        """Whether retrying could possibly change the outcome.

        The taxonomy mirrors :class:`RunController`: deterministic
        :class:`ReproError`\\ s are fatal (a modeling error re-raises
        identically on every retry); everything else -- a crashed
        worker, a collapsed pool, an unexpected exception -- might be
        environmental, so it gets the retry budget.
        """
        if isinstance(exc, RuntimeControlError):
            return exc.retryable
        if isinstance(exc, ReproError):
            return False
        return True

    def _charge(self, task: SupervisedTask, exc: BaseException) -> bool:
        """Charge one attempt; ``True`` if the study may retry."""
        attempts = self.attempts.get(task.position, 0) + 1
        self.attempts[task.position] = attempts
        obs = current_observer()
        obs.inc("supervisor.study_attempts")
        if not self._retryable(exc):
            return False
        if attempts > self.policy.max_retries:
            return False
        obs.inc("supervisor.study_retries")
        obs.event(
            "study_retry",
            study=task.label,
            attempt=attempts,
            error=type(exc).__name__,
        )
        return True

    def _record_failure(
        self, task: SupervisedTask, exc: BaseException
    ) -> StudyFailure:
        failure = StudyFailure(
            position=task.position,
            study_hash=task.study_hash,
            label=task.label,
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=self.attempts.get(task.position, 0),
        )
        obs = current_observer()
        obs.inc("supervisor.studies_failed")
        obs.event(
            "study_failure",
            study=task.label,
            study_hash=task.study_hash,
            error=failure.error_type,
            attempts=failure.attempts,
        )
        return failure

    def _terminal(
        self, task: SupervisedTask, exc: BaseException
    ) -> StudyFailure:
        """A study is out of options: raise (strict) or record (lenient)."""
        if self.strict:
            attempts = self.attempts.get(task.position, 0)
            raise StudyFailureError(
                f"study {task.label!r} (hash {task.study_hash or '?'}) "
                f"failed after {max(attempts, 1)} attempt(s): "
                f"{type(exc).__name__}: {exc}",
                failure=self._record_failure(task, exc),
            ) from exc
        return self._record_failure(task, exc)

    # ------------------------------------------------------------------
    # Serial execution
    # ------------------------------------------------------------------
    def run_serial(
        self,
        tasks: Sequence[SupervisedTask],
        runner: Callable[[object], object],
    ) -> Iterator[tuple[SupervisedTask, object]]:
        """Run tasks inline, yielding ``(task, result-or-StudyFailure)``.

        Per-study deadlines are not enforceable inline (nothing can
        preempt the running call); the budget is checked between
        studies, so a batch never *starts* work past its budget.
        """
        for task in tasks:
            if self.budget_exhausted():
                yield task, self.budget_failure(task)
                continue
            while True:
                try:
                    result = runner(task.payload)
                except Exception as exc:
                    if not self._charge(task, exc):
                        yield task, self._terminal(task, exc)
                        break
                    time.sleep(
                        self.policy.backoff_s(self.attempts[task.position])
                    )
                else:
                    yield task, result
                    break

    # ------------------------------------------------------------------
    # Pooled execution
    # ------------------------------------------------------------------
    def run_pool(
        self,
        tasks: Sequence[SupervisedTask],
        jobs: int,
        task_fn: Callable,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> Iterator[tuple[SupervisedTask, object]]:
        """Run tasks on a supervised process pool.

        Yields ``(task, result-or-StudyFailure)`` as each study settles.
        The pool is rebuilt (with the same initializer) after a
        collapse or a hung study; surviving studies are resubmitted and
        keep their attempt counters.
        """
        remaining: dict[int, SupervisedTask] = {
            task.position: task for task in tasks
        }
        obs = current_observer()
        while remaining:
            if self.budget_exhausted():
                for position in sorted(remaining):
                    task = remaining.pop(position)
                    yield task, self.budget_failure(task)
                return
            executor = ProcessPoolExecutor(
                max_workers=min(jobs, len(remaining)),
                initializer=initializer,
                initargs=initargs,
            )
            rebuilding = False
            try:
                for task, outcome, rebuild in self._drive(
                    executor, remaining, task_fn
                ):
                    if task is not None:
                        yield task, outcome
                    if rebuild:
                        rebuilding = True
            finally:
                terminate_pool(executor)
            if rebuilding and remaining:
                self.pool_rebuilds += 1
                obs.inc("supervisor.pool_rebuilds")
                obs.event("supervisor_pool_rebuild", remaining=len(remaining))

    def _drive(
        self,
        executor: ProcessPoolExecutor,
        remaining: dict[int, SupervisedTask],
        task_fn: Callable,
    ) -> Iterator[tuple[SupervisedTask | None, object, bool]]:
        """Drive one pool; the final event may carry ``rebuild=True``.

        Events are ``(task, outcome, rebuild)``; ``task`` is ``None``
        for a bare rebuild signal.  Settled tasks are removed from
        ``remaining``; anything left when a rebuild fires reruns on the
        next pool with its attempt counters intact.
        """
        futures: dict[Future, SupervisedTask] = {}
        for position in sorted(remaining):
            task = remaining[position]
            futures[executor.submit(task_fn, task.payload)] = task
        running_since: dict[Future, float] = {}
        while futures:
            if self.budget_exhausted():
                # The outer loop converts what's left into budget
                # failures; tearing the pool down cancels in-flight work.
                yield None, None, True
                return
            done, _ = wait(
                futures,
                timeout=self.policy.poll_interval_s,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            retry_now: list[SupervisedTask] = []
            for future in done:
                task = futures.pop(future)
                running_since.pop(future, None)
                try:
                    result = future.result()
                except Exception as exc:
                    if isinstance(exc, BrokenProcessPool):
                        broken = True
                        exc = WorkerCrashError(
                            f"worker pool collapsed while running study "
                            f"{task.label!r}: {exc}"
                        )
                    if self._charge(task, exc):
                        retry_now.append(task)
                    else:
                        del remaining[task.position]
                        yield task, self._terminal(task, exc), False
                else:
                    del remaining[task.position]
                    yield task, result, False
            if broken:
                # The collapse destroyed the evidence of which in-flight
                # study killed the worker: charge them all one attempt
                # (mirroring RunController) and rebuild.
                for future, task in list(futures.items()):
                    crash = WorkerCrashError(
                        f"worker pool collapsed while study {task.label!r} "
                        f"was in flight"
                    )
                    if not self._charge(task, crash):
                        del remaining[task.position]
                        yield task, self._terminal(task, crash), False
                yield None, None, True
                return
            for task in retry_now:
                time.sleep(self.policy.backoff_s(self.attempts[task.position]))
                try:
                    futures[executor.submit(task_fn, task.payload)] = task
                except BrokenProcessPool:
                    yield None, None, True
                    return
            hung = self._hung_study(futures, running_since)
            if hung is not None:
                task = hung
                timeout = WorkerTimeoutError(
                    f"study {task.label!r} still running after its "
                    f"{self.deadline_s:.3g}s deadline"
                )
                if not self._charge(task, timeout):
                    del remaining[task.position]
                    yield task, self._terminal(task, timeout), False
                # A hung worker cannot be cancelled, only abandoned:
                # tear the pool down and rerun the survivors.
                yield None, None, True
                return

    def _hung_study(
        self,
        futures: dict[Future, SupervisedTask],
        running_since: dict[Future, float],
    ) -> SupervisedTask | None:
        """The first study past its deadline, if a deadline is set."""
        if self.deadline_s is None:
            return None
        now = time.monotonic()
        for future in futures:
            if future.running() and future not in running_since:
                running_since[future] = now
        for future, started in running_since.items():
            if future in futures and now - started > self.deadline_s:
                return futures[future]
        return None
