"""The fault-tolerant run controller for the parallel realization pass.

:class:`RunController` owns what used to be an unsupervised
``ProcessPoolExecutor.map``: it submits one task per realization, retries
retryable failures with capped exponential backoff, enforces a per-task
timeout on hung workers, survives a collapsed pool
(``BrokenProcessPool`` after a worker is killed), validates every
returned payload, and streams completed realizations into a
:class:`~repro.runtime.checkpoint.CheckpointStore` so an interrupted run
resumes from its shards to a bit-identical ensemble.

Failure taxonomy (see :mod:`repro.errors`):

* **retryable** -- :class:`WorkerCrashError` (worker died or its task
  raised an unexpected exception), :class:`WorkerTimeoutError` (task
  exceeded ``task_timeout_s``), :class:`CorruptResultError` (payload
  failed validation).  Each retry is charged to the realization; after
  ``max_retries`` charges the run flushes its checkpoint and raises
  :class:`RetryExhaustedError`.
* **fatal** -- any :class:`~repro.errors.ReproError` raised by the task
  itself: a deterministic modeling error that no retry will fix is
  surfaced immediately (after flushing the checkpoint).

When a pool collapses, every in-flight task is charged one
:class:`WorkerCrashError` attempt -- the collapse destroys the evidence
of which task killed it -- and the pool is rebuilt.  A hung task charges
only itself; innocent in-flight tasks lost to the rebuild are
resubmitted without penalty.

Determinism: realization ``i`` consumes only the serial parameter pass's
``params[i]`` and a generator freshly derived from
``SeedSequence(seed).spawn(count)[i]`` at every (re)submission, so
retries, worker counts, pool rebuilds, and resume all produce the same
bits.

Transport: pooled runs default to the *in-place* depth transport -- a
parent-owned shared-memory board
(:class:`~repro.io.shared_ensemble.DepthShardBoard`) that workers write
each realization's depth row into directly, returning only a light
:class:`DepthShard` payload instead of pickling the per-asset mapping
back through the result pipe.  Every row is still validated through the
same ``_validate`` path, faults and retries behave identically (a retry
rewrites the same bits), and the finished board primes the ensemble's
depth-matrix cache.  ``transport="pickle"`` pins the historical
per-result pickling baseline.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from math import isfinite

import numpy as np

from repro.errors import (
    CorruptResultError,
    ReproError,
    RetryExhaustedError,
    RuntimeControlError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.hazards.hurricane.ensemble import (
    EnsembleGenerator,
    HurricaneEnsemble,
    HurricaneRealization,
    StormParameters,
)
from repro.hazards.hurricane.inundation import InundationField
from repro.io.shared_ensemble import DepthShardBoard
from repro.obs.observer import current as current_observer
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.faults import FaultPlan

#: Transport choices for pooled runs: how workers return depths.
TRANSPORTS = ("auto", "inplace", "pickle")


@dataclass(frozen=True)
class DepthShard:
    """A worker's light result payload under the in-place transport.

    The realization's depth row already sits in the parent-owned
    :class:`~repro.io.shared_ensemble.DepthShardBoard` at ``index``; only
    the storm parameters (a handful of floats) cross the result pipe.
    """

    index: int
    params: StormParameters


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the controller fights for each realization."""

    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    task_timeout_s: float | None = None
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise RuntimeControlError("max_retries cannot be negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise RuntimeControlError("backoff durations cannot be negative")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise RuntimeControlError("task timeout must be positive")
        if self.poll_interval_s <= 0:
            raise RuntimeControlError("poll interval must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), capped."""
        return min(self.backoff_cap_s, self.backoff_base_s * (2 ** max(0, attempt - 1)))

    @classmethod
    def from_options(
        cls,
        max_retries: int | None = None,
        task_timeout_s: float | None = None,
    ) -> "RetryPolicy | None":
        """A policy from optional knobs, or ``None`` when both are unset.

        The CLI, facade, and sweep engine all accept independent
        ``--max-retries`` / ``--task-timeout`` options; this is the one
        place that turns them into a policy (``None`` means "use the
        controller's default policy").
        """
        if max_retries is None and task_timeout_s is None:
            return None
        kwargs: dict = {}
        if max_retries is not None:
            kwargs["max_retries"] = max_retries
        if task_timeout_s is not None:
            kwargs["task_timeout_s"] = task_timeout_s
        return cls(**kwargs)


class RunController:
    """Supervises the realization pass of one ensemble generation run."""

    def __init__(
        self,
        generator: EnsembleGenerator,
        count: int,
        seed: int,
        n_jobs: int = 1,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        checkpoint: CheckpointStore | None = None,
        transport: str = "auto",
    ) -> None:
        if count < 1:
            raise RuntimeControlError("run needs at least one realization")
        if n_jobs < 1:
            raise RuntimeControlError("n_jobs must be at least 1")
        if transport not in TRANSPORTS:
            raise RuntimeControlError(
                f"unknown transport {transport!r}; pick one of {TRANSPORTS}"
            )
        self.generator = generator
        self.count = count
        self.seed = seed
        self.n_jobs = n_jobs
        self.policy = policy or RetryPolicy()
        self.faults = faults
        self.checkpoint = checkpoint
        self.transport = transport
        self._expected_assets = frozenset(a.name for a in generator.catalog)
        self._asset_order: tuple[str, ...] = tuple(
            getattr(generator, "asset_order", ()) or ()
        )
        if transport == "inplace" and not self._asset_order:
            raise RuntimeControlError(
                "in-place transport needs a generator exposing asset_order"
            )
        self._board: DepthShardBoard | None = None
        self._board_matrix: "np.ndarray | None" = None
        self.retries_by_index: dict[int, int] = {}
        self.pool_rebuilds = 0
        self.resumed_realizations = 0
        self._obs = current_observer()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> HurricaneEnsemble:
        """Produce the full ensemble, resuming from shards if asked."""
        obs = self._obs = current_observer()
        with obs.span("ensemble.parameter_pass", count=self.count):
            params = self.generator.sample_all_parameters(self.count, self.seed)
            seqs = np.random.SeedSequence(self.seed).spawn(self.count)
        results: dict[int, HurricaneRealization] = {}
        if self.checkpoint is not None:
            if resume:
                with obs.span("ensemble.checkpoint_load"):
                    results.update(self.checkpoint.load(expected_params=params))
                self.resumed_realizations = len(results)
                if results:
                    obs.inc("runtime.checkpoint.resumed", len(results))
                    obs.event(
                        "checkpoint_resume",
                        realizations=len(results),
                        of=self.count,
                    )
            else:
                self.checkpoint.reset()
        pending = [i for i in range(self.count) if i not in results]
        try:
            with obs.span(
                "ensemble.realization_pass",
                count=len(pending),
                n_jobs=self.n_jobs,
            ):
                if self.n_jobs == 1:
                    self._run_inline(pending, params, seqs, results)
                else:
                    self._run_pool(pending, params, seqs, results)
        finally:
            self._flush()
        obs.inc("runtime.realizations_completed", len(pending))
        ensemble = HurricaneEnsemble(
            scenario_name=self.generator.scenario.name,
            realizations=tuple(results[i] for i in range(self.count)),
            seed=self.seed,
        )
        if self._board_matrix is not None:
            # The in-place transport already holds the full (R x A) depth
            # matrix: prime the ensemble's lazy cache so the batched
            # executor never re-walks a million per-realization dicts.
            columns = {name: i for i, name in enumerate(self._asset_order)}
            object.__setattr__(
                ensemble, "_depth_cache", (self._board_matrix, columns)
            )
        return ensemble

    def _flush(self) -> None:
        if self.checkpoint is not None:
            self.checkpoint.flush()

    def _record(self, results: dict, realization: HurricaneRealization) -> None:
        results[realization.index] = realization
        if self.checkpoint is not None:
            self.checkpoint.record(realization)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _accept(self, index: int, payload) -> HurricaneRealization:
        """Validate one pooled result and rebuild it if it is a shard.

        Workers on the in-place transport return a :class:`DepthShard`
        whose depth row already sits on the shared board.  The same
        guarantees as ``_validate`` hold -- index, asset-set, and
        finiteness -- but each check runs where it is cheap: the asset
        set was enforced in the worker before the row could land (the
        board's column order *is* the catalog's), the index is compared
        directly, and finiteness is one vectorized pass over the row
        instead of a Python walk over the rebuilt mapping.  Any other
        payload (pickled transport, or a mangled result) goes through
        ``_validate`` untouched.
        """
        if self._board is None or not isinstance(payload, DepthShard):
            return self._validate(index, payload)
        if payload.index != index:
            raise CorruptResultError(
                f"task {index} returned realization {payload.index}"
            )
        row = self._board.view[index]
        if not bool(np.isfinite(row).all()):
            raise CorruptResultError(f"task {index} returned non-finite depths")
        return HurricaneRealization(
            index=index,
            params=payload.params,
            inundation=InundationField(
                depths_m=dict(zip(self._board.asset_names, row.tolist()))
            ),
        )

    def _validate(self, index: int, result) -> HurricaneRealization:
        if not isinstance(result, HurricaneRealization):
            raise CorruptResultError(
                f"task {index} returned {type(result).__name__}, not a realization"
            )
        if result.index != index:
            raise CorruptResultError(
                f"task {index} returned realization {result.index}"
            )
        depths = result.inundation.depths_m
        if set(depths) != self._expected_assets:
            raise CorruptResultError(f"task {index} returned a wrong asset set")
        if not all(isfinite(v) for v in depths.values()):
            raise CorruptResultError(f"task {index} returned non-finite depths")
        return result

    def _classify(self, exc: BaseException) -> RuntimeControlError | None:
        """Map a task failure to the taxonomy; ``None`` means fatal."""
        if isinstance(exc, RuntimeControlError):
            return exc if exc.retryable else None
        if isinstance(exc, ReproError):
            return None  # deterministic modeling error: retries cannot help
        if isinstance(exc, BrokenProcessPool):
            return WorkerCrashError(f"worker pool collapsed: {exc}")
        return WorkerCrashError(f"task raised {type(exc).__name__}: {exc}")

    def _charge(self, index: int, error: RuntimeControlError) -> None:
        """Charge one retryable failure; raise once the budget is spent."""
        attempts = self.retries_by_index.get(index, 0) + 1
        self.retries_by_index[index] = attempts
        self._obs.inc("runtime.retries")
        self._obs.inc(f"runtime.retries.{type(error).__name__}")
        self._obs.event(
            "retry",
            realization=index,
            attempt=attempts,
            error=type(error).__name__,
        )
        if attempts > self.policy.max_retries:
            self._flush()
            raise RetryExhaustedError(
                f"realization {index} failed {attempts} times "
                f"(max_retries={self.policy.max_retries}); last error: {error}"
            ) from error

    def _attempt_of(self, index: int) -> int:
        return self.retries_by_index.get(index, 0)

    # ------------------------------------------------------------------
    # Inline (n_jobs == 1) execution
    # ------------------------------------------------------------------
    def _run_inline(self, pending, params, seqs, results) -> None:
        observed = self._obs.enabled
        for index in pending:
            while True:
                attempt = self._attempt_of(index)
                rng = np.random.default_rng(seqs[index])
                try:
                    started = time.perf_counter() if observed else 0.0
                    if self.faults is not None:
                        self.faults.apply_before(index, attempt, inline=True)
                    realization = self.generator.realize(index, params[index], rng)
                    if self.faults is not None:
                        realization = self.faults.mangle_result(
                            index, attempt, realization
                        )
                    self._record(results, self._validate(index, realization))
                    if observed:
                        self._obs.observe(
                            "runtime.realization_s",
                            time.perf_counter() - started,
                        )
                    break
                except Exception as exc:
                    retryable = self._classify(exc)
                    if retryable is None:
                        self._flush()
                        raise
                    self._charge(index, retryable)
                    time.sleep(self.policy.backoff_s(self._attempt_of(index)))

    # ------------------------------------------------------------------
    # Pooled execution
    # ------------------------------------------------------------------
    def _use_inplace(self) -> bool:
        if self.transport == "pickle":
            return False
        return bool(self._asset_order)

    def _publish_board(self, results) -> "DepthShardBoard | None":
        """Create the in-place depth board, or ``None`` for pickling.

        Rows already settled before the pool starts (checkpoint-resumed
        realizations) are copied in by the parent so a completed board
        always holds the full matrix.  A board that cannot be created
        (no shared memory on this host) degrades to the pickled
        transport rather than failing the run.
        """
        if not self._use_inplace():
            return None
        try:
            board = DepthShardBoard.create(self.count, self._asset_order)
        except (OSError, ValueError) as exc:
            if self.transport == "inplace":
                raise RuntimeControlError(
                    f"in-place transport unavailable: {exc}"
                ) from exc
            return None
        for realization in results.values():
            depths = realization.inundation.depths_m
            board.view[realization.index, :] = np.fromiter(
                (depths[name] for name in self._asset_order),
                dtype=np.float64,
                count=len(self._asset_order),
            )
        return board

    def _run_pool(self, pending, params, seqs, results) -> None:
        remaining = set(pending)
        board = self._board = self._publish_board(results)
        self._obs.event(
            "generation_transport",
            transport="inplace" if board is not None else "pickle",
            n_jobs=self.n_jobs,
        )
        initargs = (
            self.generator,
            self.faults,
            board.descriptor if board is not None else None,
        )
        try:
            while remaining:
                executor = ProcessPoolExecutor(
                    max_workers=self.n_jobs,
                    initializer=_init_worker,
                    initargs=initargs,
                )
                try:
                    rebuild = self._drive_pool(
                        executor, remaining, params, seqs, results
                    )
                finally:
                    self._terminate_pool(executor)
                if rebuild:
                    self.pool_rebuilds += 1
                    self._obs.inc("runtime.pool_rebuilds")
                    self._obs.event("pool_rebuild", remaining=len(remaining))
            if board is not None:
                self._board_matrix = board.snapshot()
        finally:
            self._board = None
            if board is not None:
                board.close()
                board.unlink()

    def _submit(self, executor, index, params, seqs) -> Future:
        return executor.submit(
            _run_task,
            index,
            self._attempt_of(index),
            params[index],
            np.random.default_rng(seqs[index]),
        )

    def _drive_pool(self, executor, remaining, params, seqs, results) -> bool:
        """Run tasks on one pool; ``True`` means the pool must be rebuilt."""
        observed = self._obs.enabled
        futures: dict[Future, int] = {
            self._submit(executor, i, params, seqs): i for i in sorted(remaining)
        }
        # Submit-to-completion latency per future (includes queueing).
        submitted_at: dict[Future, float] = (
            {f: time.perf_counter() for f in futures} if observed else {}
        )
        running_since: dict[Future, float] = {}
        while futures:
            done, _ = wait(
                futures, timeout=self.policy.poll_interval_s,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            retry_now: list[int] = []
            for future in done:
                index = futures.pop(future)
                try:
                    realization = self._accept(index, future.result())
                except Exception as exc:
                    submitted_at.pop(future, None)
                    if isinstance(exc, BrokenProcessPool):
                        broken = True
                    retryable = self._classify(exc)
                    if retryable is None:
                        self._flush()
                        raise
                    self._charge(index, retryable)
                    retry_now.append(index)
                else:
                    if observed:
                        started = submitted_at.pop(future, None)
                        if started is not None:
                            self._obs.observe(
                                "runtime.realization_s",
                                time.perf_counter() - started,
                            )
                    self._record(results, realization)
                    remaining.discard(index)
            if broken:
                # The collapse destroyed any evidence of which in-flight
                # task killed the worker: charge them all one attempt.
                # (retry_now tasks were already charged above; all stay in
                # ``remaining`` and rerun on the rebuilt pool.)
                for index in futures.values():
                    self._charge(
                        index, WorkerCrashError("worker pool collapsed mid-task")
                    )
                return True
            for index in retry_now:
                time.sleep(self.policy.backoff_s(self._attempt_of(index)))
                try:
                    future = self._submit(executor, index, params, seqs)
                    futures[future] = index
                    if observed:
                        submitted_at[future] = time.perf_counter()
                except BrokenProcessPool:
                    return True  # already charged; rerun on the rebuilt pool
            if self._hung_task(futures, running_since):
                return True
        return False

    def _hung_task(self, futures, running_since) -> bool:
        """Charge any task running past the timeout; ``True`` if one hung."""
        timeout = self.policy.task_timeout_s
        if timeout is None:
            return False
        now = time.monotonic()
        for future in futures:
            if future.running() and future not in running_since:
                running_since[future] = now
        for future, started in running_since.items():
            if future in futures and now - started > timeout:
                index = futures[future]
                self._charge(
                    index,
                    WorkerTimeoutError(
                        f"realization {index} still running after {timeout:.3g}s"
                    ),
                )
                return True
        return False

    @staticmethod
    def _terminate_pool(executor: ProcessPoolExecutor) -> None:
        terminate_pool(executor)


def terminate_pool(executor: ProcessPoolExecutor) -> None:
    """Stop a pool hard: cancel queued work and kill live workers.

    ``shutdown`` alone would wait on a hung worker forever, so any
    still-live worker processes are terminated outright (private
    attribute, guarded -- a missing attribute degrades to a plain
    shutdown).  Shared by :class:`RunController` (realization pass) and
    :class:`~repro.runtime.supervisor.StudySupervisor` (study pass).
    """
    executor.shutdown(wait=False, cancel_futures=True)
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # already gone
            pass
    for process in list(processes.values()):
        try:
            process.join(timeout=5.0)
        except (OSError, ValueError, AssertionError):
            pass


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
_WORKER_GENERATOR: EnsembleGenerator | None = None
_WORKER_FAULTS: FaultPlan | None = None
_WORKER_BOARD: DepthShardBoard | None = None


def _init_worker(
    generator: EnsembleGenerator,
    faults: FaultPlan | None,
    board_descriptor: dict | None = None,
) -> None:
    """Install the (already-built) generator and fault plan in a worker."""
    global _WORKER_GENERATOR, _WORKER_FAULTS, _WORKER_BOARD
    _WORKER_GENERATOR = generator
    _WORKER_FAULTS = faults
    _WORKER_BOARD = (
        DepthShardBoard.attach(board_descriptor)
        if board_descriptor is not None
        else None
    )


def _write_shard(index: int, realization) -> object:
    """Write the realization's depth row in place; return a light shard.

    The asset set is validated *in the worker* -- a row with missing or
    extra assets must never land on the board -- and a mismatch raises
    the same retryable :class:`CorruptResultError` the parent would have
    raised.  A payload that is not a realization at all, or one claiming
    a foreign index, is returned unwritten so the parent's validation
    reports it exactly as the pickled transport would (depth *values*
    are also still re-checked parent-side: a non-finite row is caught by
    ``_validate`` and the retry overwrites it).
    """
    board = _WORKER_BOARD
    assert board is not None
    if not isinstance(realization, HurricaneRealization):
        return realization
    if realization.index != index:
        return realization
    depths = realization.inundation.depths_m
    if tuple(depths) != board.asset_names:
        raise CorruptResultError(f"task {index} produced a wrong asset set")
    board.view[index, :] = np.fromiter(
        depths.values(), dtype=np.float64, count=len(board.asset_names)
    )
    return DepthShard(index=index, params=realization.params)


def _run_task(index, attempt, params, rng) -> object:
    assert _WORKER_GENERATOR is not None, "worker pool not initialized"
    if _WORKER_FAULTS is not None:
        _WORKER_FAULTS.apply_before(index, attempt)
    realization = _WORKER_GENERATOR.realize(index, params, rng)
    if _WORKER_FAULTS is not None:
        realization = _WORKER_FAULTS.mangle_result(index, attempt, realization)
    if _WORKER_BOARD is None:
        return realization
    return _write_shard(index, realization)
