"""The fault-tolerant run controller for the parallel realization pass.

:class:`RunController` owns what used to be an unsupervised
``ProcessPoolExecutor.map``: it submits one task per realization, retries
retryable failures with capped exponential backoff, enforces a per-task
timeout on hung workers, survives a collapsed pool
(``BrokenProcessPool`` after a worker is killed), validates every
returned payload, and streams completed realizations into a
:class:`~repro.runtime.checkpoint.CheckpointStore` so an interrupted run
resumes from its shards to a bit-identical ensemble.

Failure taxonomy (see :mod:`repro.errors`):

* **retryable** -- :class:`WorkerCrashError` (worker died or its task
  raised an unexpected exception), :class:`WorkerTimeoutError` (task
  exceeded ``task_timeout_s``), :class:`CorruptResultError` (payload
  failed validation).  Each retry is charged to the realization; after
  ``max_retries`` charges the run flushes its checkpoint and raises
  :class:`RetryExhaustedError`.
* **fatal** -- any :class:`~repro.errors.ReproError` raised by the task
  itself: a deterministic modeling error that no retry will fix is
  surfaced immediately (after flushing the checkpoint).

When a pool collapses, every in-flight task is charged one
:class:`WorkerCrashError` attempt -- the collapse destroys the evidence
of which task killed it -- and the pool is rebuilt.  A hung task charges
only itself; innocent in-flight tasks lost to the rebuild are
resubmitted without penalty.

Determinism: realization ``i`` consumes only the serial parameter pass's
``params[i]`` and a generator freshly derived from
``SeedSequence(seed).spawn(count)[i]`` at every (re)submission, so
retries, worker counts, pool rebuilds, and resume all produce the same
bits.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from math import isfinite

import numpy as np

from repro.errors import (
    CorruptResultError,
    ReproError,
    RetryExhaustedError,
    RuntimeControlError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.hazards.hurricane.ensemble import (
    EnsembleGenerator,
    HurricaneEnsemble,
    HurricaneRealization,
)
from repro.obs.observer import current as current_observer
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.faults import FaultPlan


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the controller fights for each realization."""

    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    task_timeout_s: float | None = None
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise RuntimeControlError("max_retries cannot be negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise RuntimeControlError("backoff durations cannot be negative")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise RuntimeControlError("task timeout must be positive")
        if self.poll_interval_s <= 0:
            raise RuntimeControlError("poll interval must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), capped."""
        return min(self.backoff_cap_s, self.backoff_base_s * (2 ** max(0, attempt - 1)))

    @classmethod
    def from_options(
        cls,
        max_retries: int | None = None,
        task_timeout_s: float | None = None,
    ) -> "RetryPolicy | None":
        """A policy from optional knobs, or ``None`` when both are unset.

        The CLI, facade, and sweep engine all accept independent
        ``--max-retries`` / ``--task-timeout`` options; this is the one
        place that turns them into a policy (``None`` means "use the
        controller's default policy").
        """
        if max_retries is None and task_timeout_s is None:
            return None
        kwargs: dict = {}
        if max_retries is not None:
            kwargs["max_retries"] = max_retries
        if task_timeout_s is not None:
            kwargs["task_timeout_s"] = task_timeout_s
        return cls(**kwargs)


class RunController:
    """Supervises the realization pass of one ensemble generation run."""

    def __init__(
        self,
        generator: EnsembleGenerator,
        count: int,
        seed: int,
        n_jobs: int = 1,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        checkpoint: CheckpointStore | None = None,
    ) -> None:
        if count < 1:
            raise RuntimeControlError("run needs at least one realization")
        if n_jobs < 1:
            raise RuntimeControlError("n_jobs must be at least 1")
        self.generator = generator
        self.count = count
        self.seed = seed
        self.n_jobs = n_jobs
        self.policy = policy or RetryPolicy()
        self.faults = faults
        self.checkpoint = checkpoint
        self._expected_assets = frozenset(a.name for a in generator.catalog)
        self.retries_by_index: dict[int, int] = {}
        self.pool_rebuilds = 0
        self.resumed_realizations = 0
        self._obs = current_observer()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> HurricaneEnsemble:
        """Produce the full ensemble, resuming from shards if asked."""
        obs = self._obs = current_observer()
        with obs.span("ensemble.parameter_pass", count=self.count):
            params = self.generator.sample_all_parameters(self.count, self.seed)
            seqs = np.random.SeedSequence(self.seed).spawn(self.count)
        results: dict[int, HurricaneRealization] = {}
        if self.checkpoint is not None:
            if resume:
                with obs.span("ensemble.checkpoint_load"):
                    results.update(self.checkpoint.load(expected_params=params))
                self.resumed_realizations = len(results)
                if results:
                    obs.inc("runtime.checkpoint.resumed", len(results))
                    obs.event(
                        "checkpoint_resume",
                        realizations=len(results),
                        of=self.count,
                    )
            else:
                self.checkpoint.reset()
        pending = [i for i in range(self.count) if i not in results]
        try:
            with obs.span(
                "ensemble.realization_pass",
                count=len(pending),
                n_jobs=self.n_jobs,
            ):
                if self.n_jobs == 1:
                    self._run_inline(pending, params, seqs, results)
                else:
                    self._run_pool(pending, params, seqs, results)
        finally:
            self._flush()
        obs.inc("runtime.realizations_completed", len(pending))
        ensemble = HurricaneEnsemble(
            scenario_name=self.generator.scenario.name,
            realizations=tuple(results[i] for i in range(self.count)),
            seed=self.seed,
        )
        return ensemble

    def _flush(self) -> None:
        if self.checkpoint is not None:
            self.checkpoint.flush()

    def _record(self, results: dict, realization: HurricaneRealization) -> None:
        results[realization.index] = realization
        if self.checkpoint is not None:
            self.checkpoint.record(realization)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _validate(self, index: int, result) -> HurricaneRealization:
        if not isinstance(result, HurricaneRealization):
            raise CorruptResultError(
                f"task {index} returned {type(result).__name__}, not a realization"
            )
        if result.index != index:
            raise CorruptResultError(
                f"task {index} returned realization {result.index}"
            )
        depths = result.inundation.depths_m
        if set(depths) != self._expected_assets:
            raise CorruptResultError(f"task {index} returned a wrong asset set")
        if not all(isfinite(v) for v in depths.values()):
            raise CorruptResultError(f"task {index} returned non-finite depths")
        return result

    def _classify(self, exc: BaseException) -> RuntimeControlError | None:
        """Map a task failure to the taxonomy; ``None`` means fatal."""
        if isinstance(exc, RuntimeControlError):
            return exc if exc.retryable else None
        if isinstance(exc, ReproError):
            return None  # deterministic modeling error: retries cannot help
        if isinstance(exc, BrokenProcessPool):
            return WorkerCrashError(f"worker pool collapsed: {exc}")
        return WorkerCrashError(f"task raised {type(exc).__name__}: {exc}")

    def _charge(self, index: int, error: RuntimeControlError) -> None:
        """Charge one retryable failure; raise once the budget is spent."""
        attempts = self.retries_by_index.get(index, 0) + 1
        self.retries_by_index[index] = attempts
        self._obs.inc("runtime.retries")
        self._obs.inc(f"runtime.retries.{type(error).__name__}")
        self._obs.event(
            "retry",
            realization=index,
            attempt=attempts,
            error=type(error).__name__,
        )
        if attempts > self.policy.max_retries:
            self._flush()
            raise RetryExhaustedError(
                f"realization {index} failed {attempts} times "
                f"(max_retries={self.policy.max_retries}); last error: {error}"
            ) from error

    def _attempt_of(self, index: int) -> int:
        return self.retries_by_index.get(index, 0)

    # ------------------------------------------------------------------
    # Inline (n_jobs == 1) execution
    # ------------------------------------------------------------------
    def _run_inline(self, pending, params, seqs, results) -> None:
        observed = self._obs.enabled
        for index in pending:
            while True:
                attempt = self._attempt_of(index)
                rng = np.random.default_rng(seqs[index])
                try:
                    started = time.perf_counter() if observed else 0.0
                    if self.faults is not None:
                        self.faults.apply_before(index, attempt, inline=True)
                    realization = self.generator.realize(index, params[index], rng)
                    if self.faults is not None:
                        realization = self.faults.mangle_result(
                            index, attempt, realization
                        )
                    self._record(results, self._validate(index, realization))
                    if observed:
                        self._obs.observe(
                            "runtime.realization_s",
                            time.perf_counter() - started,
                        )
                    break
                except Exception as exc:
                    retryable = self._classify(exc)
                    if retryable is None:
                        self._flush()
                        raise
                    self._charge(index, retryable)
                    time.sleep(self.policy.backoff_s(self._attempt_of(index)))

    # ------------------------------------------------------------------
    # Pooled execution
    # ------------------------------------------------------------------
    def _run_pool(self, pending, params, seqs, results) -> None:
        remaining = set(pending)
        while remaining:
            executor = ProcessPoolExecutor(
                max_workers=self.n_jobs,
                initializer=_init_worker,
                initargs=(self.generator, self.faults),
            )
            try:
                rebuild = self._drive_pool(executor, remaining, params, seqs, results)
            finally:
                self._terminate_pool(executor)
            if rebuild:
                self.pool_rebuilds += 1
                self._obs.inc("runtime.pool_rebuilds")
                self._obs.event("pool_rebuild", remaining=len(remaining))

    def _submit(self, executor, index, params, seqs) -> Future:
        return executor.submit(
            _run_task,
            index,
            self._attempt_of(index),
            params[index],
            np.random.default_rng(seqs[index]),
        )

    def _drive_pool(self, executor, remaining, params, seqs, results) -> bool:
        """Run tasks on one pool; ``True`` means the pool must be rebuilt."""
        observed = self._obs.enabled
        futures: dict[Future, int] = {
            self._submit(executor, i, params, seqs): i for i in sorted(remaining)
        }
        # Submit-to-completion latency per future (includes queueing).
        submitted_at: dict[Future, float] = (
            {f: time.perf_counter() for f in futures} if observed else {}
        )
        running_since: dict[Future, float] = {}
        while futures:
            done, _ = wait(
                futures, timeout=self.policy.poll_interval_s,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            retry_now: list[int] = []
            for future in done:
                index = futures.pop(future)
                try:
                    realization = self._validate(index, future.result())
                except Exception as exc:
                    submitted_at.pop(future, None)
                    if isinstance(exc, BrokenProcessPool):
                        broken = True
                    retryable = self._classify(exc)
                    if retryable is None:
                        self._flush()
                        raise
                    self._charge(index, retryable)
                    retry_now.append(index)
                else:
                    if observed:
                        started = submitted_at.pop(future, None)
                        if started is not None:
                            self._obs.observe(
                                "runtime.realization_s",
                                time.perf_counter() - started,
                            )
                    self._record(results, realization)
                    remaining.discard(index)
            if broken:
                # The collapse destroyed any evidence of which in-flight
                # task killed the worker: charge them all one attempt.
                # (retry_now tasks were already charged above; all stay in
                # ``remaining`` and rerun on the rebuilt pool.)
                for index in futures.values():
                    self._charge(
                        index, WorkerCrashError("worker pool collapsed mid-task")
                    )
                return True
            for index in retry_now:
                time.sleep(self.policy.backoff_s(self._attempt_of(index)))
                try:
                    future = self._submit(executor, index, params, seqs)
                    futures[future] = index
                    if observed:
                        submitted_at[future] = time.perf_counter()
                except BrokenProcessPool:
                    return True  # already charged; rerun on the rebuilt pool
            if self._hung_task(futures, running_since):
                return True
        return False

    def _hung_task(self, futures, running_since) -> bool:
        """Charge any task running past the timeout; ``True`` if one hung."""
        timeout = self.policy.task_timeout_s
        if timeout is None:
            return False
        now = time.monotonic()
        for future in futures:
            if future.running() and future not in running_since:
                running_since[future] = now
        for future, started in running_since.items():
            if future in futures and now - started > timeout:
                index = futures[future]
                self._charge(
                    index,
                    WorkerTimeoutError(
                        f"realization {index} still running after {timeout:.3g}s"
                    ),
                )
                return True
        return False

    @staticmethod
    def _terminate_pool(executor: ProcessPoolExecutor) -> None:
        terminate_pool(executor)


def terminate_pool(executor: ProcessPoolExecutor) -> None:
    """Stop a pool hard: cancel queued work and kill live workers.

    ``shutdown`` alone would wait on a hung worker forever, so any
    still-live worker processes are terminated outright (private
    attribute, guarded -- a missing attribute degrades to a plain
    shutdown).  Shared by :class:`RunController` (realization pass) and
    :class:`~repro.runtime.supervisor.StudySupervisor` (study pass).
    """
    executor.shutdown(wait=False, cancel_futures=True)
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # already gone
            pass
    for process in list(processes.values()):
        try:
            process.join(timeout=5.0)
        except (OSError, ValueError, AssertionError):
            pass


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
_WORKER_GENERATOR: EnsembleGenerator | None = None
_WORKER_FAULTS: FaultPlan | None = None


def _init_worker(generator: EnsembleGenerator, faults: FaultPlan | None) -> None:
    """Install the (already-built) generator and fault plan in a worker."""
    global _WORKER_GENERATOR, _WORKER_FAULTS
    _WORKER_GENERATOR = generator
    _WORKER_FAULTS = faults


def _run_task(index, attempt, params, rng) -> HurricaneRealization:
    assert _WORKER_GENERATOR is not None, "worker pool not initialized"
    if _WORKER_FAULTS is not None:
        _WORKER_FAULTS.apply_before(index, attempt)
    realization = _WORKER_GENERATOR.realize(index, params, rng)
    if _WORKER_FAULTS is not None:
        realization = _WORKER_FAULTS.mangle_result(index, attempt, realization)
    return realization
