"""Fault-tolerant run orchestration (checkpoint, retry, supervision).

The :mod:`repro.runtime` subsystem owns long, parallel passes at two
granularities: :class:`~repro.runtime.controller.RunController`
supervises the per-*realization* pass of ensemble generation (retries
crashed or hung workers, validates payloads, streams progress into
sharded :class:`~repro.runtime.checkpoint.CheckpointStore` files so
interrupted runs resume bit-identically), and
:class:`~repro.runtime.supervisor.StudySupervisor` supervises
per-*study* batch execution (fault isolation into
:class:`~repro.runtime.supervisor.StudyFailure` records, retry with
backoff, per-study deadlines, a whole-batch time budget, and pool
rebuild after collapse).  :class:`~repro.runtime.faults.FaultPlan`
scripts deterministic chaos (crashes, kills, hangs, corrupt payloads,
torn files) that the test suite uses to prove those guarantees.
"""

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.controller import RetryPolicy, RunController, terminate_pool
from repro.runtime.faults import FaultKind, FaultPlan, FaultSpec
from repro.runtime.supervisor import StudyFailure, StudySupervisor, SupervisedTask

__all__ = [
    "CheckpointStore",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "RunController",
    "StudyFailure",
    "StudySupervisor",
    "SupervisedTask",
    "terminate_pool",
]
