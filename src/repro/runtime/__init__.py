"""Fault-tolerant run orchestration (checkpoint, retry, fault injection).

The :mod:`repro.runtime` subsystem owns long, parallel realization
passes: :class:`~repro.runtime.controller.RunController` retries crashed
or hung workers and validates payloads, progress streams into sharded
:class:`~repro.runtime.checkpoint.CheckpointStore` files so interrupted
runs resume bit-identically, and
:class:`~repro.runtime.faults.FaultPlan` scripts deterministic chaos
(crashes, kills, hangs, corrupt payloads, torn files) that the test
suite uses to prove those guarantees.
"""

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.controller import RetryPolicy, RunController
from repro.runtime.faults import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "CheckpointStore",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "RunController",
]
