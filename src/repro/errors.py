"""Exception hierarchy for the compound-threats analysis library.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still distinguishing failure domains when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An architecture, placement, or scenario was specified inconsistently."""


class TopologyError(ReproError):
    """A geospatial or SCADA topology is malformed or missing an asset."""


class HazardError(ReproError):
    """Hurricane / hazard modeling received invalid physical parameters."""


class AnalysisError(ReproError):
    """The analysis pipeline was driven with incompatible inputs."""


class NetworkModelError(ReproError):
    """The communication network model was queried inconsistently."""


class GridModelError(ReproError):
    """The power grid substrate was built or solved with invalid data."""


class ProtocolError(ReproError):
    """The BFT replication engine detected a protocol-level violation."""


class SerializationError(ReproError):
    """Loading or saving topologies, realizations, or results failed."""
