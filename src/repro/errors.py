"""Exception hierarchy for the compound-threats analysis library.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still distinguishing failure domains when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An architecture, placement, or scenario was specified inconsistently."""


class TopologyError(ReproError):
    """A geospatial or SCADA topology is malformed or missing an asset."""


class HazardError(ReproError):
    """Hurricane / hazard modeling received invalid physical parameters."""


class AnalysisError(ReproError):
    """The analysis pipeline was driven with incompatible inputs."""


class NetworkModelError(ReproError):
    """The communication network model was queried inconsistently."""


class GridModelError(ReproError):
    """The power grid substrate was built or solved with invalid data."""


class ProtocolError(ReproError):
    """The BFT replication engine detected a protocol-level violation."""


class SerializationError(ReproError):
    """Loading or saving topologies, realizations, or results failed."""


class ObservabilityError(ReproError):
    """The observability layer was used inconsistently.

    Raised only for *programming* errors against :mod:`repro.obs`
    (closing spans out of order, merging incompatible histograms,
    decreasing a counter).  I/O failures while persisting telemetry are
    deliberately **not** errors: metric, trace, and manifest writers
    warn (:class:`repro.obs.ObservabilityWriteWarning`) and continue,
    so telemetry can never cost a run its results.
    """


class RuntimeControlError(ReproError):
    """Base class for the fault-tolerant run controller's failure domain.

    Subclasses carry a ``retryable`` class attribute: the controller
    retries retryable failures (with capped exponential backoff) and
    surfaces fatal ones immediately.  Exceptions raised by the task
    itself that derive from :class:`ReproError` are treated as fatal --
    they are deterministic modeling errors that no retry will fix.
    """

    retryable = False


class WorkerCrashError(RuntimeControlError):
    """A worker process died or its task raised an unexpected exception."""

    retryable = True


class WorkerTimeoutError(RuntimeControlError):
    """A task exceeded its per-task timeout (hung worker)."""

    retryable = True


class CorruptResultError(RuntimeControlError):
    """A worker returned a payload that failed result validation."""

    retryable = True


class CheckpointCorruptError(RuntimeControlError):
    """A checkpoint shard or manifest failed integrity verification."""


class RetryExhaustedError(RuntimeControlError):
    """A task kept failing after every allowed retry."""


class StudyFailureError(RuntimeControlError):
    """A supervised study ran out of options (strict-mode surface).

    Raised by :class:`repro.runtime.supervisor.StudySupervisor` when a
    study fails terminally and ``strict=True``: the message names the
    study that died (config summary + hash + attempt count) and
    ``__cause__`` chains the original exception.  The structured
    failure record rides along as ``failure`` so callers that catch
    can still account for it.
    """

    def __init__(self, message: str, *, failure: object | None = None) -> None:
        super().__init__(message)
        self.failure = failure


class SweepBudgetError(RuntimeControlError):
    """A batch run hit its whole-sweep wall-clock budget."""


class ServiceError(ReproError):
    """The study service was driven inconsistently (bad state or request)."""


class AdmissionError(ServiceError):
    """The service's bounded job queue rejected a submission (backpressure)."""
