"""Terminal visualization: stacked bar charts for operational profiles.

Renders the paper's figures as ASCII stacked bars (one bar per SCADA
configuration, one block character run per operational state).  Pure text
so benchmarks and the CLI can display results in any terminal or log.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.outcomes import OperationalProfile
from repro.core.states import STATE_ORDER, OperationalState

_STATE_GLYPHS: dict[OperationalState, str] = {
    OperationalState.GREEN: "#",
    OperationalState.ORANGE: "o",
    OperationalState.RED: "x",
    OperationalState.GRAY: ".",
}


def profile_bar(profile: OperationalProfile, width: int = 50) -> str:
    """One stacked bar: glyph runs proportional to state probabilities.

    Every nonzero state is guaranteed at least one cell, so rare outcomes
    stay visible; the remaining cells are apportioned by largest
    remainder so the total is exactly ``width``.
    """
    if width < 4:
        raise ValueError("bar width must be at least 4")
    probs = profile.probabilities()
    runs = {state: (1 if probs[state] > 0 else 0) for state in STATE_ORDER}
    spare = width - sum(runs.values())
    ideals = {state: probs[state] * spare for state in STATE_ORDER}
    for state in STATE_ORDER:
        runs[state] += int(ideals[state])
    leftover = width - sum(runs.values())
    by_remainder = sorted(
        STATE_ORDER, key=lambda s: ideals[s] - int(ideals[s]), reverse=True
    )
    for state in by_remainder[:leftover]:
        runs[state] += 1
    return "".join(_STATE_GLYPHS[s] * runs[s] for s in STATE_ORDER)


def profile_chart(
    profiles: Mapping[str, OperationalProfile],
    title: str = "",
    width: int = 50,
) -> str:
    """A figure-style chart: one labeled stacked bar per configuration."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    label_width = max((len(name) for name in profiles), default=0)
    for name, profile in profiles.items():
        bar = profile_bar(profile, width)
        lines.append(f"{name:>{label_width}} |{bar}| {profile.summary()}")
    legend = "  ".join(
        f"{_STATE_GLYPHS[s]}={s.value}" for s in STATE_ORDER
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
