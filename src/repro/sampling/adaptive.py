"""The adaptive sampling controller: rounds until the CI is tight enough.

:func:`run_adaptive_study` is the study-level driver behind
``StudyConfig(sampling="adaptive")``.  Instead of committing to a
realization count up front, it generates the base plan's realizations in
rounds (each round a full checkpointed, cache-aware ensemble pass),
merges the weighted outcome tallies exactly
(:meth:`~repro.sampling.weighted.WeightedProfile.merge`), and stops as
soon as the target outcome's 95% confidence half-width falls below the
requested fraction of the estimate -- or when ``max_rounds`` is
exhausted, whichever comes first.

Each round draws from an independent child seed of ``config.seed``
(via :class:`numpy.random.SeedSequence`), so the controller is exactly
reproducible: same config, same rounds, same bits -- regardless of how
many rounds earlier invocations happened to need.

Cancellation is cooperative and round-granular: hand a
:class:`CancelToken` to ``run_adaptive_study`` and trip it from any
thread; the controller finishes the in-flight round (never tearing a
checkpoint) and returns the partial-but-valid merged result flagged
``cancelled``.  This is what lets the study service abort a running
adaptive job without corrupting its caches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.outcomes import ScenarioMatrix
from repro.core.pipeline import CompoundThreatAnalysis
from repro.core.states import OperationalState
from repro.errors import ConfigurationError
from repro.hazards.hurricane.ensemble import (
    EnsembleGenerator,
    HurricaneEnsemble,
)
from repro.hazards.hurricane.standard import standard_oahu_generator
from repro.obs.manifest import (
    build_run_manifest,
    write_json_artifact,
    write_run_manifest,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObservability,
    Observability,
    activate,
)
from repro.sampling.generation import PlanSampledGenerator, maybe_plan_sampled
from repro.sampling.plans import AdaptivePlan, is_plain
from repro.sampling.weighted import WeightedProfile

__all__ = [
    "AdaptiveStudyResult",
    "CancelToken",
    "RoundSummary",
    "run_adaptive_study",
]


class CancelToken:
    """A thread-safe, one-way cancellation flag.

    Trip it with :meth:`cancel` from any thread; the adaptive controller
    checks it at every round boundary and stops cleanly (merged result
    intact, no torn checkpoints).
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


@dataclass(frozen=True)
class RoundSummary:
    """What one adaptive round contributed and where the estimate stood."""

    index: int
    seed: int
    n_realizations: int
    #: Cumulative realizations after this round.
    total_realizations: int
    #: The merged weighted estimate of the target outcome after this round.
    p_hat: float
    #: 95% CI half-width relative to ``p_hat`` (inf while p_hat is zero).
    rel_ci_halfwidth: float
    #: Kish effective sample size of the merged weights.
    ess: float


@dataclass(frozen=True)
class AdaptiveStudyResult:
    """A finished adaptive run: the merged study plus round diagnostics."""

    #: The merged result -- matrix, manifest, combined ensemble, weights.
    result: "object"
    plan: AdaptivePlan
    rounds: tuple[RoundSummary, ...]
    converged: bool
    cancelled: bool
    #: The (scenario, architecture, state) cell the controller targeted.
    scenario: str
    architecture: str
    state: OperationalState

    @property
    def total_realizations(self) -> int:
        return self.rounds[-1].total_realizations if self.rounds else 0

    @property
    def p_hat(self) -> float:
        return self.rounds[-1].p_hat if self.rounds else 0.0

    @property
    def rel_ci_halfwidth(self) -> float:
        return self.rounds[-1].rel_ci_halfwidth if self.rounds else float("inf")

    def confidence_interval(self) -> tuple[float, float]:
        """The merged 95% CI on the targeted outcome probability."""
        profile = self.result.matrix.get(self.scenario, self.architecture)
        return profile.confidence_interval(self.state)

    def report(self) -> str:
        """A per-round convergence table plus the final verdict."""
        lines = [
            f"Adaptive sampling ({self.plan.resolved_base().name} base, "
            f"target +/-{self.plan.target_rel_ci:.0%} on "
            f"{self.state.value!r} of {self.scenario}/{self.architecture}):"
        ]
        lines.append(
            f"{'round':>5s} {'n':>7s} {'total':>7s} {'p_hat':>10s} "
            f"{'rel CI':>8s} {'ESS':>8s}"
        )
        for r in self.rounds:
            rel = f"{r.rel_ci_halfwidth:7.1%}" if np.isfinite(
                r.rel_ci_halfwidth
            ) else "    inf"
            lines.append(
                f"{r.index:5d} {r.n_realizations:7d} {r.total_realizations:7d} "
                f"{r.p_hat:10.6f} {rel:>8s} {r.ess:8.1f}"
            )
        if self.cancelled:
            verdict = "cancelled at a round boundary"
        elif self.converged:
            verdict = (
                f"converged in {len(self.rounds)} rounds "
                f"({self.total_realizations} realizations)"
            )
        else:
            verdict = f"round budget exhausted ({len(self.rounds)} rounds)"
        lo, hi = self.confidence_interval()
        lines.append(
            f"=> {verdict}; p_hat={self.p_hat:.6f} (95% CI {lo:.6f}..{hi:.6f})"
        )
        return "\n".join(lines)


def _round_seeds(seed: int, max_rounds: int) -> list[int]:
    """Independent, reproducible per-round generation seeds."""
    state = np.random.SeedSequence(seed).generate_state(max_rounds)
    return [int(s) for s in state]


def run_adaptive_study(
    config=None,
    *,
    obs: Observability | NullObservability | None = None,
    cancel: CancelToken | None = None,
) -> AdaptiveStudyResult:
    """Run rounds of the base plan until the target CI is reached.

    ``config.sampling`` must resolve to an :class:`AdaptivePlan`.  The
    returned :class:`AdaptiveStudyResult` wraps an ordinary
    :class:`~repro.api.StudyResult` whose matrix holds the exactly-merged
    weighted profiles over every generated round, whose ensemble is the
    concatenation of the round ensembles (re-indexed), and whose weights
    cover every realization -- so ``exceedance()`` and
    ``expected_annual_loss()`` see the full tail sample.
    """
    from repro.api import StudyConfig, StudyResult, study_config_hash

    config = config or StudyConfig(sampling="adaptive")
    plan = config.resolve_sampling()
    if not isinstance(plan, AdaptivePlan):
        raise ConfigurationError(
            "run_adaptive_study needs an adaptive sampling plan; got "
            f"{plan.name if plan is not None else 'plain'!r} (set "
            "StudyConfig.sampling='adaptive' or an AdaptivePlan)"
        )
    if config.ensemble is not None:
        raise ConfigurationError(
            "adaptive sampling generates its own rounds; it cannot run "
            "over a prebuilt ensemble"
        )
    if obs is None:
        obs = Observability() if config.observability else NULL_OBSERVER
    base = plan.resolved_base()
    generator = config.resolve_generator() or standard_oahu_generator()
    if not isinstance(generator, EnsembleGenerator):
        raise ConfigurationError(
            "adaptive sampling requires a hurricane EnsembleGenerator, "
            f"not {type(generator).__name__}"
        )
    wrapped = maybe_plan_sampled(generator, base)
    architectures = config.resolve_configurations()
    placement = config.resolve_placement()
    scenarios = config.resolve_scenarios()
    chain = config.resolve_chain()
    target_state = OperationalState(plan.state)
    scenario_names = [s.name for s in scenarios]
    architecture_names = [a.name for a in architectures]
    target_scenario = plan.scenario or scenario_names[0]
    target_architecture = plan.architecture or architecture_names[0]
    if target_scenario not in scenario_names:
        raise ConfigurationError(
            f"adaptive target scenario {target_scenario!r} is not in the "
            f"study's scenarios {scenario_names}"
        )
    if target_architecture not in architecture_names:
        raise ConfigurationError(
            f"adaptive target architecture {target_architecture!r} is not "
            f"in the study's configurations {architecture_names}"
        )

    from repro.runtime.controller import RetryPolicy

    retry = RetryPolicy.from_options(config.max_retries, config.task_timeout)
    seeds = _round_seeds(config.seed, plan.max_rounds)
    merged: dict[tuple[str, str], WeightedProfile] = {}
    realizations: list = []
    weight_blocks: list[np.ndarray] = []
    rounds: list[RoundSummary] = []
    converged = False
    cancelled = False
    start = time.perf_counter()
    with activate(obs):
        with obs.span(
            "run_adaptive_study",
            base=base.name,
            target_rel_ci=plan.target_rel_ci,
        ):
            for round_index, round_seed in enumerate(seeds):
                if cancel is not None and cancel.cancelled:
                    cancelled = True
                    obs.event("sampling.cancelled", round=round_index)
                    break
                with obs.span("sampling.round", index=round_index):
                    ensemble_r = wrapped.generate(
                        count=plan.round_size,
                        seed=round_seed,
                        n_jobs=config.jobs,
                        cache_dir=config.cache_dir,
                        resume=config.resume,
                        retry=retry,
                    )
                    if isinstance(wrapped, PlanSampledGenerator):
                        weights_r = wrapped.weights(ensemble_r)
                    else:
                        # Plain base: unit weights keep every profile a
                        # mergeable WeightedProfile.
                        weights_r = np.ones(len(ensemble_r))
                    analysis = CompoundThreatAnalysis(
                        ensemble_r,
                        fragility=config.resolve_fragility(),
                        attacker=config.attacker,
                        seed=config.analysis_seed,
                        chain=chain,
                        batch=config.batch,
                        weights=weights_r,
                    )
                    matrix_r = analysis.run_matrix(
                        architectures, placement, scenarios
                    )
                offset = len(realizations)
                realizations.extend(
                    replace(r, index=offset + i)
                    for i, r in enumerate(ensemble_r)
                )
                weight_blocks.append(np.asarray(weights_r, dtype=float))
                for s_name in scenario_names:
                    for a_name in architecture_names:
                        profile = matrix_r.get(s_name, a_name)
                        key = (s_name, a_name)
                        merged[key] = (
                            merged[key].merge(profile)  # type: ignore[arg-type]
                            if key in merged
                            else profile  # type: ignore[assignment]
                        )
                target = merged[(target_scenario, target_architecture)]
                p_hat = target.probability(target_state)
                rel = target.relative_ci_halfwidth(target_state)
                rounds.append(
                    RoundSummary(
                        index=round_index,
                        seed=round_seed,
                        n_realizations=len(ensemble_r),
                        total_realizations=len(realizations),
                        p_hat=p_hat,
                        rel_ci_halfwidth=rel,
                        ess=target.effective_sample_size,
                    )
                )
                obs.inc("sampling.rounds")
                obs.set_gauge("sampling.p_hat", p_hat)
                obs.set_gauge("sampling.realizations", len(realizations))
                if np.isfinite(rel):
                    obs.set_gauge("sampling.ci_rel_halfwidth", rel)
                if p_hat > 0.0 and rel <= plan.target_rel_ci:
                    converged = True
                    break
            if not realizations:
                raise ConfigurationError(
                    "adaptive run was cancelled before its first round"
                )
            matrix = ScenarioMatrix(placement_label=placement.label())
            for s_name in scenario_names:
                for a_name in architecture_names:
                    matrix.add(
                        s_name, a_name, merged[(s_name, a_name)]  # type: ignore[arg-type]
                    )
            combined = HurricaneEnsemble(
                scenario_name=generator.scenario.name,
                realizations=tuple(realizations),
                seed=config.seed,
            )
            weights_all = np.concatenate(weight_blocks)
    wall_clock_s = time.perf_counter() - start
    ensemble_key = (
        f"adaptive-{len(rounds)}x{plan.round_size}-"
        f"{wrapped.cache_key(plan.round_size, seeds[0])}"
        if isinstance(wrapped, PlanSampledGenerator)
        else f"adaptive-{len(rounds)}x{plan.round_size}-plain-{config.seed}"
    )
    manifest = build_run_manifest(
        config_hash=study_config_hash(config, ensemble_key=ensemble_key),
        seed=config.seed,
        n_realizations=len(combined),
        configurations=architecture_names,
        scenarios=scenario_names,
        placement=placement.label(),
        chain=chain.spec(),
        region=config.region,
        hazard=config.hazard,
        obs=obs,
        wall_clock_s=wall_clock_s,
    )
    manifest["sampling"] = plan.spec()
    manifest["adaptive"] = {
        "rounds": len(rounds),
        "converged": converged,
        "cancelled": cancelled,
        "total_realizations": len(combined),
        "target": {
            "scenario": target_scenario,
            "architecture": target_architecture,
            "state": target_state.value,
            "rel_ci": plan.target_rel_ci,
        },
        "p_hat": rounds[-1].p_hat,
        "rel_ci_halfwidth": (
            rounds[-1].rel_ci_halfwidth
            if np.isfinite(rounds[-1].rel_ci_halfwidth)
            else None
        ),
    }
    if config.manifest_out is not None:
        write_run_manifest(config.manifest_out, manifest)
    if config.metrics_out is not None and obs.enabled:
        write_json_artifact(
            config.metrics_out, obs.metrics.snapshot(), "metrics snapshot"
        )
    if config.trace_out is not None and obs.enabled:
        write_json_artifact(config.trace_out, obs.tracer.to_dict(), "trace tree")
    result = StudyResult(
        config=config,
        matrix=matrix,
        manifest=manifest,
        ensemble=combined,
        observability=obs,
        weights=weights_all,
    )
    return AdaptiveStudyResult(
        result=result,
        plan=plan,
        rounds=tuple(rounds),
        converged=converged,
        cancelled=cancelled,
        scenario=target_scenario,
        architecture=target_architecture,
        state=target_state,
    )
