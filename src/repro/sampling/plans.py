"""Sampling plans: how an ensemble's track parameters are drawn.

The paper's Monte Carlo draws the storm-track offset from
``N(0, sigma^2)`` and weights every realization equally.  That is the
``plain`` plan, and it is hopeless for tail questions: bounding a 0.1%
red-state probability to +/-10% relative needs ~4M plain realizations.
The plans here reshape *only the track-offset draw* -- the single
parameter that drives landfall position and therefore inundation --
and attach an importance weight to each realization so that weighted
aggregation stays an unbiased estimate of the plain-MC answer:

* :class:`PlainPlan` -- the paper's sampler, weight 1 everywhere.
* :class:`StratifiedPlan` -- partition the offset axis into bins with
  exact normal probabilities ``p_k`` (via ``erf``), draw a fixed
  allocation ``n_k`` per bin (conditionally, by rejection), and weight
  each draw ``p_k * N / n_k``.  ``allocation="equal"`` oversamples the
  tail bins, which is where the rare red events live.
* :class:`ImportancePlan` -- draw the offset from the wider (optionally
  shifted) proposal ``N(shift_sd * sigma, (scale * sigma)^2)`` and
  weight by the exact normal likelihood ratio ``f(x)/g(x)``.  With
  ``scale >= 1`` the ratio is bounded by ``scale``, so no single
  realization can dominate the estimate.
* :class:`AdaptivePlan` -- a round controller around any base plan:
  keep generating rounds until the target cell's CI half-width falls
  below ``target_rel_ci`` relative (see :mod:`repro.sampling.adaptive`).

Weights are a *pure function* of the stored
:class:`~repro.hazards.hurricane.ensemble.StormParameters` and the plan
itself, so they are recomputed bit-identically from checkpointed or
cached realizations -- resume never has to persist them separately.

Plans are frozen dataclasses with a JSON-friendly :meth:`spec`, a
registry (:func:`register_sampling_plan`), and a normalizer
(:func:`resolve_sampling`) accepting a plan, a registered name, or a
spec dict -- the same shape the chain/region/hazard registries use, so
``StudyConfig(sampling=...)``, sweep axes, and HTTP specs all speak the
same vocabulary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import ClassVar

import numpy as np

from repro.core.states import OperationalState
from repro.errors import ConfigurationError

__all__ = [
    "SamplingPlan",
    "PlainPlan",
    "StratifiedPlan",
    "ImportancePlan",
    "AdaptivePlan",
    "register_sampling_plan",
    "available_sampling_plans",
    "resolve_sampling",
    "sampling_from_options",
    "is_plain",
    "normal_cdf",
]


def normal_cdf(z: float) -> float:
    """The standard normal CDF, exactly (via ``math.erf``)."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


@dataclass(frozen=True)
class SamplingPlan:
    """Base class for sampling plans (frozen; subclasses add knobs).

    A plan answers two questions, both deterministic:

    * :meth:`sample_offsets` -- the track offsets (km) for ``count``
      realizations, consuming ``rng`` serially.
    * :meth:`offset_weights` -- the importance weight of each offset,
      recomputable from stored parameters alone.
    """

    name: ClassVar[str] = "base"

    def spec(self) -> dict:
        """JSON-friendly identity: enters hashes, manifests, and specs."""
        payload: dict = {"plan": self.name}
        for field in dataclass_fields(self):
            value = getattr(self, field.name)
            if isinstance(value, SamplingPlan):
                value = value.spec()
            elif isinstance(value, tuple):
                value = list(value)
            payload[field.name] = value
        return payload

    def sample_offsets(
        self, count: int, rng: np.random.Generator, sd_km: float
    ) -> np.ndarray:
        raise NotImplementedError

    def offset_weights(self, offsets: np.ndarray, sd_km: float) -> np.ndarray:
        raise NotImplementedError

    def weights_for(self, ensemble, sd_km: float) -> np.ndarray:
        """Per-realization weights, recomputed from stored parameters.

        Requires every realization to carry ``params.track_offset_km``
        (the hurricane family's :class:`StormParameters` contract);
        ``sd_km`` is the generating spec's ``track_offset_sd_km``.
        Because this is a pure function of plan + stored parameters,
        cached, checkpointed, and resumed ensembles all reweight
        bit-identically.
        """
        offsets = ensemble_track_offsets(ensemble)
        return self.offset_weights(offsets, sd_km)


@dataclass(frozen=True)
class PlainPlan(SamplingPlan):
    """The paper's sampler: offsets from ``N(0, sigma^2)``, weight 1."""

    name: ClassVar[str] = "plain"

    def sample_offsets(
        self, count: int, rng: np.random.Generator, sd_km: float
    ) -> np.ndarray:
        return np.array([float(rng.normal(0.0, sd_km)) for _ in range(count)])

    def offset_weights(self, offsets: np.ndarray, sd_km: float) -> np.ndarray:
        return np.ones(len(offsets))


@dataclass(frozen=True)
class StratifiedPlan(SamplingPlan):
    """Stratify the offset axis into bins with exact normal mass.

    ``edges_sd`` are interior bin edges in units of the scenario's
    track-offset sigma; ``K = len(edges_sd) + 1`` bins cover the whole
    axis (the outermost bins are the tails).  Draws within a bin are
    conditional-normal by rejection, so the weighted estimator
    ``sum(w_i * h_i) / sum(w_i)`` with ``w = p_k * N / n_k`` is exact
    stratified sampling.  ``allocation``:

    * ``"proportional"`` -- ``n_k ~ N * p_k`` (classic variance
      reduction from stratification alone; weights ~1).
    * ``"equal"`` -- ``n_k ~ N / K`` (oversamples the tails ~20x at the
      default edges; the right choice for rare red events).
    """

    edges_sd: tuple[float, ...] = (-2.0, -1.0, -0.5, 0.5, 1.0, 2.0)
    allocation: str = "proportional"

    name: ClassVar[str] = "stratified"

    def __post_init__(self) -> None:
        object.__setattr__(self, "edges_sd", tuple(float(e) for e in self.edges_sd))
        if len(self.edges_sd) < 1:
            raise ConfigurationError("stratified sampling needs at least one bin edge")
        if any(b <= a for a, b in zip(self.edges_sd, self.edges_sd[1:])):
            raise ConfigurationError(
                f"stratified bin edges must be strictly increasing, got "
                f"{self.edges_sd}"
            )
        if self.allocation not in ("proportional", "equal"):
            raise ConfigurationError(
                f"allocation must be 'proportional' or 'equal', "
                f"not {self.allocation!r}"
            )

    @property
    def n_bins(self) -> int:
        return len(self.edges_sd) + 1

    def bin_probabilities(self) -> np.ndarray:
        """Exact normal mass of each bin (sums to 1)."""
        cdf = [0.0] + [normal_cdf(e) for e in self.edges_sd] + [1.0]
        return np.diff(np.array(cdf))

    def allocate(self, count: int) -> np.ndarray:
        """Deterministic per-bin sample counts summing to ``count``."""
        k = self.n_bins
        if count < k:
            raise ConfigurationError(
                f"stratified sampling with {k} bins needs at least {k} "
                f"realizations, got {count}"
            )
        if self.allocation == "equal":
            base, rem = divmod(count, k)
            counts = np.full(k, base, dtype=int)
            counts[:rem] += 1
            return counts
        ideal = self.bin_probabilities() * count
        counts = np.floor(ideal).astype(int)
        # Largest-remainder rounding, ties broken by bin order (stable
        # argsort), then guarantee one draw per bin so no stratum mass
        # is dropped from the estimator.
        order = np.argsort(-(ideal - counts), kind="stable")
        for i in order[: count - int(counts.sum())]:
            counts[i] += 1
        while (counts == 0).any():
            counts[int(np.argmin(counts))] += 1
            counts[int(np.argmax(counts))] -= 1
        return counts

    def _bin_of(self, offsets: np.ndarray, sd_km: float) -> np.ndarray:
        return np.searchsorted(np.array(self.edges_sd) * sd_km, offsets, side="right")

    def sample_offsets(
        self, count: int, rng: np.random.Generator, sd_km: float
    ) -> np.ndarray:
        counts = self.allocate(count)
        lows = (-math.inf,) + self.edges_sd
        highs = self.edges_sd + (math.inf,)
        out: list[float] = []
        for k, n_k in enumerate(counts):
            lo, hi = lows[k] * sd_km, highs[k] * sd_km
            drawn = 0
            while drawn < n_k:
                x = float(rng.normal(0.0, sd_km))
                if lo <= x < hi:
                    out.append(x)
                    drawn += 1
        return np.array(out)

    def offset_weights(self, offsets: np.ndarray, sd_km: float) -> np.ndarray:
        count = len(offsets)
        probabilities = self.bin_probabilities()
        counts = self.allocate(count)
        bins = self._bin_of(np.asarray(offsets, dtype=float), sd_km)
        return probabilities[bins] * count / counts[bins]


@dataclass(frozen=True)
class ImportancePlan(SamplingPlan):
    """Likelihood-ratio reweighting against a wider/shifted proposal.

    The offset is drawn from ``g = N(shift_sd * sigma, (scale *
    sigma)^2)`` and weighted by the exact density ratio ``w(x) = f(x) /
    g(x)`` against the target ``f = N(0, sigma^2)``, so every weighted
    average is unbiased for its plain-MC counterpart.  ``scale >= 1``
    is enforced: it bounds the ratio by ``scale * exp(shift_sd^2 / (2 *
    (scale^2 - 1)))`` (by ``scale`` exactly when unshifted), keeping
    the effective sample size from collapsing.
    """

    shift_sd: float = 0.0
    scale: float = 3.0

    name: ClassVar[str] = "importance"

    def __post_init__(self) -> None:
        if not self.scale >= 1.0:
            raise ConfigurationError(
                f"importance sampling requires scale >= 1 (bounded "
                f"weights), got {self.scale}"
            )
        if self.shift_sd != 0.0 and self.scale <= 1.0:
            raise ConfigurationError(
                "a shifted proposal needs scale > 1, or the likelihood "
                "ratio is unbounded on one tail"
            )

    def sample_offsets(
        self, count: int, rng: np.random.Generator, sd_km: float
    ) -> np.ndarray:
        return rng.normal(self.shift_sd * sd_km, self.scale * sd_km, size=count)

    def offset_weights(self, offsets: np.ndarray, sd_km: float) -> np.ndarray:
        z_target = np.asarray(offsets, dtype=float) / sd_km
        z_proposal = (z_target - self.shift_sd) / self.scale
        return self.scale * np.exp(0.5 * (z_proposal**2 - z_target**2))


@dataclass(frozen=True)
class AdaptivePlan(SamplingPlan):
    """Run base-plan rounds until a target CI half-width is reached.

    The controller (:func:`repro.sampling.run_adaptive_study`) generates
    ``round_size`` realizations per round under ``base``, merges the
    weighted tallies, and stops when the chosen outcome's 95% CI
    half-width is at most ``target_rel_ci`` relative to the estimate
    (or after ``max_rounds``).  The outcome cell defaults to the red
    state of the study's first (scenario, architecture) cell.
    """

    base: "SamplingPlan | str" = "importance"
    round_size: int = 250
    max_rounds: int = 40
    target_rel_ci: float = 0.10
    state: str = "red"
    scenario: str | None = None
    architecture: str | None = None

    name: ClassVar[str] = "adaptive"

    def __post_init__(self) -> None:
        if self.round_size < 10:
            raise ConfigurationError(
                f"adaptive round_size must be >= 10, got {self.round_size}"
            )
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"adaptive max_rounds must be >= 1, got {self.max_rounds}"
            )
        if not 0.0 < self.target_rel_ci < 1.0:
            raise ConfigurationError(
                f"target_rel_ci must be in (0, 1), got {self.target_rel_ci}"
            )
        try:
            OperationalState(self.state)
        except ValueError:
            raise ConfigurationError(
                f"unknown outcome state {self.state!r}; choose from "
                f"{[s.value for s in OperationalState]}"
            ) from None
        base = self.resolved_base()  # validates name/spec
        if base.name == "adaptive":
            raise ConfigurationError("an adaptive plan cannot nest another")

    def resolved_base(self) -> SamplingPlan:
        base = resolve_sampling(self.base)
        assert base is not None
        return base

    def sample_offsets(
        self, count: int, rng: np.random.Generator, sd_km: float
    ) -> np.ndarray:
        return self.resolved_base().sample_offsets(count, rng, sd_km)

    def offset_weights(self, offsets: np.ndarray, sd_km: float) -> np.ndarray:
        return self.resolved_base().offset_weights(offsets, sd_km)


# ----------------------------------------------------------------------
# Registry (mirrors chains / regions / hazard families)
# ----------------------------------------------------------------------
_PLANS: dict[str, type[SamplingPlan]] = {}


def register_sampling_plan(
    cls: type[SamplingPlan], *, replace: bool = False
) -> type[SamplingPlan]:
    """Register a plan class under its ``name``; returns it."""
    if cls.name in _PLANS and not replace:
        raise ConfigurationError(
            f"sampling plan {cls.name!r} is already registered"
        )
    _PLANS[cls.name] = cls
    return cls


def available_sampling_plans() -> list[str]:
    """Registered plan names, sorted."""
    return sorted(_PLANS)


for _cls in (PlainPlan, StratifiedPlan, ImportancePlan, AdaptivePlan):
    register_sampling_plan(_cls)


def _plan_from_spec(spec: dict) -> SamplingPlan:
    data = dict(spec)
    name = data.pop("plan", None)
    if not isinstance(name, str):
        raise ConfigurationError(
            f"a sampling spec needs a 'plan' name, got {spec!r}"
        )
    try:
        cls = _PLANS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sampling plan {name!r}; choose from "
            f"{available_sampling_plans()}"
        ) from None
    allowed = {f.name for f in dataclass_fields(cls)}
    unknown = set(data) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown {name} sampling option(s) {sorted(unknown)}; "
            f"choose from {sorted(allowed)}"
        )
    if isinstance(data.get("base"), dict):
        data["base"] = _plan_from_spec(data["base"])
    if isinstance(data.get("edges_sd"), list):
        data["edges_sd"] = tuple(data["edges_sd"])
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigurationError(f"invalid {name} sampling spec: {exc}") from exc


def resolve_sampling(
    sampling: "SamplingPlan | str | dict | None",
) -> SamplingPlan | None:
    """Normalize a sampling argument: ``None`` stays ``None`` (plain
    path), a name resolves to the registered plan's defaults, a dict is
    a :meth:`SamplingPlan.spec`-shaped spec."""
    if sampling is None:
        return None
    if isinstance(sampling, SamplingPlan):
        return sampling
    if isinstance(sampling, str):
        try:
            return _PLANS[sampling]()
        except KeyError:
            raise ConfigurationError(
                f"unknown sampling plan {sampling!r}; choose from "
                f"{available_sampling_plans()}"
            ) from None
    if isinstance(sampling, dict):
        return _plan_from_spec(sampling)
    raise ConfigurationError(
        f"sampling must be a SamplingPlan, a registered name, or a spec "
        f"dict, not {type(sampling).__name__}"
    )


def is_plain(plan: SamplingPlan | None) -> bool:
    """Whether a plan takes the bitwise-identical legacy code path."""
    return plan is None or plan.name == "plain"


def sampling_from_options(
    sampling: "SamplingPlan | str | dict | None",
    target_ci: float | None = None,
) -> SamplingPlan | None:
    """Combine ``--sampling`` and ``--target-ci`` style options.

    A ``target_ci`` promotes the plan to adaptive: the given plan (or
    importance, the default) becomes the per-round base.
    """
    plan = resolve_sampling(sampling)
    if target_ci is None:
        return plan
    if isinstance(plan, AdaptivePlan):
        return replace(plan, target_rel_ci=float(target_ci))
    base: SamplingPlan = plan if plan is not None and plan.name != "plain" else (
        ImportancePlan()
    )
    return AdaptivePlan(base=base, target_rel_ci=float(target_ci))


# ----------------------------------------------------------------------
# Ensemble introspection shared by weights and the generator wrapper
# ----------------------------------------------------------------------
def ensemble_track_offsets(ensemble) -> np.ndarray:
    """Each realization's stored track offset (km), in index order."""
    offsets = []
    for realization in ensemble.realizations:
        params = getattr(realization, "params", None)
        offset = getattr(params, "track_offset_km", None)
        if offset is None:
            raise ConfigurationError(
                "sampling plans need realizations with track parameters "
                "(params.track_offset_km); this ensemble's realizations "
                f"are {type(realization).__name__}"
            )
        offsets.append(float(offset))
    return np.array(offsets)
