"""Downstream impact: load shed and economic loss per realization.

The paper's output is a green/orange/red count; production risk questions
want *how much* -- megawatts shed and dollars lost -- as exceedance
curves and expected annual loss (the compound cyberattack/extreme-weather
economics framing of arXiv 2209.04927).  This module adds that layer two
ways that share one solver and one memo:

* :class:`LoadShedStage` / :class:`EconomicLossStage` -- chain stages
  (the ``"tail-risk"`` preset) publishing per-realization impact into
  ``ctx.extras`` for timeline inspection, memoized per distinct damage
  pattern exactly like
  :class:`~repro.core.chain.InterdependencyStage`.
* :func:`compute_impacts` -- the vectorized driver behind
  :meth:`StudyResult.exceedance`: one DC load-flow cascade per distinct
  damage pattern, broadcast back over realizations, with importance
  weights carried into every aggregate.

The load-flow approximation is the existing grid substrate: storm-failed
buses are removed (:func:`~repro.grid.storm_impact.damaged_grid`), the
surviving grid re-islands and sheds under
:func:`~repro.grid.contingency.simulate_contingency`, and the unserved
megawatts (relative to pre-storm demand) are the realization's load
shed.  Loss converts shed energy at a value-of-lost-load rate and adds
per-failed-asset restoration cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import AnalysisError, ConfigurationError
from repro.hazards.fragility import FragilityModel, ThresholdFragility

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.batch import BatchContext, ChainBatch
    from repro.core.chain import ChainContext
    from repro.core.system_state import SystemState
    from repro.grid.model import GridModel

__all__ = [
    "LossModel",
    "GridImpact",
    "ImpactResult",
    "ExceedanceCurve",
    "ExpectedAnnualLoss",
    "LoadShedStage",
    "EconomicLossStage",
    "compute_impacts",
]


@dataclass(frozen=True)
class LossModel:
    """Economic conversion of physical damage (deliberately simple).

    Defaults follow common planning figures: a value of lost load of
    $9,000/MWh (DOE-range for firm load), a 24 h restoration window for
    the shed energy integral, $2M average restoration cost per failed
    asset, and a 0.12/yr landfalling-storm rate for annualization.
    """

    value_of_lost_load_usd_per_mwh: float = 9_000.0
    outage_hours: float = 24.0
    restoration_cost_usd_per_asset: float = 2_000_000.0
    event_rate_per_year: float = 0.12

    def __post_init__(self) -> None:
        if min(
            self.value_of_lost_load_usd_per_mwh,
            self.outage_hours,
            self.restoration_cost_usd_per_asset,
            self.event_rate_per_year,
        ) < 0:
            raise ConfigurationError("loss model parameters cannot be negative")

    def loss_usd(self, shed_mw: float, failed_assets: int) -> float:
        energy = shed_mw * self.outage_hours
        return (
            energy * self.value_of_lost_load_usd_per_mwh
            + failed_assets * self.restoration_cost_usd_per_asset
        )


@dataclass(frozen=True)
class GridImpact:
    """One damage pattern's solved grid outcome."""

    out_buses: tuple[str, ...]
    shed_mw: float
    served_fraction: float


class _GridImpactSolver:
    """The shared per-damage-pattern DC load-flow memo."""

    def __init__(self, grid: "GridModel | None" = None) -> None:
        self._grid = grid
        self._cache: dict[frozenset[str], GridImpact] = {}

    def _materialize(self) -> "GridModel":
        if self._grid is None:
            from repro.grid.model import build_oahu_grid

            self._grid = build_oahu_grid()
        return self._grid

    def solve(self, failed: frozenset[str]) -> GridImpact:
        """Impact of one failed-asset set (memoized per bus pattern)."""
        from repro.grid.contingency import simulate_contingency
        from repro.grid.storm_impact import damaged_grid

        grid = self._materialize()
        out_buses = frozenset(name for name in failed if name in grid.buses)
        try:
            return self._cache[out_buses]
        except KeyError:
            pass
        survivor, _shed_at_damaged = damaged_grid(grid, out_buses)
        degenerate = (
            not survivor.lines
            or not survivor.generators
            or survivor.total_demand_mw == 0
        )
        if degenerate:
            served_mw = 0.0
        else:
            cascade = simulate_contingency(survivor, set(), True)
            served_mw = cascade.served_fraction * survivor.total_demand_mw
        demand = grid.total_demand_mw
        shed_mw = max(0.0, demand - served_mw)
        impact = GridImpact(
            out_buses=tuple(sorted(out_buses)),
            shed_mw=shed_mw,
            served_fraction=served_mw / demand if demand > 0 else 1.0,
        )
        self._cache[out_buses] = impact
        return impact


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExceedanceCurve:
    """A weighted survival function P(X > level) over impact levels."""

    metric: str
    levels: tuple[float, ...]
    probabilities: tuple[float, ...]

    @classmethod
    def from_samples(
        cls, values: np.ndarray, weights: np.ndarray, metric: str
    ) -> "ExceedanceCurve":
        values = np.asarray(values, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if values.shape != weights.shape:
            raise AnalysisError(
                f"weights shape {weights.shape} does not match values "
                f"shape {values.shape}"
            )
        total = float(weights.sum())
        if total <= 0:
            raise AnalysisError("exceedance needs a positive total weight")
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        # Weight remaining strictly above each distinct level: the
        # reversed cumulative sum evaluated past each level's last entry.
        levels, first_index = np.unique(sorted_values, return_index=True)
        mass_at = np.add.reduceat(weights[order], first_index)
        above = total - np.cumsum(mass_at)
        return cls(
            metric=metric,
            levels=tuple(float(v) for v in levels),
            probabilities=tuple(max(0.0, float(p)) / total for p in above),
        )

    def probability_exceeding(self, level: float) -> float:
        """P(X > level), a right-continuous step function."""
        index = np.searchsorted(np.array(self.levels), level, side="right") - 1
        if index < 0:
            # Below the smallest observed value: everything exceeds it
            # unless the smallest value itself is above ``level``.
            return 1.0
        return self.probabilities[int(index)]

    def level_at_probability(self, p: float) -> float:
        """The smallest observed level whose exceedance prob is <= p."""
        if not 0.0 <= p <= 1.0:
            raise AnalysisError(f"probability must be in [0, 1], got {p}")
        for level, prob in zip(self.levels, self.probabilities):
            if prob <= p:
                return level
        return self.levels[-1]

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "levels": list(self.levels),
            "probabilities": list(self.probabilities),
        }


@dataclass(frozen=True)
class ExpectedAnnualLoss:
    """Weighted mean event loss annualized by the event rate."""

    mean_event_loss_usd: float
    ci_halfwidth_usd: float
    event_rate_per_year: float

    @property
    def eal_usd(self) -> float:
        return self.event_rate_per_year * self.mean_event_loss_usd

    @classmethod
    def from_samples(
        cls,
        losses: np.ndarray,
        weights: np.ndarray,
        event_rate_per_year: float,
        z: float = 1.96,
    ) -> "ExpectedAnnualLoss":
        losses = np.asarray(losses, dtype=float)
        weights = np.asarray(weights, dtype=float)
        total = float(weights.sum())
        if total <= 0:
            raise AnalysisError("expected annual loss needs a positive total weight")
        mean = float((weights * losses).sum() / total)
        var = float((weights**2 * (losses - mean) ** 2).sum() / total**2)
        return cls(
            mean_event_loss_usd=mean,
            ci_halfwidth_usd=z * math.sqrt(var),
            event_rate_per_year=event_rate_per_year,
        )

    def to_dict(self) -> dict:
        return {
            "mean_event_loss_usd": self.mean_event_loss_usd,
            "ci_halfwidth_usd": self.ci_halfwidth_usd,
            "event_rate_per_year": self.event_rate_per_year,
            "eal_usd": self.eal_usd,
        }


@dataclass(frozen=True)
class ImpactResult:
    """Per-realization impact arrays plus their weighted aggregates."""

    shed_mw: np.ndarray
    served_fraction: np.ndarray
    loss_usd: np.ndarray
    weights: np.ndarray
    loss_model: LossModel

    def exceedance(self, metric: str = "loss_usd") -> ExceedanceCurve:
        try:
            values = getattr(self, metric)
        except AttributeError:
            raise AnalysisError(
                f"unknown impact metric {metric!r}; choose from "
                f"['shed_mw', 'served_fraction', 'loss_usd']"
            ) from None
        return ExceedanceCurve.from_samples(values, self.weights, metric)

    def expected_annual_loss(self) -> ExpectedAnnualLoss:
        return ExpectedAnnualLoss.from_samples(
            self.loss_usd, self.weights, self.loss_model.event_rate_per_year
        )


def _failure_matrix(
    ensemble, fragility: FragilityModel | None
) -> np.ndarray:
    model = fragility if fragility is not None else ThresholdFragility()
    if isinstance(model, ThresholdFragility):
        return ensemble.depth_view() > model.threshold_m
    if not getattr(model, "deterministic", False):
        raise ConfigurationError(
            "impact computation needs a deterministic fragility model "
            "(stochastic failures have no single damage pattern per "
            "realization)"
        )
    depths = ensemble.depth_view()
    flat = depths.reshape(-1)
    probs = np.fromiter(
        (model.failure_probability(float(d)) for d in flat), float, len(flat)
    )
    return (probs >= 1.0).reshape(depths.shape)


def compute_impacts(
    ensemble,
    *,
    fragility: FragilityModel | None = None,
    weights: np.ndarray | None = None,
    grid: "GridModel | None" = None,
    loss_model: LossModel | None = None,
) -> ImpactResult:
    """Solve every realization's grid impact (one cascade per distinct
    damage pattern) and convert to economic loss."""
    from repro.grid.storm_impact import damage_pattern_groups

    loss_model = loss_model if loss_model is not None else LossModel()
    solver = _GridImpactSolver(grid)
    failed = _failure_matrix(ensemble, fragility)
    n = failed.shape[0]
    if weights is None:
        weights = np.ones(n)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (n,):
        raise AnalysisError(
            f"weights shape {weights.shape} does not match ensemble "
            f"size {n}"
        )
    grid_model = solver._materialize()
    patterns, inverse = damage_pattern_groups(
        failed, ensemble.asset_names, frozenset(grid_model.buses)
    )
    shed_by_pattern = np.empty(len(patterns))
    served_by_pattern = np.empty(len(patterns))
    for p, pattern in enumerate(patterns):
        impact = solver.solve(pattern)
        shed_by_pattern[p] = impact.shed_mw
        served_by_pattern[p] = impact.served_fraction
    failed_counts = failed.sum(axis=1)
    shed = shed_by_pattern[inverse]
    loss = (
        shed * loss_model.outage_hours * loss_model.value_of_lost_load_usd_per_mwh
        + failed_counts * loss_model.restoration_cost_usd_per_asset
    )
    return ImpactResult(
        shed_mw=shed,
        served_fraction=served_by_pattern[inverse],
        loss_usd=loss,
        weights=weights,
        loss_model=loss_model,
    )


# ----------------------------------------------------------------------
# Chain stages (the "tail-risk" preset)
# ----------------------------------------------------------------------
class LoadShedStage:
    """DC load-flow load shed of the surviving grid, per realization.

    Deterministic and memoized per distinct damage pattern (the
    :class:`~repro.core.chain.InterdependencyStage` trick), so an
    ensemble pays one cascade per pattern.  Publishes
    ``ctx.extras["load_shed"]`` (a :class:`GridImpact`); never alters
    the system state, so classification is untouched.
    """

    name = "load-shed"
    deterministic = True

    def __init__(self, grid: "GridModel | None" = None) -> None:
        self._solver = _GridImpactSolver(grid)

    def apply(
        self,
        state: "SystemState | None",
        ctx: "ChainContext",
        rng: np.random.Generator | None,
    ) -> "SystemState":
        if state is None:
            state = ctx.base_state()
        failed = ctx.extras.get("failed_assets")
        if failed is None:
            failed = ctx.failed_assets(rng)
            ctx.extras["failed_assets"] = failed
        ctx.extras["load_shed"] = self._solver.solve(frozenset(failed))
        return state

    # In the fused batched pass the stage is a no-op: impact numbers for
    # batch runs come from compute_impacts / StudyResult.exceedance(),
    # keeping run_batch bitwise identical to the scalar classification.
    def supports_batch(self, ctx: "BatchContext") -> bool:
        return True

    def apply_batch(
        self,
        batch: "ChainBatch | None",
        ctx: "BatchContext",
        rng: np.random.Generator | None,
    ) -> "ChainBatch":
        return batch if batch is not None else ctx.base_batch()


class EconomicLossStage:
    """Convert the load-shed impact into dollars, per realization.

    Requires a :class:`LoadShedStage` earlier in the chain; publishes
    ``ctx.extras["economic_loss"]`` (USD) without touching the state.
    """

    name = "economic-loss"
    deterministic = True

    def __init__(self, loss_model: LossModel | None = None) -> None:
        self.loss_model = loss_model if loss_model is not None else LossModel()

    def apply(
        self,
        state: "SystemState | None",
        ctx: "ChainContext",
        rng: np.random.Generator | None,
    ) -> "SystemState":
        if state is None:
            state = ctx.base_state()
        impact = ctx.extras.get("load_shed")
        if impact is None:
            raise ConfigurationError(
                "EconomicLossStage needs a LoadShedStage earlier in the "
                "chain (no load_shed in the context)"
            )
        failed = ctx.extras.get("failed_assets", frozenset())
        ctx.extras["economic_loss"] = self.loss_model.loss_usd(
            impact.shed_mw, len(failed)
        )
        return state

    def supports_batch(self, ctx: "BatchContext") -> bool:
        return True

    def apply_batch(
        self,
        batch: "ChainBatch | None",
        ctx: "BatchContext",
        rng: np.random.Generator | None,
    ) -> "ChainBatch":
        return batch if batch is not None else ctx.base_batch()
