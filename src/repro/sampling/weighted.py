"""Weighted outcome aggregation: OperationalProfile under importance weights.

:class:`WeightedProfile` is the reweighted counterpart of
:class:`~repro.core.outcomes.OperationalProfile` and duck-types its
read surface (``probability``, ``count``, ``total``,
``confidence_interval``, ``probabilities``, ``summary``), so report
formatters, ``matrix_to_dict``, and sweep comparisons consume either
interchangeably.  The estimator is the self-normalized (ratio) form

    p_hat(s) = sum_i w_i * 1{state_i = s} / sum_i w_i,

whose probabilities sum to one across states; its delta-method variance

    Var(p_hat) ~ sum_i w_i^2 * (1{state_i = s} - p_hat)^2 / (sum_i w_i)^2

drives :meth:`confidence_interval`, and the effective sample size
``(sum w)^2 / sum w^2`` quantifies how much weight dispersion cost.
Profiles :meth:`merge` exactly (all aggregates are sums), which is what
lets the adaptive controller combine rounds in O(1) per round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.states import STATE_ORDER, OperationalState
from repro.errors import AnalysisError

__all__ = ["WeightedProfile"]


@dataclass(frozen=True)
class WeightedProfile:
    """Per-state weighted tallies of an ensemble's outcomes."""

    #: state -> sum of weights of realizations classified to it.
    weighted: Mapping[OperationalState, float]
    #: state -> sum of squared weights (for the variance estimator).
    weighted_sq: Mapping[OperationalState, float]
    #: state -> raw realization count (unweighted).
    raw: Mapping[OperationalState, int]

    def __post_init__(self) -> None:
        for name in ("weighted", "weighted_sq", "raw"):
            cleaned = {
                state: value
                for state, value in getattr(self, name).items()
                if value
            }
            object.__setattr__(self, name, cleaned)
        if any(v < 0 for v in self.weighted.values()):
            raise AnalysisError("importance weights cannot be negative")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_states(
        cls, states: Iterable[OperationalState], weights: np.ndarray
    ) -> "WeightedProfile":
        codes = np.fromiter(
            (STATE_ORDER.index(state) for state in states), dtype=np.int64
        )
        return cls.from_state_codes(codes, weights)

    @classmethod
    def from_state_codes(
        cls, codes: np.ndarray, weights: np.ndarray
    ) -> "WeightedProfile":
        """From severity codes (indexing ``STATE_ORDER``) plus weights."""
        codes = np.asarray(codes)
        weights = np.asarray(weights, dtype=float)
        if codes.shape != weights.shape:
            raise AnalysisError(
                f"weights shape {weights.shape} does not match outcomes "
                f"shape {codes.shape}"
            )
        n_states = len(STATE_ORDER)
        w = np.bincount(codes, weights=weights, minlength=n_states)
        w2 = np.bincount(codes, weights=weights**2, minlength=n_states)
        n = np.bincount(codes, minlength=n_states)
        return cls(
            weighted={s: float(w[i]) for i, s in enumerate(STATE_ORDER)},
            weighted_sq={s: float(w2[i]) for i, s in enumerate(STATE_ORDER)},
            raw={s: int(n[i]) for i, s in enumerate(STATE_ORDER)},
        )

    def merge(self, other: "WeightedProfile") -> "WeightedProfile":
        """Exact combination of two disjoint batches (sums of sums)."""
        return WeightedProfile(
            weighted={
                s: self.weighted.get(s, 0.0) + other.weighted.get(s, 0.0)
                for s in STATE_ORDER
            },
            weighted_sq={
                s: self.weighted_sq.get(s, 0.0) + other.weighted_sq.get(s, 0.0)
                for s in STATE_ORDER
            },
            raw={
                s: self.raw.get(s, 0) + other.raw.get(s, 0) for s in STATE_ORDER
            },
        )

    # ------------------------------------------------------------------
    # The OperationalProfile read surface
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Raw realization count (matches the unweighted profile's total)."""
        return sum(self.raw.values())

    @property
    def sum_weights(self) -> float:
        return sum(self.weighted.values())

    @property
    def sum_squared_weights(self) -> float:
        return sum(self.weighted_sq.values())

    @property
    def effective_sample_size(self) -> float:
        """Kish ESS: how many plain-MC realizations the weights are worth."""
        w2 = self.sum_squared_weights
        return self.sum_weights**2 / w2 if w2 > 0 else 0.0

    def count(self, state: OperationalState) -> int:
        """Raw realizations classified to ``state`` (unweighted)."""
        return self.raw.get(state, 0)

    def probability(self, state: OperationalState) -> float:
        """The self-normalized weighted estimate of P(state)."""
        total_w = self.sum_weights
        if total_w == 0:
            raise AnalysisError("profile contains no realizations")
        return self.weighted.get(state, 0.0) / total_w

    def probabilities(self) -> dict[OperationalState, float]:
        return {s: self.probability(s) for s in STATE_ORDER}

    def variance(self, state: OperationalState) -> float:
        """Delta-method variance of :meth:`probability`."""
        total_w = self.sum_weights
        if total_w == 0:
            raise AnalysisError("profile contains no realizations")
        p = self.weighted.get(state, 0.0) / total_w
        w2_state = self.weighted_sq.get(state, 0.0)
        w2_rest = self.sum_squared_weights - w2_state
        return ((1.0 - p) ** 2 * w2_state + p**2 * w2_rest) / total_w**2

    def confidence_interval(
        self, state: OperationalState, z: float = 1.96
    ) -> tuple[float, float]:
        """Normal-approximation CI on the weighted probability."""
        p = self.probability(state)
        half = z * math.sqrt(self.variance(state))
        return (max(0.0, p - half), min(1.0, p + half))

    def ci_halfwidth(self, state: OperationalState, z: float = 1.96) -> float:
        return z * math.sqrt(self.variance(state))

    def relative_ci_halfwidth(
        self, state: OperationalState, z: float = 1.96
    ) -> float:
        """CI half-width relative to the estimate (inf while p_hat = 0)."""
        p = self.probability(state)
        if p <= 0.0:
            return math.inf
        return self.ci_halfwidth(state, z) / p

    def summary(self) -> dict[str, float]:
        return {state.value: self.probability(state) for state in STATE_ORDER}

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        parts = ", ".join(
            f"{s.value}={self.probability(s):.4f}" for s in STATE_ORDER
        )
        return (
            f"WeightedProfile({parts}, n={self.total}, "
            f"ess={self.effective_sample_size:.1f})"
        )
