"""Plan-aware ensemble generation: the same pipeline, a reshaped draw.

:class:`PlanSampledGenerator` wraps a hurricane
:class:`~repro.hazards.hurricane.ensemble.EnsembleGenerator` and swaps
only the track-offset stream: the plan draws every realization's offset
from the single main rng first, then each realization's remaining storm
parameters are drawn in the usual serial order with the offset pinned.
Everything downstream is reused verbatim -- the fault-tolerant
:class:`~repro.runtime.controller.RunController` (sharded checkpoints,
worker retry, bit-identical parallelism), the on-disk ensemble cache,
and the sweep engine's shared-memory transport -- because the wrapper
satisfies the exact generator contract those layers consume
(``catalog``, ``scenario``, ``sample_all_parameters``, ``realize``,
``cache_key``, ``generate``).

The wrapper's cache key folds the plan spec into the inner generator's
content hash, so plan-sampled ensembles never collide with plain ones
in caches or checkpoint directories.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.hazards.hurricane.ensemble import EnsembleGenerator, StormParameters
from repro.sampling.plans import SamplingPlan, is_plain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hazards.hurricane.ensemble import HurricaneEnsemble, HurricaneRealization


@dataclass
class PlanSampledGenerator:
    """An :class:`EnsembleGenerator` drawing offsets under a sampling plan."""

    inner: EnsembleGenerator
    plan: SamplingPlan

    deterministic = True

    def __post_init__(self) -> None:
        if not isinstance(self.inner, EnsembleGenerator):
            raise ConfigurationError(
                "sampling plans reshape hurricane track parameters; the "
                f"generator must be an EnsembleGenerator, not "
                f"{type(self.inner).__name__}"
            )

    # -- the generator contract the runtime/sweep layers consume --------
    @property
    def region(self):
        return self.inner.region

    @property
    def catalog(self):
        return self.inner.catalog

    @property
    def scenario(self):
        return self.inner.scenario

    @property
    def mesh_size(self) -> int:
        return self.inner.mesh_size

    @property
    def offset_sd_km(self) -> float:
        return float(self.inner.scenario.track_offset_sd_km)

    def sample_all_parameters(self, count: int, seed: int) -> list[StormParameters]:
        """The serial parameter pass with plan-shaped offsets.

        One rng, consumed serially: first the plan's offset stream for
        all ``count`` realizations, then each realization's remaining
        parameters in index order.  Deterministic for a given (plan,
        seed, count), independent of worker scheduling -- exactly the
        property the checkpointed resume path relies on.
        """
        rng = np.random.default_rng(seed)
        offsets = self.plan.sample_offsets(count, rng, self.offset_sd_km)
        return [
            self.inner.sample_parameters(rng, offset_km=float(offsets[i]))
            for i in range(count)
        ]

    def realize(
        self, index: int, params: StormParameters, rng: np.random.Generator
    ) -> "HurricaneRealization":
        return self.inner.realize(index, params, rng)

    def cache_key(self, count: int, seed: int) -> str:
        """The inner content hash salted with the plan spec."""
        inner_key = self.inner.cache_key(count, seed)
        spec = json.dumps(self.plan.spec(), sort_keys=True)
        return "plan" + hashlib.sha256(
            f"{inner_key}:{spec}".encode()
        ).hexdigest()[:28]

    def generate(self, *args, **kwargs) -> "HurricaneEnsemble":
        """Reuse the inner class's generate flow (cache -> checkpointed
        controller -> cache store) against this wrapper's parameter pass
        and cache key."""
        return EnsembleGenerator.generate(self, *args, **kwargs)

    def weights(self, ensemble) -> np.ndarray:
        """Per-realization weights for an ensemble this wrapper produced."""
        return self.plan.weights_for(ensemble, self.offset_sd_km)


def maybe_plan_sampled(
    generator: EnsembleGenerator, plan: SamplingPlan | None
) -> "EnsembleGenerator | PlanSampledGenerator":
    """Wrap ``generator`` under ``plan`` -- unless the plan is plain, in
    which case the generator is returned untouched so the legacy path
    stays bitwise identical."""
    if is_plain(plan):
        return generator
    assert plan is not None
    return PlanSampledGenerator(generator, plan)
