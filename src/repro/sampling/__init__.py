"""Tail-risk sampling: variance-reduction plans, weights, and impacts.

The package behind ``StudyConfig(sampling=...)``:

* :mod:`~repro.sampling.plans` -- the frozen, registry-backed
  :class:`SamplingPlan` family (``plain``, ``stratified``,
  ``importance``, ``adaptive``) and its resolution helpers;
* :mod:`~repro.sampling.generation` -- :class:`PlanSampledGenerator`,
  which reshapes only the track-offset draw while reusing the
  checkpointed, cache-aware generation pipeline verbatim;
* :mod:`~repro.sampling.weighted` -- :class:`WeightedProfile`, the
  self-normalized weighted estimator with exact merges;
* :mod:`~repro.sampling.impact` -- the DC load-flow
  :class:`LoadShedStage`, :class:`EconomicLossStage`, and the
  :class:`ExceedanceCurve` / :class:`ExpectedAnnualLoss` aggregates;
* :mod:`~repro.sampling.adaptive` -- :func:`run_adaptive_study`, the
  round-based controller that stops at a target CI half-width.

Importing this package also registers the ``"tail-risk"`` threat chain:
the paper pipeline with the grid impact stages spliced in between
hazard damage and the cyber attack, so per-realization load-shed and
economic-loss extras ride along with the usual state classification.

See ``docs/tail_risk.md`` for the estimator math and usage guidance.
"""

from __future__ import annotations

from repro.core.chain import (
    ClassificationStage,
    CyberAttackStage,
    HazardImpactStage,
    ThreatChain,
    register_chain,
)
from repro.sampling.adaptive import (
    AdaptiveStudyResult,
    CancelToken,
    RoundSummary,
    run_adaptive_study,
)
from repro.sampling.generation import PlanSampledGenerator, maybe_plan_sampled
from repro.sampling.impact import (
    EconomicLossStage,
    ExceedanceCurve,
    ExpectedAnnualLoss,
    GridImpact,
    ImpactResult,
    LoadShedStage,
    LossModel,
    compute_impacts,
)
from repro.sampling.plans import (
    AdaptivePlan,
    ImportancePlan,
    PlainPlan,
    SamplingPlan,
    StratifiedPlan,
    available_sampling_plans,
    is_plain,
    register_sampling_plan,
    resolve_sampling,
    sampling_from_options,
)
from repro.sampling.weighted import WeightedProfile

__all__ = [
    "AdaptivePlan",
    "AdaptiveStudyResult",
    "CancelToken",
    "CHAIN_TAIL_RISK",
    "EconomicLossStage",
    "ExceedanceCurve",
    "ExpectedAnnualLoss",
    "GridImpact",
    "ImpactResult",
    "ImportancePlan",
    "LoadShedStage",
    "LossModel",
    "PlainPlan",
    "PlanSampledGenerator",
    "RoundSummary",
    "SamplingPlan",
    "StratifiedPlan",
    "WeightedProfile",
    "available_sampling_plans",
    "compute_impacts",
    "is_plain",
    "maybe_plan_sampled",
    "register_sampling_plan",
    "resolve_sampling",
    "run_adaptive_study",
    "sampling_from_options",
]

#: The paper pipeline with grid impact stages spliced in: realizations
#: pick up ``load_shed`` / ``economic_loss`` extras (consumed by
#: :func:`compute_impacts` callers) while classification is unchanged.
CHAIN_TAIL_RISK = register_chain(
    ThreatChain(
        name="tail-risk",
        stages=(
            HazardImpactStage(),
            LoadShedStage(),
            EconomicLossStage(),
            CyberAttackStage(),
            ClassificationStage(),
        ),
        description=(
            "Paper pipeline plus DC load-flow shed and economic loss "
            "stages between hazard damage and the cyber attack."
        ),
    ),
    replace=True,
)
