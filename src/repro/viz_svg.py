"""SVG renderings of the paper's figures (no plotting dependencies).

Generates self-contained SVG stacked-bar charts matching the paper's
figure style: one horizontal bar per configuration, colored by
operational state.  Written by hand-assembling SVG elements so the
library stays dependency-free offline.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.core.outcomes import OperationalProfile
from repro.core.states import STATE_ORDER, OperationalState

_STATE_COLORS: dict[OperationalState, str] = {
    OperationalState.GREEN: "#2e8b57",
    OperationalState.ORANGE: "#e8912d",
    OperationalState.RED: "#c0392b",
    OperationalState.GRAY: "#7f8c8d",
}

_BAR_HEIGHT = 26
_BAR_GAP = 12
_LABEL_WIDTH = 80
_CHART_WIDTH = 480
_MARGIN = 16
_LEGEND_HEIGHT = 34
_TITLE_HEIGHT = 30


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_profile_chart_svg(
    profiles: Mapping[str, OperationalProfile],
    title: str = "",
) -> str:
    """An SVG document: one stacked probability bar per configuration."""
    rows = list(profiles.items())
    height = (
        _TITLE_HEIGHT
        + len(rows) * (_BAR_HEIGHT + _BAR_GAP)
        + _LEGEND_HEIGHT
        + _MARGIN
    )
    width = _LABEL_WIDTH + _CHART_WIDTH + 2 * _MARGIN
    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="Helvetica, Arial, sans-serif">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_MARGIN}" y="{_MARGIN + 6}" font-size="14" '
            f'font-weight="bold">{_escape(title)}</text>'
        )
    y = _TITLE_HEIGHT
    for name, profile in rows:
        parts.append(
            f'<text x="{_MARGIN + _LABEL_WIDTH - 8}" y="{y + _BAR_HEIGHT * 0.7:.1f}" '
            f'font-size="12" text-anchor="end">{_escape(name)}</text>'
        )
        x = float(_MARGIN + _LABEL_WIDTH)
        for state in STATE_ORDER:
            probability = profile.probability(state)
            if probability <= 0.0:
                continue
            segment = probability * _CHART_WIDTH
            parts.append(
                f'<rect x="{x:.2f}" y="{y}" width="{segment:.2f}" '
                f'height="{_BAR_HEIGHT}" fill="{_STATE_COLORS[state]}">'
                f"<title>{_escape(name)}: {state.value} "
                f"{probability:.1%}</title></rect>"
            )
            if probability >= 0.08:
                parts.append(
                    f'<text x="{x + segment / 2:.2f}" '
                    f'y="{y + _BAR_HEIGHT * 0.7:.1f}" font-size="11" '
                    f'fill="white" text-anchor="middle">'
                    f"{probability:.1%}</text>"
                )
            x += segment
        y += _BAR_HEIGHT + _BAR_GAP

    legend_x = float(_MARGIN + _LABEL_WIDTH)
    legend_y = y + 6
    for state in STATE_ORDER:
        parts.append(
            f'<rect x="{legend_x:.1f}" y="{legend_y}" width="14" height="14" '
            f'fill="{_STATE_COLORS[state]}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 18:.1f}" y="{legend_y + 11}" '
            f'font-size="11">{state.value}</text>'
        )
        legend_x += 95
    parts.append("</svg>")
    return "\n".join(parts)


def save_profile_chart_svg(
    profiles: Mapping[str, OperationalProfile],
    path: str | Path,
    title: str = "",
) -> Path:
    """Render and write the chart; returns the written path."""
    path = Path(path)
    path.write_text(render_profile_chart_svg(profiles, title))
    return path
