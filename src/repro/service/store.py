"""The service's persistent result store, keyed by study identity.

One ``result-<study_config_hash>.json`` per finished study, written
atomically and verified on read: a matching resubmission is a cache hit
served straight from disk -- the study never recomputes -- and a
corrupt file is quarantined (``.corrupt``) and treated as a miss, never
returned as a wrong answer.  The payload embeds the same matrix
serialization (:func:`repro.io.results_io.matrix_to_dict`) that
``run_study`` results round-trip through, so a result fetched over HTTP
is bit-comparable to a local run.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.io.atomic import atomic_write_text, quarantine_file

RESULT_SCHEMA_VERSION = 1
RESULT_KIND = "repro.service_result"


class ResultStore:
    """Content-addressed study results under ``dir`` (atomic, verified)."""

    def __init__(self, directory: str | Path) -> None:
        self.dir = Path(directory)

    def path(self, study_hash: str) -> Path:
        return self.dir / f"result-{study_hash}.json"

    def put(self, study_hash: str, payload: dict) -> Path:
        """Persist one study's result document (idempotent by identity)."""
        document = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "kind": RESULT_KIND,
            "study_hash": study_hash,
            **payload,
        }
        self.dir.mkdir(parents=True, exist_ok=True)
        target = self.path(study_hash)
        atomic_write_text(
            target, json.dumps(document, sort_keys=True, indent=2) + "\n"
        )
        return target

    def get(self, study_hash: str) -> dict | None:
        """The stored result document, or ``None`` (missing or quarantined)."""
        target = self.path(study_hash)
        if not target.exists():
            return None
        try:
            document = json.loads(target.read_text())
            ok = (
                document["kind"] == RESULT_KIND
                and document["schema_version"] == RESULT_SCHEMA_VERSION
                and document["study_hash"] == study_hash
            )
        except (json.JSONDecodeError, KeyError, TypeError, OSError) as exc:
            quarantine_file(target, f"unreadable service result: {exc}")
            return None
        if not ok:
            quarantine_file(target, "service result identity mismatch")
            return None
        return document

    def __contains__(self, study_hash: str) -> bool:
        return self.get(study_hash) is not None

    def study_hashes(self) -> list[str]:
        """Hashes with a result file present (unverified; cheap listing)."""
        if not self.dir.exists():
            return []
        prefix, suffix = "result-", ".json"
        return sorted(
            name[len(prefix) : -len(suffix)]
            for name in (p.name for p in self.dir.glob("result-*.json"))
        )
