"""Job lifecycle for the study service: queue, records, and the journal.

Three pieces, each independently testable:

* :class:`JobRecord` -- one submitted study's mutable lifecycle state
  (``queued -> running -> done | failed | cancelled``), with a
  JSON-friendly
  :meth:`JobRecord.summary` for status endpoints and journal events.
* :class:`JobQueue` -- a bounded FIFO with *admission control*: when
  the queue is full, :meth:`JobQueue.submit` raises
  :class:`~repro.errors.AdmissionError` instead of blocking or silently
  dropping, which the HTTP layer converts to ``429 Too Many Requests``
  with a ``Retry-After`` hint.  Backpressure is always explicit.
* :class:`JobJournal` -- a crash-safe append-only record of every job
  transition.  Appends are fsynced lines
  (:func:`repro.io.atomic.append_journal_line`); replay tolerates one
  torn line at the tail (the instant the previous process died) and
  reconstructs the last known state of every job, so a restarted
  service re-enqueues interrupted work instead of losing it.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Iterator

from repro.errors import AdmissionError, ServiceError
from repro.io.atomic import append_journal_line, atomic_write_text

JOURNAL_SCHEMA_VERSION = 1


class JobState(str, Enum):
    """Where a submitted study is in its lifecycle."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class JobRecord:
    """One submitted study: identity, spec, and lifecycle state."""

    job_id: str
    study_hash: str
    #: The submitted JSON spec (whitelisted fields only), kept verbatim
    #: so journal replay can rebuild the exact StudyConfig.
    spec: dict
    state: JobState = JobState.QUEUED
    #: Failure record (error_type / message / attempts) when FAILED.
    error: dict | None = None
    #: How many times this job has been (re-)enqueued, counting journal
    #: recovery; purely informational.
    enqueues: int = 1
    #: The observer of the in-flight run; status endpoints read its
    #: metric snapshot for streaming progress.  Never serialized.
    obs: object | None = field(default=None, repr=False, compare=False)
    #: The cooperative :class:`~repro.sampling.CancelToken` of the
    #: in-flight run (adaptive studies stop at their next round
    #: boundary when it trips).  Never serialized.
    cancel: object | None = field(default=None, repr=False, compare=False)

    def summary(self) -> dict:
        """The JSON status document (also the journal event payload)."""
        payload = {
            "job_id": self.job_id,
            "study_hash": self.study_hash,
            "state": self.state.value,
            "enqueues": self.enqueues,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobQueue:
    """A bounded FIFO of :class:`JobRecord`\\ s with explicit admission.

    ``capacity`` bounds *queued* (not running) jobs.  ``submit`` never
    blocks: a full queue raises :class:`AdmissionError` immediately so
    the caller can shed load with an honest 429.  ``take`` blocks (with
    an optional timeout) until a job or :meth:`close` arrives -- the
    worker's idle loop.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServiceError("job queue capacity must be at least 1")
        self.capacity = capacity
        self._items: deque[JobRecord] = deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def submit(self, record: JobRecord) -> None:
        with self._ready:
            if self._closed:
                raise ServiceError("job queue is closed (service draining)")
            if len(self._items) >= self.capacity:
                raise AdmissionError(
                    f"job queue full ({self.capacity} queued); retry later"
                )
            self._items.append(record)
            self._ready.notify()

    def remove(self, job_id: str) -> bool:
        """Withdraw a queued job (cancellation); False if not queued.

        Atomic with respect to :meth:`take`: a job is either removed
        here (and never runs) or already claimed by the worker (and the
        caller must cancel it cooperatively instead).
        """
        with self._ready:
            for record in self._items:
                if record.job_id == job_id:
                    self._items.remove(record)
                    return True
            return False

    def take(self, timeout: float | None = None) -> JobRecord | None:
        """The next job, or ``None`` on timeout / closed-and-empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._ready:
            while not self._items:
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._ready.wait(remaining)
            return self._items.popleft()

    def close(self) -> None:
        """Refuse new work and wake blocked takers (drain begins)."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed


class JobJournal:
    """Append-only jsonl journal of job transitions, replayable on boot.

    Every record is one fsynced JSON line with the fields of
    :meth:`JobRecord.summary` plus ``event`` (``submitted`` / ``started``
    / ``done`` / ``failed`` / ``requeued`` / ``cancel_requested`` /
    ``cancelled``) and, for ``submitted``, the
    job ``spec``.  :meth:`replay` folds the lines into the final state
    of each job; a torn final line (mid-append crash) is skipped, and a
    malformed line *before* the tail stops replay with a
    :class:`ServiceError` -- that is corruption, not a crash artifact.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, event: str, record: JobRecord) -> None:
        payload = {
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "event": event,
            **record.summary(),
        }
        if event == "submitted":
            payload["spec"] = record.spec
        append_journal_line(self.path, json.dumps(payload, sort_keys=True))

    def _lines(self) -> Iterator[tuple[int, str, bool]]:
        if not self.path.exists():
            return
        raw = self.path.read_text()
        lines = raw.split("\n")
        # A complete journal ends with "\n", so the final split element
        # is empty; anything else there is the torn tail of a crash.
        torn = lines[-1] != ""
        body = lines[:-1]
        for i, line in enumerate(body):
            yield i, line, False
        if torn:
            yield len(body), lines[-1], True

    def replay(self) -> dict[str, JobRecord]:
        """Fold the journal into each job's last recorded state."""
        records: dict[str, JobRecord] = {}
        for lineno, line, is_tail in self._lines():
            try:
                payload = json.loads(line)
                event = payload["event"]
                job_id = payload["job_id"]
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if is_tail:
                    # The torn write of the crash instant: the job it
                    # described is re-derived from the previous lines.
                    break
                raise ServiceError(
                    f"corrupt service journal {self.path} at line "
                    f"{lineno + 1}: {exc}"
                ) from exc
            if event == "submitted":
                records[job_id] = JobRecord(
                    job_id=job_id,
                    study_hash=payload.get("study_hash", ""),
                    spec=payload.get("spec", {}),
                    state=JobState.QUEUED,
                    enqueues=int(payload.get("enqueues", 1)),
                )
                continue
            record = records.get(job_id)
            if record is None:
                # A transition for a job whose submission predates a
                # compaction error; ignore rather than invent a spec.
                continue
            if event == "started":
                record.state = JobState.RUNNING
            elif event == "requeued":
                record.state = JobState.QUEUED
                record.enqueues = int(payload.get("enqueues", record.enqueues))
            elif event == "done":
                record.state = JobState.DONE
            elif event == "failed":
                record.state = JobState.FAILED
                record.error = payload.get("error")
            elif event == "cancelled":
                record.state = JobState.CANCELLED
            # "cancel_requested" is advisory (the request, not the
            # outcome); replay state comes from the terminal event.
        return records

    def compact(self, records: dict[str, JobRecord]) -> None:
        """Atomically rewrite the journal to one line per live job.

        Called on clean shutdown: terminal jobs collapse to their final
        event and interrupted jobs to a fresh ``submitted``, so the next
        boot replays a minimal journal instead of the full history.
        """
        lines = []
        for job_id in sorted(records):
            record = records[job_id]
            payload = {
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "event": "submitted",
                **record.summary(),
                "spec": record.spec,
            }
            lines.append(json.dumps(payload, sort_keys=True))
            if record.state.terminal:
                event = {
                    JobState.DONE: "done",
                    JobState.CANCELLED: "cancelled",
                }.get(record.state, "failed")
                final = {
                    "schema_version": JOURNAL_SCHEMA_VERSION,
                    "event": event,
                    **record.summary(),
                }
                lines.append(json.dumps(final, sort_keys=True))
        text = "".join(line + "\n" for line in lines)
        atomic_write_text(self.path, text)
