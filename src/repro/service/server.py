"""The always-on study service: HTTP front, supervised worker, drain.

``repro serve`` turns the library into a long-lived analysis server a
control-room (or CI) can submit studies to, built entirely on the
stdlib (:mod:`http.server`) -- zero new dependencies:

* ``POST /v1/studies``          -- submit a JSON study spec.  Returns
  ``202`` with a job id, ``200`` when the result store already holds
  this study (cache hit: identical studies never recompute), ``429``
  + ``Retry-After`` when the bounded queue is full (admission control,
  never a silent drop), ``503`` while draining, ``400`` on a bad spec.
* ``GET /v1/jobs/<id>``         -- job status, including a live metric
  snapshot of the in-flight run (streamed progress; adaptive-sampling
  jobs expose per-round ``sampling.p_hat`` / ``sampling.ci_rel_halfwidth``).
* ``DELETE /v1/jobs/<id>``      -- cancel a job: a queued job is
  withdrawn immediately, a running adaptive-sampling job stops at its
  next round boundary (partial merged result discarded, job marked
  ``cancelled``), a finished job answers ``409``.
* ``GET /v1/jobs/<id>/result``  -- the finished result document.
* ``GET /v1/studies/<hash>/result`` -- results by study identity.
* ``GET /v1/health``            -- queue depth, state counts, uptime.
* ``GET /v1/metrics``           -- the service observer's snapshot.

Durability: every job transition lands in an append-only fsynced
journal before it takes effect, results are stored atomically keyed by
``study_config_hash``, and on boot the journal is replayed -- queued
and interrupted jobs are re-enqueued (unless their result already
exists) so a ``kill -9`` loses no accepted work.  ``SIGTERM`` drains
gracefully: admission closes (503), the in-flight study finishes, the
journal is compacted, then the process exits.

Study execution rides the same supervision as sweeps
(:class:`~repro.runtime.supervisor.StudySupervisor`, ``strict=False``):
crashes and hangs retry with backoff, and a terminally-failed study
becomes a recorded failure on the job -- never a dead server.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.api import StudyConfig, run_study
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ReproError,
    ServiceError,
)
from repro.hazards.fragility import ThresholdFragility
from repro.io.results_io import matrix_to_dict
from repro.obs.observer import Observability, activate
from repro.runtime.controller import RetryPolicy
from repro.runtime.supervisor import (
    StudyFailure,
    StudySupervisor,
    SupervisedTask,
)
from repro.service.jobs import JobJournal, JobQueue, JobRecord, JobState
from repro.service.store import ResultStore
from repro.sweep.engine import sweep_study_hash
from repro.sweep.result import cell_summary

SERVICE_API_VERSION = 1

#: JSON spec fields a submission may carry, mapped onto StudyConfig.
#: Anything else is rejected with 400 -- objects (custom generators,
#: prebuilt ensembles, fragility instances) cannot cross HTTP.
_SPEC_FIELDS = frozenset(
    {
        "configurations",
        "placement",
        "scenarios",
        "n_realizations",
        "seed",
        "region",
        "hazard",
        "analysis_seed",
        "chain",
        "batch",
        "jobs",
        "cache_dir",
        "fragility_threshold",
        "sampling",
        "target_ci",
    }
)


def study_config_from_spec(spec: dict) -> StudyConfig:
    """Build a :class:`StudyConfig` from a submitted JSON spec.

    Only registry-name-addressable fields are accepted (architectures,
    scenarios, placement, chain, region, and hazard by name; fragility
    via ``fragility_threshold`` in meters); unknown fields raise
    :class:`ServiceError` so a typo'd submission fails loudly at the
    front door instead of silently running the default study.
    """
    if not isinstance(spec, dict):
        raise ServiceError("study spec must be a JSON object")
    unknown = sorted(set(spec) - _SPEC_FIELDS)
    if unknown:
        raise ServiceError(
            f"unknown study spec field(s) {unknown}; accepted: "
            f"{sorted(_SPEC_FIELDS)}"
        )
    kwargs: dict = {}
    for name in (
        "configurations",
        "placement",
        "scenarios",
        "n_realizations",
        "seed",
        "region",
        "hazard",
        "analysis_seed",
        "chain",
        "batch",
        "jobs",
        "cache_dir",
    ):
        if name in spec:
            kwargs[name] = spec[name]
    if "fragility_threshold" in spec:
        kwargs["fragility"] = ThresholdFragility(
            threshold_m=float(spec["fragility_threshold"])
        )
    if "sampling" in spec or "target_ci" in spec:
        # "sampling" is a plan name or spec dict; "target_ci" promotes
        # the plan to an adaptive run targeting that relative CI.
        from repro.sampling.plans import sampling_from_options

        try:
            kwargs["sampling"] = sampling_from_options(
                spec.get("sampling"), spec.get("target_ci")
            )
        except ReproError as exc:
            raise ServiceError(f"bad sampling spec: {exc}") from exc
    try:
        return StudyConfig(**kwargs)
    except TypeError as exc:
        raise ServiceError(f"malformed study spec: {exc}") from exc


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the study service needs to run."""

    service_dir: str | Path
    host: str = "127.0.0.1"
    port: int = 8765
    #: Bound on *queued* jobs; the admission-control knob.
    queue_capacity: int = 8
    #: Seconds clients are told to wait after a 429.
    retry_after_s: int = 5
    #: Retry policy for supervised study execution.
    retry: RetryPolicy | None = None
    #: Per-study wall-clock deadline (pooled paths only); None = none.
    study_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ServiceError("queue_capacity must be at least 1")
        if self.retry_after_s < 1:
            raise ServiceError("retry_after_s must be at least 1")


class StudyService:
    """Queue, journal, store, and worker -- everything but the HTTP front.

    One worker thread executes studies strictly one at a time: the
    observability layer's active observer is process-global, so a
    single runner keeps each job's telemetry (and its streamed
    progress) attributable to that job.  Results would be bit-identical
    regardless; throughput scales via each study's own ``jobs`` field
    (ensemble-generation workers), not via concurrent studies.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.dir = Path(config.service_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.store = ResultStore(self.dir / "results")
        self.journal = JobJournal(self.dir / "journal.jsonl")
        self.queue = JobQueue(config.queue_capacity)
        self.jobs: dict[str, JobRecord] = {}
        self.obs = Observability()
        self._lock = threading.Lock()
        self._seq = 0
        self._started = time.monotonic()
        self._draining = False
        self._worker: threading.Thread | None = None
        self._recover()

    # ------------------------------------------------------------------
    # Boot-time journal recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal; re-enqueue interrupted and queued jobs."""
        records = self.journal.replay()
        for job_id in sorted(records):
            record = records[job_id]
            self.jobs[job_id] = record
            self._seq = max(self._seq, _job_seq(job_id))
            if record.state.terminal:
                continue
            if record.study_hash in self.store:
                # The study finished but the 'done' journal line was
                # lost to the crash: the stored result is the truth.
                record.state = JobState.DONE
                self.journal.append("done", record)
                self.obs.inc("service.recovered_done")
                continue
            record.state = JobState.QUEUED
            record.enqueues += 1
            self.journal.append("requeued", record)
            self.queue.submit(record)
            self.obs.inc("service.recovered_requeued")

    # ------------------------------------------------------------------
    # Submission (admission control + cache + dedup)
    # ------------------------------------------------------------------
    def submit(self, spec: dict) -> tuple[JobRecord, bool]:
        """Admit one study; returns ``(job, cached)``.

        Raises :class:`ServiceError` on a bad spec (HTTP 400),
        :class:`AdmissionError` when the queue is full (429), and
        :class:`ServiceError` when draining (503, via ``draining``).
        """
        if self._draining:
            raise ServiceError("service is draining; not accepting studies")
        config = study_config_from_spec(spec)
        study_hash = sweep_study_hash(config)
        with self._lock:
            if study_hash in self.store:
                # Cache hit: a synthetic done-job pointing at the result.
                self.obs.inc("service.cache_hits")
                job = self._job_for_cached(study_hash, spec)
                return job, True
            for job in self.jobs.values():
                if job.study_hash == study_hash and not job.state.terminal:
                    # Identical study already in flight: join it.
                    self.obs.inc("service.dedup_joins")
                    return job, False
            self._seq += 1
            job = JobRecord(
                job_id=f"job-{self._seq:06d}-{study_hash[:8]}",
                study_hash=study_hash,
                spec=dict(spec),
            )
            # Journal before queue: an accepted-but-unjournaled job
            # could be lost to a crash, an admission-refused journal
            # line is merely re-enqueued work on the next boot.
            self.journal.append("submitted", job)
            try:
                self.queue.submit(job)
            except AdmissionError:
                self.journal.append(
                    "failed",
                    _with_error(
                        job,
                        {
                            "error_type": "AdmissionError",
                            "message": "queue full at submission",
                            "attempts": 0,
                        },
                    ),
                )
                self.obs.inc("service.admission_rejects")
                raise
            self.jobs[job.job_id] = job
            self.obs.inc("service.jobs_accepted")
            return job, False

    def _job_for_cached(self, study_hash: str, spec: dict) -> JobRecord:
        for job in self.jobs.values():
            if job.study_hash == study_hash and job.state is JobState.DONE:
                return job
        self._seq += 1
        job = JobRecord(
            job_id=f"job-{self._seq:06d}-{study_hash[:8]}",
            study_hash=study_hash,
            spec=dict(spec),
            state=JobState.DONE,
        )
        self.journal.append("submitted", job)
        self.journal.append("done", job)
        self.jobs[job.job_id] = job
        return job

    # ------------------------------------------------------------------
    # The worker
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._worker is not None:
            raise ServiceError("service worker already started")
        self._worker = threading.Thread(
            target=self._run_worker, name="study-worker", daemon=True
        )
        self._worker.start()

    def _run_worker(self) -> None:
        while True:
            job = self.queue.take(timeout=0.2)
            if job is None:
                if self.queue.closed:
                    return
                continue
            self._execute(job)

    def _execute(self, job: JobRecord) -> None:
        from repro.sampling.adaptive import CancelToken

        with self._lock:
            job.state = JobState.RUNNING
            job.obs = Observability()
            if job.cancel is None:
                job.cancel = CancelToken()
            token = job.cancel
        self.journal.append("started", job)
        supervisor = StudySupervisor(
            policy=self.config.retry,
            strict=False,
            deadline_s=self.config.study_deadline_s,
        )
        config = study_config_from_spec(job.spec)
        task = SupervisedTask(
            position=0,
            label=_spec_label(config),
            study_hash=job.study_hash,
            payload=config,
        )
        with activate(job.obs):
            ((_, outcome),) = list(
                supervisor.run_serial(
                    [task], lambda cfg: self._run_one(cfg, token)
                )
            )
        if isinstance(outcome, StudyFailure):
            with self._lock:
                job.state = JobState.FAILED
                job.error = outcome.summary()
            self.journal.append("failed", job)
            self.obs.inc("service.jobs_failed")
            return
        if isinstance(outcome, dict) and outcome.pop("_cancelled", False):
            # An adaptive run stopped at a round boundary on request:
            # the partial merged result is discarded (never stored under
            # the study hash -- a resubmission must compute the full
            # answer), and the job lands terminal-cancelled.
            with self._lock:
                job.state = JobState.CANCELLED
            self.journal.append("cancelled", job)
            self.obs.inc("service.jobs_cancelled")
            return
        self.store.put(job.study_hash, outcome)
        with self._lock:
            job.state = JobState.DONE
        self.journal.append("done", job)
        self.obs.inc("service.jobs_done")

    def _run_one(self, config: StudyConfig, token=None) -> dict:
        """Execute one study and shape its result document.

        Adaptive-sampling studies run through the round controller with
        the job's cancel token and stream per-round progress into the
        job's observer; a cancelled run returns a ``_cancelled`` marker
        (not an exception -- the supervisor would retry one).
        """
        plan = config.resolve_sampling()
        if plan is not None and plan.name == "adaptive":
            from repro.obs.observer import current as current_observer
            from repro.sampling.adaptive import run_adaptive_study

            try:
                adaptive = run_adaptive_study(
                    config, obs=current_observer(), cancel=token
                )
            except ConfigurationError:
                # Cancelled before the first round completed: there is
                # no partial estimate to document, but the job is
                # cancelled, not failed.
                if token is not None and token.cancelled:
                    return {"_cancelled": True}
                raise
            document = {
                "summary": cell_summary(config),
                "matrix": matrix_to_dict(adaptive.result.matrix),
                "manifest": adaptive.result.manifest,
            }
            if adaptive.cancelled:
                document["_cancelled"] = True
            return document
        result = run_study(config)
        return {
            "summary": cell_summary(config),
            "matrix": matrix_to_dict(result.matrix),
            "manifest": result.manifest,
        }

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> dict:
        """Cancel one job; returns its (possibly updated) summary.

        A queued job is withdrawn from the queue and lands terminal
        ``cancelled`` immediately.  A running job gets its cooperative
        token tripped: an adaptive-sampling study stops at its next
        round boundary (and then lands ``cancelled``); other studies
        run to completion (the token has no safe preemption point), so
        the response carries ``cancel_requested`` rather than a state
        change.  A terminal job raises :class:`ServiceError` (HTTP 409).
        """
        from repro.sampling.adaptive import CancelToken

        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job {job_id!r}")
            if job.state.terminal:
                raise ServiceError(
                    f"job {job_id!r} is already {job.state.value}"
                )
            if job.state is JobState.QUEUED and self.queue.remove(job_id):
                job.state = JobState.CANCELLED
                self.journal.append("cancelled", job)
                self.obs.inc("service.jobs_cancelled")
                return job.summary()
            # Running -- or claimed by the worker between our checks.
            # Both assignments of job.cancel happen under self._lock, so
            # the token we trip here is the one the worker uses.
            if job.cancel is None:
                job.cancel = CancelToken()
            job.cancel.cancel()  # type: ignore[attr-defined]
            self.journal.append("cancel_requested", job)
            self.obs.inc("service.cancel_requests")
            payload = job.summary()
            payload["cancel_requested"] = True
            return payload

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------
    def status(self, job_id: str) -> dict:
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job {job_id!r}")
            payload = job.summary()
            if job.state is JobState.RUNNING and isinstance(
                job.obs, Observability
            ):
                payload["progress"] = job.obs.metrics.snapshot()
        return payload

    def result_for_job(self, job_id: str) -> dict:
        status = self.status(job_id)
        if status["state"] != JobState.DONE.value:
            raise ServiceError(
                f"job {job_id!r} is {status['state']}, not done"
            )
        document = self.store.get(status["study_hash"])
        if document is None:
            raise ServiceError(
                f"result for job {job_id!r} missing from the store"
            )
        return document

    def result_for_study(self, study_hash: str) -> dict:
        document = self.store.get(study_hash)
        if document is None:
            raise ServiceError(f"no stored result for study {study_hash!r}")
        return document

    def health(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "api_version": SERVICE_API_VERSION,
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "queued": len(self.queue),
            "queue_capacity": self.config.queue_capacity,
            "jobs": states,
            "results_stored": len(self.store.study_hashes()),
        }

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, finish in-flight work, compact the journal.

        Returns ``True`` when the worker finished cleanly within
        ``timeout`` (``None`` = wait forever).  Safe to call more than
        once.
        """
        self._draining = True
        self.queue.close()
        clean = True
        if self._worker is not None:
            self._worker.join(timeout)
            clean = not self._worker.is_alive()
        if clean:
            with self._lock:
                self.journal.compact(self.jobs)
        return clean


def _job_seq(job_id: str) -> int:
    """The numeric sequence embedded in ``job-<seq>-<hash8>`` ids."""
    try:
        return int(job_id.split("-")[1])
    except (IndexError, ValueError):
        return 0


def _with_error(job: JobRecord, error: dict) -> JobRecord:
    job.state = JobState.FAILED
    job.error = error
    return job


def _spec_label(config: StudyConfig) -> str:
    summary = cell_summary(config)
    return (
        f"{'+'.join(summary['configurations'])} | "
        f"{'+'.join(summary['scenarios'])} | {summary['placement']}"
    )


# ----------------------------------------------------------------------
# The HTTP front
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Thin JSON-over-HTTP routing onto a :class:`StudyService`."""

    service: StudyService  # installed by make_server
    protocol_version = "HTTP/1.1"

    # Silence the default stderr access log; the service observer
    # carries the signal instead.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _send_json(
        self, code: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        if self.path.rstrip("/") != "/v1/studies":
            self._send_json(404, {"error": f"no such endpoint {self.path}"})
            return
        try:
            spec = self._read_body()
            job, cached = self.service.submit(spec)
        except AdmissionError as exc:
            self._send_json(
                429,
                {"error": str(exc)},
                {"Retry-After": str(self.service.config.retry_after_s)},
            )
        except ServiceError as exc:
            code = 503 if self.service.draining else 400
            self._send_json(code, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
        else:
            payload = job.summary()
            payload["cached"] = cached
            self._send_json(200 if cached else 202, payload)

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        parts = [p for p in self.path.split("/") if p]
        try:
            if parts == ["v1", "health"]:
                self._send_json(200, self.service.health())
            elif parts == ["v1", "metrics"]:
                self._send_json(200, self.service.obs.metrics.snapshot())
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._send_json(200, self.service.status(parts[2]))
            elif (
                len(parts) == 4
                and parts[0] == "v1"
                and parts[1] == "jobs"
                and parts[3] == "result"
            ):
                self._send_json(200, self.service.result_for_job(parts[2]))
            elif (
                len(parts) == 4
                and parts[0] == "v1"
                and parts[1] == "studies"
                and parts[3] == "result"
            ):
                self._send_json(200, self.service.result_for_study(parts[2]))
            else:
                self._send_json(404, {"error": f"no such endpoint {self.path}"})
        except ServiceError as exc:
            message = str(exc)
            code = 404 if ("unknown job" in message or "no stored" in message) else 409
            self._send_json(code, {"error": message})

    def do_DELETE(self) -> None:  # noqa: N802 (http.server contract)
        parts = [p for p in self.path.split("/") if p]
        if len(parts) != 3 or parts[:2] != ["v1", "jobs"]:
            self._send_json(404, {"error": f"no such endpoint {self.path}"})
            return
        try:
            payload = self.service.cancel(parts[2])
        except ServiceError as exc:
            message = str(exc)
            code = 404 if "unknown job" in message else 409
            self._send_json(code, {"error": message})
        else:
            self._send_json(200, payload)


def make_server(service: StudyService) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to the service's host/port."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer(
        (service.config.host, service.config.port), handler
    )


def run_forever(
    config: ServiceConfig, *, install_signals: bool = True
) -> int:
    """Boot the service, serve until SIGTERM/SIGINT, drain, exit.

    The signal handler closes admission and stops the HTTP loop; the
    in-flight study finishes, the journal compacts, and the function
    returns 0 on a clean drain (1 if the worker had to be abandoned).
    """
    service = StudyService(config)
    server = make_server(service)
    service.start()

    def _shutdown(signum, frame) -> None:
        # shutdown() must come from another thread than serve_forever's.
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _shutdown)
        signal.signal(signal.SIGINT, _shutdown)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
    clean = service.drain(timeout=600.0)
    return 0 if clean else 1
