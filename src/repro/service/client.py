"""A minimal stdlib client for the study service (urllib, no deps).

The smoke scripts, tests, and CI jobs all talk to ``repro serve``
through this class, so the HTTP contract is exercised end-to-end the
way an external consumer would::

    client = ServiceClient("http://127.0.0.1:8765")
    submitted = client.submit({"n_realizations": 1000})
    status = client.wait(submitted["job_id"], timeout=600)
    result = client.result(submitted["job_id"])

Every non-2xx response raises :class:`ServiceClientError` carrying the
HTTP status and the server's JSON error message, so callers branch on
``status`` (429 -> back off per ``retry_after``) instead of parsing
prose.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError


class ServiceClientError(ServiceError):
    """A service request failed; carries the HTTP status and headers."""

    def __init__(
        self, message: str, *, status: int, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """JSON-over-HTTP access to one study service instance."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Raw request plumbing
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode() or "{}")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode(errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw or str(exc)
            retry_after = exc.headers.get("Retry-After")
            raise ServiceClientError(
                f"{method} {path} -> {exc.code}: {message}",
                status=exc.code,
                retry_after=float(retry_after) if retry_after else None,
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                f"{method} {path} unreachable: {exc.reason}", status=0
            ) from exc

    # ------------------------------------------------------------------
    # The API surface
    # ------------------------------------------------------------------
    def submit(self, spec: dict) -> dict:
        """Submit a study spec; the response carries ``job_id``/``cached``."""
        return self._request("POST", "/v1/studies", spec)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        """Cancel a job (``DELETE /v1/jobs/<id>``); 409 if already terminal."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def result_for_study(self, study_hash: str) -> dict:
        return self._request("GET", f"/v1/studies/{study_hash}/result")

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def wait(
        self, job_id: str, *, timeout: float = 600.0, poll_s: float = 0.2
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"job {job_id!r} still {status['state']} after "
                    f"{timeout:.0f}s",
                    status=0,
                )
            time.sleep(poll_s)
