"""The always-on study service: submit studies over HTTP, get results.

Public surface:

* :class:`ServiceConfig` / :class:`StudyService` -- the service itself
  (bounded admission, journal-backed durability, supervised execution).
* :func:`run_forever` -- boot, serve, drain on SIGTERM (``repro serve``).
* :class:`ServiceClient` -- the stdlib HTTP client.
* :class:`JobQueue` / :class:`JobJournal` / :class:`JobRecord` /
  :class:`JobState` -- the job-lifecycle building blocks.
* :class:`ResultStore` -- the content-addressed persistent result cache.
* :func:`study_config_from_spec` -- JSON spec -> :class:`StudyConfig`.
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.jobs import JobJournal, JobQueue, JobRecord, JobState
from repro.service.server import (
    ServiceConfig,
    StudyService,
    make_server,
    run_forever,
    study_config_from_spec,
)
from repro.service.store import ResultStore

__all__ = [
    "JobJournal",
    "JobQueue",
    "JobRecord",
    "JobState",
    "ResultStore",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "StudyService",
    "make_server",
    "run_forever",
    "study_config_from_spec",
]
