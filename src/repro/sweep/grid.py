"""The axis-product grid builder: many :class:`StudyConfig`\\ s in one call.

A sweep grid is the cross-product of per-field alternatives applied to a
base config::

    configs = sweep_grid(
        StudyConfig(n_realizations=1000),
        configurations=["2", "2-2", "6", "6-6", "6+6+6"],
        scenarios=[s.name for s in PAPER_SCENARIOS],
        placement=["waiau", "kahe"],
    )                                    # 5 x 4 x 2 = 40 studies

Axis keys are :class:`StudyConfig` field names; each value is the
sequence of alternatives for that field.  Two conveniences make the
paper-style grids read naturally:

* a bare string (or a single :class:`ArchitectureSpec` /
  :class:`ThreatScenario`) in a ``configurations`` / ``scenarios`` axis
  means a single-element study, so the example above yields one study
  per (architecture, scenario) cell rather than whole sub-matrices;
* two derived axes cover the remaining paper dimensions:
  ``category`` (Saffir-Simpson 1-4 -> an Oahu generator for that storm
  intensity) and ``threshold`` (inundation failure threshold in
  meters -> a :class:`ThresholdFragility`).

Because ``chain`` is a :class:`StudyConfig` field, it is also a valid
axis: ``sweep_grid(base, chain=["paper", "grid-coupled"])`` compares
threat chains over the *same* shared ensemble (the chain never enters
``cache_key()``), with fragility memos reused across chains whose
hazard prefix is deterministic.

Every cell is built with :meth:`StudyConfig.replace`, so registry-name
typos in any axis raise :class:`ConfigurationError` (listing the
available names) while the grid is being built, not mid-sweep.
"""

from __future__ import annotations

import itertools
from dataclasses import fields as dataclass_fields
from typing import Sequence

from repro.api import StudyConfig
from repro.errors import ConfigurationError
from repro.geo import build_oahu_catalog, build_oahu_region
from repro.hazards.fragility import ThresholdFragility
from repro.hazards.hurricane.ensemble import EnsembleGenerator
from repro.hazards.hurricane.inundation import ExtensionParams
from repro.hazards.hurricane.standard import (
    CATEGORY_PRESSURE_MB,
    OAHU_SOUTH_SHORE_BASIN,
    oahu_scenario_for_category,
)

#: Axes that derive a StudyConfig field instead of naming one directly.
DERIVED_AXES = ("category", "threshold")

_SINGLETON_AXES = ("configurations", "scenarios")


def category_generator(category: int) -> EnsembleGenerator:
    """The standard Oahu generator rescaled to a Saffir-Simpson category.

    Building one constructs the coastal mesh; reuse the returned object
    across studies of the same category (the grid builder does).
    """
    if category not in CATEGORY_PRESSURE_MB:
        raise ConfigurationError(
            f"hurricane category must be one of "
            f"{sorted(CATEGORY_PRESSURE_MB)}, not {category!r}"
        )
    return EnsembleGenerator(
        region=build_oahu_region(),
        catalog=build_oahu_catalog(),
        scenario=oahu_scenario_for_category(category),
        extension_params=ExtensionParams(basins=(OAHU_SOUTH_SHORE_BASIN,)),
    )


def _normalize_axis(name: str, values: Sequence) -> tuple[str, list]:
    """Map one user axis onto (field name, field values)."""
    values = list(values)
    if not values:
        raise ConfigurationError(f"sweep axis {name!r} has no values")
    if name == "category":
        return "generator", [category_generator(c) for c in values]
    if name == "threshold":
        return "fragility", [
            ThresholdFragility(threshold_m=float(t)) for t in values
        ]
    if name in _SINGLETON_AXES:
        # A bare string / spec object means "one-element study": wrap it
        # so each grid cell analyzes exactly that architecture/scenario.
        return name, [
            (v,) if isinstance(v, str) or not isinstance(v, (tuple, list)) else tuple(v)
            for v in values
        ]
    return name, values


def sweep_grid(base: StudyConfig | None = None, **axes: Sequence) -> list[StudyConfig]:
    """Build the cross-product grid of study configs over ``axes``.

    ``base`` supplies every field the axes do not vary (defaults to
    ``StudyConfig()``, the paper's case study).  Axis order follows the
    keyword order, and the product iterates the *last* axis fastest, so
    the grid order is deterministic and reads like nested loops.

    Every ``StudyConfig`` field is an axis -- including the scenario
    catalog's ``region=`` and ``hazard=`` names, so
    ``sweep_grid(region=["oahu", "portolan"], hazard=["hurricane",
    "flood"])`` runs the full matrix while the engine still generates
    each distinct ensemble (by cache key) exactly once.
    """
    base = base or StudyConfig()
    valid = {f.name for f in dataclass_fields(StudyConfig)}
    for name in axes:
        if name not in valid and name not in DERIVED_AXES:
            raise ConfigurationError(
                f"unknown sweep axis {name!r}; axes are StudyConfig fields "
                f"({sorted(valid)}) or derived axes ({sorted(DERIVED_AXES)})"
            )
    if not axes:
        return [base]
    names_values = [_normalize_axis(name, values) for name, values in axes.items()]
    field_names = [name for name, _ in names_values]
    if len(set(field_names)) != len(field_names):
        raise ConfigurationError(
            f"sweep axes collide on the same StudyConfig field: {field_names}"
        )
    grid = []
    for combo in itertools.product(*(values for _, values in names_values)):
        grid.append(base.replace(**dict(zip(field_names, combo))))
    return grid
