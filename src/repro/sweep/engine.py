"""The batch-study scheduler: shared-ensemble dedup + bounded workers.

:func:`run_sweep` executes a grid of :class:`StudyConfig`\\ s the way the
paper's own results table demands -- many analysis cells over few hazard
ensembles -- without ever generating the same ensemble twice:

1. **Partition** the grid by :meth:`StudyConfig.cache_key`, the
   hazard-determining hash.  Every group shares bit-identical hazard
   data, however much its members differ on the analysis side.
2. **Acquire** each group's ensemble exactly once, through the existing
   fault-tolerant path (:class:`~repro.runtime.controller.RunController`
   + the on-disk :mod:`repro.io.ensemble_cache` when ``cache_dir`` is
   set on the group's configs).
3. **Analyze** the group's studies with up to ``jobs`` workers.  Worker
   processes receive the shared ensemble once (pool initializer), run
   with their own observer, and ship metric snapshots back for merging;
   anything unpicklable falls back to the serial path, which shares one
   fragility memo per (ensemble, fragility) pair across studies.
4. **Checkpoint** at study granularity: with ``sweep_dir`` set, each
   finished study lands in a checksummed ``study-<hash>.json`` shard and
   the sweep manifest is atomically rewritten, so ``resume=True`` skips
   finished studies and reproduces an identical manifest (modulo the
   ``telemetry`` section).

Results are bit-identical to independent :func:`repro.run_study` calls
per cell -- the engine changes scheduling and reuse, never the numbers.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import time
from pathlib import Path
from typing import Iterator, Sequence

from repro.api import StudyConfig, _study_weights, study_config_hash
from repro.core.outcomes import ScenarioMatrix
from repro.core.pipeline import CompoundThreatAnalysis
from repro.errors import ConfigurationError, SerializationError
from repro.hazards.base import HazardEnsemble
from repro.hazards.fragility import FragilityModel, ThresholdFragility
from repro.hazards.hurricane.standard import shared_standard_generator
from repro.io.atomic import atomic_write_text, quarantine_file
from repro.io.results_io import matrix_from_dict, matrix_to_dict
from repro.io.shared_ensemble import (
    attach_shared_ensemble,
    publish_shared_ensemble,
    shareable_ensemble,
)
from repro.obs.manifest import write_json_artifact
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObservability,
    Observability,
    activate,
)
from repro.obs.observer import current as current_observer
from repro.runtime.checkpoint import sha256_of
from repro.runtime.controller import RetryPolicy
from repro.runtime.supervisor import StudyFailure, StudySupervisor, SupervisedTask
from repro.sweep.result import StudyCell, SweepResult, cell_summary

SWEEP_MANIFEST_SCHEMA_VERSION = 1
SWEEP_MANIFEST_FILENAME = "sweep_manifest.json"


def sweep_study_hash(config: StudyConfig) -> str:
    """The resume identity of one study: config hash over its data key."""
    return study_config_hash(config, ensemble_key=config.cache_key())


# ----------------------------------------------------------------------
# The sweep checkpoint store (sharded results + checksummed manifest)
# ----------------------------------------------------------------------
class SweepStore:
    """Study-granular, crash-consistent sweep progress under ``sweep_dir``.

    The layout follows :mod:`repro.runtime.checkpoint`: one
    ``study-<hash>.json`` shard per finished study plus a
    ``sweep_manifest.json`` listing each shard's sha256, every file
    written atomically (tmp sibling + rename) and the manifest rewritten
    after each shard, so a sweep killed at any instant leaves a
    consistent prefix.  On resume every shard is re-verified -- checksum,
    embedded study hash, matrix decode -- and failures are quarantined
    (``<name>.corrupt``) so only those studies re-run.  Shard bytes are
    a pure function of the study identity and its matrix (no timestamps),
    which is what makes a resumed sweep's manifest bit-identical to an
    uninterrupted one outside the ``telemetry`` section.
    """

    def __init__(self, sweep_dir: str | Path) -> None:
        self.dir = Path(sweep_dir)
        #: study hash -> {"file", "sha256", "cache_key"} for recorded shards.
        self.entries: dict[str, dict] = {}

    @property
    def manifest_path(self) -> Path:
        return self.dir / SWEEP_MANIFEST_FILENAME

    def shard_path(self, study_hash: str) -> Path:
        return self.dir / f"study-{study_hash}.json"

    def record(self, cell: StudyCell) -> None:
        """Persist one finished study shard (deterministic bytes)."""
        self.dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": SWEEP_MANIFEST_SCHEMA_VERSION,
            "kind": "repro.sweep_study",
            "study_hash": cell.study_hash,
            "cache_key": cell.cache_key,
            "summary": cell.summary(),
            "matrix": matrix_to_dict(cell.matrix),
        }
        path = self.shard_path(cell.study_hash)
        atomic_write_text(path, json.dumps(payload, sort_keys=True, indent=2) + "\n")
        self.entries[cell.study_hash] = {
            "file": path.name,
            "sha256": sha256_of(path),
            "cache_key": cell.cache_key,
        }

    def write_manifest(self, manifest: dict) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.manifest_path, json.dumps(manifest, sort_keys=True, indent=2) + "\n"
        )

    def load(self, wanted: frozenset[str]) -> dict[str, ScenarioMatrix]:
        """Recover the verified finished studies among ``wanted`` hashes.

        Shards for studies outside this sweep are left untouched (the
        directory may be shared by overlapping grids).
        """
        loaded: dict[str, ScenarioMatrix] = {}
        if not self.manifest_path.exists():
            return loaded
        try:
            manifest = json.loads(self.manifest_path.read_text())
            entries = manifest["studies"]
            ok = (
                manifest["schema_version"] == SWEEP_MANIFEST_SCHEMA_VERSION
                and manifest["kind"] == "repro.sweep_manifest"
            )
        except (json.JSONDecodeError, KeyError, TypeError, OSError) as exc:
            quarantine_file(self.manifest_path, f"unreadable sweep manifest: {exc}")
            return loaded
        if not ok:
            quarantine_file(self.manifest_path, "manifest is not a sweep manifest")
            return loaded
        for study_hash, entry in sorted(entries.items()):
            if study_hash not in wanted or not entry.get("file"):
                continue
            path = self.dir / str(entry["file"])
            try:
                loaded[study_hash] = self._load_shard(study_hash, entry, path)
            except SerializationError as exc:
                if path.exists():
                    quarantine_file(path, str(exc))
                continue
            self.entries[study_hash] = {
                "file": path.name,
                "sha256": entry["sha256"],
                "cache_key": entry.get("cache_key"),
            }
        return loaded

    def _load_shard(self, study_hash: str, entry: dict, path: Path) -> ScenarioMatrix:
        if not path.exists():
            raise SerializationError(f"study shard {path.name} missing")
        if sha256_of(path) != entry.get("sha256"):
            raise SerializationError("study shard checksum mismatch")
        try:
            payload = json.loads(path.read_text())
            if payload["study_hash"] != study_hash:
                raise SerializationError(
                    "study shard hash does not match its manifest entry"
                )
            return matrix_from_dict(payload["matrix"])
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise SerializationError(f"undecodable study shard: {exc}") from exc


# ----------------------------------------------------------------------
# Per-study analysis (serial and pooled paths)
# ----------------------------------------------------------------------
def _fragility_token(fragility: FragilityModel | None):
    """A dict key identifying a fragility model for memo sharing."""
    model = fragility if fragility is not None else ThresholdFragility()
    try:
        hash(model)
    except TypeError:
        return id(model)
    return model


def _analyze(
    ensemble: HazardEnsemble, config: StudyConfig, caches: dict
) -> ScenarioMatrix:
    """One study's matrix over a shared ensemble.

    ``caches`` maps fragility tokens to failed-asset memos shared across
    the group's studies (sound because the ensemble is shared and the
    pipeline only reads the memo for deterministic models).  A chain
    whose hazard prefix is *not* deterministic (a stochastic stage runs
    before or at the hazard impact) gets a private memo: its fragility
    pass is not a pure function of the realization, so sharing it across
    studies would leak one study's samples into another.
    """
    chain = config.resolve_chain()
    if chain.hazard_prefix_deterministic():
        failed_cache = caches.setdefault(
            _fragility_token(config.resolve_fragility()), {}
        )
    else:
        failed_cache = None
    analysis = CompoundThreatAnalysis(
        ensemble,
        fragility=config.resolve_fragility(),
        attacker=config.attacker,
        seed=config.analysis_seed,
        failed_cache=failed_cache,
        # The batched grids (failure masks, probability grids) are pure
        # functions of (shared depths, model), so one group-wide memo is
        # sound even for stochastic chains -- unlike the scalar
        # failed-asset memo above, which is gated on determinism.
        matrix_cache=caches.setdefault("__matrix__", {}),
        chain=chain,
        batch=config.batch,
        # Weights are a pure function of (plan, stored track offsets), so
        # pool workers recompute them bit-identically from the config --
        # no weight arrays ever cross the process boundary.
        weights=_study_weights(config, ensemble),
    )
    return analysis.run_matrix(
        config.resolve_configurations(),
        config.resolve_placement(),
        config.resolve_scenarios(),
    )


_worker_ensemble: HazardEnsemble | None = None
_worker_descriptor: dict | None = None
_worker_fallback_ok: bool = False
_worker_caches: dict = {}


def _pool_init(ensemble: HazardEnsemble) -> None:
    """Install the group's pickled ensemble in a worker process, once.

    Legacy path for ensembles without a depth grid; shareable ensembles
    go through :func:`_pool_init_shared` and never cross the process
    boundary as pickled bytes.
    """
    global _worker_ensemble, _worker_descriptor, _worker_fallback_ok
    _worker_ensemble = ensemble
    _worker_descriptor = None
    _worker_fallback_ok = False
    _worker_caches.clear()


def _pool_init_shared(descriptor: dict, fallback_ok: bool = False) -> None:
    """Install the group's shared-ensemble descriptor in a worker.

    Only the small descriptor crosses the process boundary; the worker
    attaches to the shared depth grid lazily on its first task (so the
    attach counter lands in a task's metric snapshot and gets merged
    into the sweep manifest).  ``fallback_ok`` marks groups whose
    hazard data is regenerable from the config alone (the standard
    generator + cache path), enabling the stale-descriptor fallback.
    """
    global _worker_ensemble, _worker_descriptor, _worker_fallback_ok
    _worker_ensemble = None
    _worker_descriptor = descriptor
    _worker_fallback_ok = fallback_ok
    _worker_caches.clear()


def _fallback_ensemble(config: StudyConfig) -> HazardEnsemble:
    """Regenerate a worker's hazard data after a stale shared descriptor.

    Only reachable for groups whose hazard data is rebuildable from the
    config alone (``fallback_ok``): the standard Oahu generator or a
    region/hazard catalog selection -- count, seed, cache_dir -- so
    the worker rebuilds through the normal cache-or-generate path
    (``n_jobs=1``; a worker never nests pools).  Bit-identical to the
    shared grid it replaces, by the generation determinism guarantee.
    """
    from repro.sampling.generation import maybe_plan_sampled

    generator = maybe_plan_sampled(
        config.resolve_generator() or shared_standard_generator(),
        config.resolve_sampling(),
    )
    return generator.generate(
        count=config.n_realizations,
        seed=config.seed,
        n_jobs=1,
        cache_dir=config.cache_dir,
    )


def _worker_get_ensemble(config: StudyConfig) -> HazardEnsemble:
    global _worker_ensemble
    if _worker_ensemble is None:
        if _worker_descriptor is None:
            raise ConfigurationError("sweep worker has no ensemble installed")
        obs = current_observer()
        try:
            _worker_ensemble = attach_shared_ensemble(_worker_descriptor)
        except (OSError, SerializationError) as exc:
            # A crashed producer may have unlinked the shm segment (or
            # the mmap sidecar vanished) under us.  Degrade to
            # cache/regeneration instead of killing the worker -- but
            # only when the group's hazard data is rebuildable from the
            # config; custom generators and prebuilt ensembles were
            # stripped before the process boundary and cannot be.
            if not _worker_fallback_ok:
                raise SerializationError(
                    f"stale shared-ensemble descriptor and no regeneration "
                    f"path for this group's custom hazard data: {exc}"
                ) from exc
            obs.inc("sweep.ensemble.attach_fallback")
            _worker_ensemble = _fallback_ensemble(config)
        else:
            obs.inc("sweep.ensemble.shared_attach")
    return _worker_ensemble


def _pool_run(config: StudyConfig) -> tuple[dict, dict]:
    """Run one study in a worker; return (matrix dict, metric snapshot)."""
    obs = Observability()
    with activate(obs):
        matrix = _analyze(_worker_get_ensemble(config), config, _worker_caches)
    return matrix_to_dict(matrix), obs.metrics.snapshot()


def _picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except (pickle.PicklingError, TypeError, AttributeError):
        # Exactly the failures pickling an unsupported object raises.
        # Anything else -- KeyboardInterrupt, SystemExit, MemoryError --
        # propagates instead of being silently read as "not picklable".
        return False
    return True


def _run_pool(
    tasks: Sequence[SupervisedTask],
    jobs: int,
    obs: Observability | NullObservability,
    initializer,
    initargs: tuple,
    supervisor: StudySupervisor,
) -> Iterator[tuple[int, ScenarioMatrix | StudyFailure]]:
    """Supervised pool execution: yields settled studies, never hangs.

    The supervisor bounds every wait (its poll interval), detects
    collapsed pools and rebuilds them, enforces the per-study deadline,
    and converts terminal failures into :class:`StudyFailure` records
    (or raises, naming the study, under ``strict``) -- replacing the
    old bare ``as_completed`` + ``future.result()`` loop that hung on a
    silently-dead worker and aborted the sweep on the first error.
    """
    for task, outcome in supervisor.run_pool(
        tasks, jobs, _pool_run, initializer=initializer, initargs=initargs
    ):
        if isinstance(outcome, StudyFailure):
            yield task.position, outcome
        else:
            payload, snapshot = outcome
            obs.merge_snapshot(snapshot)
            yield task.position, matrix_from_dict(payload)


def _iter_group_results(
    ensemble: HazardEnsemble,
    tasks: Sequence[SupervisedTask],
    jobs: int,
    obs: Observability | NullObservability,
    supervisor: StudySupervisor,
    share_ref: dict | None = None,
    fallback_ok: bool = False,
) -> Iterator[tuple[int, ScenarioMatrix | StudyFailure]]:
    """Yield ``(grid position, matrix-or-failure)`` per task as each settles.

    Each task's payload is its full :class:`StudyConfig` (with any data
    objects still attached); the pool path strips those before the
    process boundary.  ``share_ref`` is an optional pre-existing mmap
    descriptor for the group's depth grid (the cache sidecar); when
    absent and the ensemble is shareable, a shared-memory segment is
    published for the pool's lifetime and unlinked in the ``finally``
    -- including on ``KeyboardInterrupt`` or a broken pool.
    """
    if jobs > 1 and len(tasks) > 1:
        # Workers receive the config without its data objects: the
        # ensemble ships by descriptor (or once via the legacy pickled
        # initializer) and a generator (with its mesh) never needs to
        # cross the process boundary.
        stripped = [
            dataclasses.replace(
                task,
                payload=task.payload.replace(ensemble=None, generator=None),
            )
            for task in tasks
        ]
        if not _picklable(*(task.payload for task in stripped)):
            obs.event("sweep.parallel_fallback", reason="unpicklable study inputs")
        elif share_ref is not None or shareable_ensemble(ensemble):
            handle = None
            descriptor = share_ref
            if descriptor is None:
                handle = publish_shared_ensemble(ensemble)
            if handle is not None:
                descriptor = handle.descriptor
                obs.inc("sweep.ensemble.shared_publish")
            else:
                obs.inc("sweep.ensemble.shared_mmap")
            try:
                yield from _run_pool(
                    stripped, jobs, obs, _pool_init_shared,
                    (descriptor, fallback_ok), supervisor,
                )
            finally:
                if handle is not None:
                    handle.close()
                    handle.unlink()
            return
        elif _picklable(ensemble):
            yield from _run_pool(
                stripped, jobs, obs, _pool_init, (ensemble,), supervisor
            )
            return
        else:
            obs.event("sweep.parallel_fallback", reason="unpicklable ensemble")
    caches: dict = {}

    def _serial_runner(config: StudyConfig) -> ScenarioMatrix:
        return _analyze(ensemble, config, caches)

    for task, outcome in supervisor.run_serial(tasks, _serial_runner):
        yield task.position, outcome


def _acquire_group_ensemble(
    config: StudyConfig, obs: Observability | NullObservability
) -> tuple[HazardEnsemble, dict | None]:
    """One group's hazard data, generated/loaded exactly once per sweep.

    Returns ``(ensemble, share_ref)``: when the ensemble round-tripped
    through the on-disk cache, ``share_ref`` is the mmap descriptor of
    its depth sidecar and pool workers map the file directly instead of
    receiving any copy at all.
    """
    if config.ensemble is not None:
        obs.inc("sweep.ensemble.prebuilt")
        return config.ensemble, None
    from repro.sampling.generation import maybe_plan_sampled

    # A sampling plan reshapes the hazard draw, so it participates in the
    # group's identity (via StudyConfig.cache_key) and in generation here;
    # plain/None keeps the exact legacy generator and cache keys.
    generator = maybe_plan_sampled(
        config.resolve_generator() or shared_standard_generator(),
        config.resolve_sampling(),
    )
    retry = RetryPolicy.from_options(config.max_retries, config.task_timeout)
    with obs.span(
        "sweep.ensemble.acquire",
        count=config.n_realizations,
        seed=config.seed,
    ):
        ensemble = generator.generate(
            count=config.n_realizations,
            seed=config.seed,
            n_jobs=config.jobs,
            cache_dir=config.cache_dir,
            # Ensemble-level resume needs a cache_dir; sweep-level resume
            # (finished-study shards) works without one.
            resume=config.resume and config.cache_dir is not None,
            retry=retry,
        )
    obs.inc("sweep.ensemble.generated")
    share_ref = None
    if config.cache_dir is not None and hasattr(generator, "cache_key"):
        from repro.io.ensemble_cache import shared_depth_descriptor

        share_ref = shared_depth_descriptor(
            config.cache_dir, generator.cache_key(config.n_realizations, config.seed)
        )
        if share_ref is not None and share_ref["shape"][0] != len(ensemble):
            share_ref = None
    return ensemble, share_ref


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def _study_label(summary: dict) -> str:
    """A short human-readable study name for failure records and errors."""
    label = (
        f"{'+'.join(summary['configurations'])} | "
        f"{'+'.join(summary['scenarios'])} | "
        f"{summary['placement']}"
    )
    chain = summary.get("chain")
    if chain and chain != "paper":
        label += f" | chain={chain}"
    return label


def _build_manifest(
    *,
    hashes: Sequence[str],
    cache_keys: Sequence[str],
    chains: Sequence[str],
    groups: dict[str, list[int]],
    store: SweepStore | None,
    telemetry: dict | None,
) -> dict:
    studies: dict[str, dict] = {}
    for study_hash, cache_key, chain in zip(hashes, cache_keys, chains):
        entry = {"cache_key": cache_key, "chain": chain}
        if store is not None and study_hash in store.entries:
            recorded = store.entries[study_hash]
            entry["file"] = recorded["file"]
            entry["sha256"] = recorded["sha256"]
        studies[study_hash] = entry
    manifest = {
        "schema_version": SWEEP_MANIFEST_SCHEMA_VERSION,
        "kind": "repro.sweep_manifest",
        "n_studies": len(hashes),
        "n_groups": len(groups),
        "groups": {
            key: [hashes[i] for i in indices] for key, indices in groups.items()
        },
        "studies": studies,
    }
    if telemetry is not None:
        # Wall-clock and metric data vary run to run; everything above
        # this key is deterministic for a given grid (resume-identical).
        manifest["telemetry"] = telemetry
    return manifest


def run_sweep(
    configs: Sequence[StudyConfig],
    *,
    jobs: int = 1,
    sweep_dir: str | Path | None = None,
    resume: bool = False,
    manifest_out: str | Path | None = None,
    observability: bool = True,
    obs: Observability | NullObservability | None = None,
    strict: bool = True,
    retry: RetryPolicy | None = None,
    study_deadline_s: float | None = None,
    budget_s: float | None = None,
) -> SweepResult:
    """Run a batch of studies with shared-ensemble dedup; see module docs.

    ``jobs`` bounds the per-study analysis workers (ensemble generation
    has its own ``StudyConfig.jobs``).  ``sweep_dir`` enables
    study-granular checkpointing; ``resume=True`` (requires
    ``sweep_dir``) loads the verified finished studies and runs only the
    rest.  ``manifest_out`` writes the sweep manifest to an extra path
    alongside the one in ``sweep_dir``.

    Every study runs under a :class:`StudySupervisor`: retryable
    failures (crashed workers, hung studies past ``study_deadline_s``)
    are retried per ``retry`` (default :class:`RetryPolicy`), and a
    terminally-failed study either aborts the sweep with a
    :class:`~repro.errors.StudyFailureError` naming the study
    (``strict=True``, the default -- matching the historical behavior)
    or becomes a :class:`StudyFailure` on ``SweepResult.failures``
    while every other cell still completes (``strict=False``).
    ``budget_s`` bounds the whole sweep's wall clock: studies not
    started when it expires fail with
    :class:`~repro.errors.SweepBudgetError` instead of running.
    """
    configs = list(configs)
    if not configs:
        raise ConfigurationError("sweep needs at least one study config")
    for i, config in enumerate(configs):
        plan = config.resolve_sampling()
        if plan is not None and plan.name == "adaptive":
            raise ConfigurationError(
                f"sweep position {i}: adaptive sampling is study-level "
                "(its round loop owns realization counts); run it via "
                "repro.sampling.run_adaptive_study, or sweep its base "
                "plan directly"
            )
    if jobs < 1:
        raise ConfigurationError("sweep jobs must be at least 1")
    if resume and sweep_dir is None:
        raise ConfigurationError("sweep resume requires a sweep_dir")
    if obs is None:
        obs = Observability() if observability else NULL_OBSERVER
    start = time.perf_counter()
    with activate(obs):
        with obs.span("run_sweep", studies=len(configs)):
            cache_keys = [config.cache_key() for config in configs]
            chain_names = [config.resolve_chain().name for config in configs]
            hashes = [
                study_config_hash(config, ensemble_key=key)
                for config, key in zip(configs, cache_keys)
            ]
            seen: dict[str, int] = {}
            for i, study_hash in enumerate(hashes):
                if study_hash in seen:
                    raise ConfigurationError(
                        f"duplicate study in sweep grid: positions "
                        f"{seen[study_hash]} and {i} share identity "
                        f"{study_hash}"
                    )
                seen[study_hash] = i
            groups: dict[str, list[int]] = {}
            for i, key in enumerate(cache_keys):
                groups.setdefault(key, []).append(i)
            obs.set_gauge("sweep.studies", len(configs))
            obs.set_gauge("sweep.ensemble_groups", len(groups))

            store = SweepStore(sweep_dir) if sweep_dir is not None else None
            done: dict[str, ScenarioMatrix] = {}
            if store is not None and resume:
                with obs.span("sweep.resume_load"):
                    done = store.load(frozenset(hashes))
                if done:
                    obs.inc("sweep.studies_resumed", len(done))

            supervisor = StudySupervisor(
                policy=retry,
                strict=strict,
                deadline_s=study_deadline_s,
                budget_s=budget_s,
            )
            tasks_by_index = {
                i: SupervisedTask(
                    position=i,
                    label=_study_label(cell_summary(configs[i])),
                    study_hash=hashes[i],
                    payload=configs[i],
                )
                for i in range(len(configs))
            }
            matrices: dict[int, ScenarioMatrix] = {}
            failures: dict[int, StudyFailure] = {}
            resumed_indices: set[int] = set()
            for key, indices in groups.items():
                pending: list[int] = []
                for i in indices:
                    if hashes[i] in done:
                        matrices[i] = done[hashes[i]]
                        resumed_indices.add(i)
                    else:
                        pending.append(i)
                if not pending:
                    continue
                if supervisor.budget_exhausted():
                    # Never start a group past the sweep budget; strict
                    # mode raises SweepBudgetError from inside here.
                    for i in pending:
                        failures[i] = supervisor.budget_failure(
                            tasks_by_index[i]
                        )
                        obs.inc("sweep.studies_failed")
                    continue
                ensemble, share_ref = _acquire_group_ensemble(
                    configs[pending[0]], obs
                )
                if len(pending) > 1:
                    obs.inc("sweep.ensemble.reused", len(pending) - 1)
                pending_tasks = [tasks_by_index[i] for i in pending]
                first = configs[pending[0]]
                fallback_ok = first.ensemble is None and first.generator is None
                for i, outcome in _iter_group_results(
                    ensemble,
                    pending_tasks,
                    jobs,
                    obs,
                    supervisor,
                    share_ref,
                    fallback_ok,
                ):
                    if isinstance(outcome, StudyFailure):
                        failures[i] = outcome
                        obs.inc("sweep.studies_failed")
                        continue
                    matrices[i] = outcome
                    obs.inc("sweep.studies_completed")
                    if store is not None:
                        store.record(
                            StudyCell(
                                config=configs[i],
                                study_hash=hashes[i],
                                cache_key=key,
                                matrix=outcome,
                            )
                        )
                        store.write_manifest(
                            _build_manifest(
                                hashes=hashes,
                                cache_keys=cache_keys,
                                chains=chain_names,
                                groups=groups,
                                store=store,
                                telemetry=None,
                            )
                        )
    wall_clock_s = time.perf_counter() - start
    telemetry = {
        "wall_clock_s": round(wall_clock_s, 6),
        "metrics": obs.metrics.snapshot() if obs.enabled else {},
    }
    if failures:
        # Failure records vary run to run (chaos, deadlines), so they
        # live in the telemetry section: the deterministic part of the
        # manifest stays resume-identical.
        telemetry["failures"] = [
            failures[i].summary() for i in sorted(failures)
        ]
    manifest = _build_manifest(
        hashes=hashes,
        cache_keys=cache_keys,
        chains=chain_names,
        groups=groups,
        store=store,
        telemetry=telemetry,
    )
    if store is not None:
        store.write_manifest(manifest)
    if manifest_out is not None:
        write_json_artifact(manifest_out, manifest, "sweep manifest")
    cells = tuple(
        StudyCell(
            config=configs[i],
            study_hash=hashes[i],
            cache_key=cache_keys[i],
            matrix=matrices[i],
            resumed=i in resumed_indices,
        )
        for i in range(len(configs))
        if i in matrices
    )
    return SweepResult(
        cells=cells,
        manifest=manifest,
        observability=obs,
        failures=tuple(failures[i] for i in sorted(failures)),
    )
