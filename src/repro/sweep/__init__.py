"""Batched multi-study sweeps with shared-ensemble deduplication.

The public surface:

* :func:`sweep_grid` -- build a grid of :class:`~repro.api.StudyConfig`\\ s
  as the cross-product of per-field axes.
* :func:`run_sweep` -- execute a grid with ensemble dedup, bounded
  parallel analysis, and study-granular checkpoint/resume.
* :class:`SweepResult` / :class:`StudyCell` / :class:`AxisComparison` --
  the result objects, including per-axis outcome comparisons.
"""

from repro.runtime.supervisor import StudyFailure
from repro.sweep.engine import SweepStore, run_sweep, sweep_study_hash
from repro.sweep.grid import category_generator, sweep_grid
from repro.sweep.result import (
    AxisComparison,
    ComparisonRow,
    StudyCell,
    SweepResult,
    cell_summary,
)

__all__ = [
    "AxisComparison",
    "ComparisonRow",
    "StudyCell",
    "StudyFailure",
    "SweepResult",
    "SweepStore",
    "category_generator",
    "cell_summary",
    "run_sweep",
    "sweep_grid",
    "sweep_study_hash",
]
