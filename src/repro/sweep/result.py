"""What a sweep produced: per-study cells plus cross-study comparisons.

:class:`SweepResult` is to :func:`repro.sweep.run_sweep` what
:class:`~repro.api.StudyResult` is to :func:`repro.run_study`: the
supported result surface.  Beyond per-study matrices it answers the
question sweeps exist for -- *what changed across an axis* -- via
:meth:`SweepResult.compare`, e.g. the paper's Waiau-vs-Kahe siting
variant where red outcomes convert to orange/green when the backup
control center moves out of the shared flood basin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.api import StudyConfig, _model_identity
from repro.core.outcomes import ScenarioMatrix
from repro.core.report import format_matrix_report
from repro.core.states import STATE_ORDER
from repro.errors import ConfigurationError
from repro.io.atomic import atomic_write_text

SWEEP_RESULT_SCHEMA_VERSION = 1

#: Axes :meth:`SweepResult.compare` accepts (cell summary keys).
COMPARISON_AXES = (
    "placement",
    "region",
    "hazard",
    "hazard_scenario",
    "fragility",
    "attacker",
    "chain",
    "sampling",
    "n_realizations",
    "seed",
    "analysis_seed",
)

#: Summary keys that are *consequences* of an axis choice, excluded from
#: the all-else-equal grouping when comparing over that axis (a hazard
#: family change necessarily changes the resolved scenario name, default
#: chain, and default fragility -- those deltas ARE the comparison; a
#: sampling-plan change carries its full parameter spec along).
_AXIS_DERIVED_KEYS = {
    "region": ("hazard_scenario",),
    "hazard": ("hazard_scenario", "chain", "fragility"),
    "sampling": ("sampling_spec",),
}


def cell_summary(config: StudyConfig) -> dict:
    """The JSON-friendly identity of one study (names, never objects)."""
    if config.ensemble is not None:
        hazard = getattr(config.ensemble, "scenario_name", "prebuilt")
    else:
        generator = config.resolve_generator()
        if generator is not None:
            hazard = getattr(
                getattr(generator, "scenario", None), "name", type(generator).__name__
            )
        else:
            from repro.hazards.hurricane.standard import shared_standard_generator

            hazard = shared_standard_generator().scenario.name
    plan = config.resolve_sampling()
    return {
        "configurations": [a.name for a in config.resolve_configurations()],
        "scenarios": [s.name for s in config.resolve_scenarios()],
        "placement": config.resolve_placement().label(),
        "region": config.region,
        "hazard": config.hazard,
        "hazard_scenario": hazard,
        "n_realizations": config.n_realizations,
        "seed": config.seed,
        "analysis_seed": config.analysis_seed,
        "fragility": _model_identity(config.resolve_fragility()),
        "attacker": _model_identity(config.attacker),
        "chain": config.resolve_chain().name,
        "sampling": plan.name if plan is not None else "plain",
        "sampling_spec": (
            plan.spec() if plan is not None and plan.name != "plain" else None
        ),
    }


@dataclass(frozen=True)
class StudyCell:
    """One study of a sweep: its config, identity hashes, and matrix."""

    config: StudyConfig
    study_hash: str
    cache_key: str
    matrix: ScenarioMatrix
    resumed: bool = False

    def summary(self) -> dict:
        return cell_summary(self.config)


@dataclass(frozen=True)
class ComparisonRow:
    """One (scenario, architecture) outcome delta across an axis step."""

    baseline: str
    value: str
    scenario: str
    architecture: str
    #: state name -> probability delta (other minus baseline).
    deltas: dict

    def is_null(self, tolerance: float = 1e-12) -> bool:
        return all(abs(d) <= tolerance for d in self.deltas.values())


@dataclass(frozen=True)
class AxisComparison:
    """Outcome deltas between studies that differ only in one axis."""

    axis: str
    rows: tuple[ComparisonRow, ...]

    def format(self) -> str:
        lines = [f"Sweep comparison over {self.axis!r}"]
        if not self.rows:
            lines.append(
                f"  (no study pairs differ only in {self.axis!r})"
            )
            return "\n".join(lines)
        current = None
        for row in self.rows:
            pair = (row.baseline, row.value)
            if pair != current:
                current = pair
                lines.append(f"  {row.baseline}  ->  {row.value}")
            if row.is_null():
                detail = "no change"
            else:
                detail = ", ".join(
                    f"{state} {delta * 100:+.1f}pp"
                    for state, delta in row.deltas.items()
                    if abs(delta) > 1e-12
                )
            lines.append(
                f"    {row.scenario} / {row.architecture}: {detail}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class SweepResult:
    """Everything one :func:`repro.sweep.run_sweep` call produced.

    ``cells`` holds the *completed* studies; with ``strict=False`` a
    terminally-failed study appears in ``failures`` (as a
    :class:`~repro.runtime.supervisor.StudyFailure`) instead of as a
    cell, so a partial sweep is still a usable result.
    """

    cells: tuple[StudyCell, ...]
    manifest: dict
    observability: object
    failures: tuple = ()

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def ok(self) -> bool:
        """True when every study in the grid completed."""
        return not self.failures

    def get(self, **selector) -> list[StudyCell]:
        """Cells whose summary matches every ``selector`` item."""
        matched = []
        for cell in self.cells:
            summary = cell.summary()
            for key in selector:
                if key not in summary:
                    raise ConfigurationError(
                        f"unknown cell selector {key!r}; summary keys are "
                        f"{sorted(summary)}"
                    )
            if all(summary[k] == v for k, v in selector.items()):
                matched.append(cell)
        return matched

    # ------------------------------------------------------------------
    # Reports and exports
    # ------------------------------------------------------------------
    def report(self) -> str:
        """Per-study matrix tables with a sweep-level header."""
        groups = self.manifest.get("groups", {})
        lines = [
            f"Sweep: {len(self.cells)} studies over "
            f"{len(groups) or '?'} ensemble group(s)",
            "=" * 60,
        ]
        if self.failures:
            lines.append(f"FAILED studies: {len(self.failures)}")
            for failure in self.failures:
                lines.append(
                    f"  [{failure.position}] {failure.label}: "
                    f"{failure.error_type}: {failure.message} "
                    f"(after {failure.attempts} attempt(s))"
                )
        for i, cell in enumerate(self.cells, 1):
            summary = cell.summary()
            lines.append("")
            lines.append(
                f"[{i}/{len(self.cells)}] "
                f"{'+'.join(summary['configurations'])} | "
                f"{'+'.join(summary['scenarios'])} | "
                f"{summary['placement']} | "
                f"hazard {summary['hazard_scenario']} "
                f"({summary['n_realizations']} realizations, "
                f"seed {summary['seed']})"
            )
            lines.append(format_matrix_report(cell.matrix))
        return "\n".join(lines)

    def to_table(self) -> list[dict]:
        """Flat records: one row per (study, scenario, architecture)."""
        rows = []
        for cell in self.cells:
            summary = cell.summary()
            for row in cell.matrix.to_rows():
                rows.append(
                    {
                        "study_hash": cell.study_hash,
                        "hazard_scenario": summary["hazard_scenario"],
                        "n_realizations": summary["n_realizations"],
                        "seed": summary["seed"],
                        "fragility": summary["fragility"],
                        **row,
                    }
                )
        return rows

    def to_json(self) -> dict:
        from repro.io.results_io import matrix_to_dict

        return {
            "schema_version": SWEEP_RESULT_SCHEMA_VERSION,
            "kind": "repro.sweep_result",
            "studies": [
                {
                    "study_hash": cell.study_hash,
                    "cache_key": cell.cache_key,
                    "resumed": cell.resumed,
                    "summary": cell.summary(),
                    "matrix": matrix_to_dict(cell.matrix),
                }
                for cell in self.cells
            ],
            "failures": [failure.summary() for failure in self.failures],
        }

    def save_json(self, path: str | Path) -> Path:
        """Atomically write :meth:`to_json` to ``path``."""
        target = Path(path)
        atomic_write_text(target, json.dumps(self.to_json(), indent=2) + "\n")
        return target

    # ------------------------------------------------------------------
    # Cross-study analysis
    # ------------------------------------------------------------------
    def compare(self, axis: str) -> AxisComparison:
        """Outcome deltas across ``axis``, all else held equal.

        Cells are grouped by their full summary minus ``axis``; within
        each group the first cell (grid order) is the baseline and every
        other cell contributes one :class:`ComparisonRow` per matrix
        cell the two studies share.  ``compare("placement")`` on a
        Waiau/Kahe grid reproduces the paper's siting finding directly.
        """
        if axis not in COMPARISON_AXES:
            raise ConfigurationError(
                f"unknown comparison axis {axis!r}; choose from "
                f"{sorted(COMPARISON_AXES)}"
            )
        excluded = {axis, *_AXIS_DERIVED_KEYS.get(axis, ())}
        groups: dict[str, list[StudyCell]] = {}
        for cell in self.cells:
            summary = cell.summary()
            key = json.dumps(
                {k: v for k, v in summary.items() if k not in excluded},
                sort_keys=True,
                default=str,
            )
            groups.setdefault(key, []).append(cell)
        rows: list[ComparisonRow] = []
        for cells in groups.values():
            if len(cells) < 2:
                continue
            base = cells[0]
            base_label = str(base.summary()[axis])
            for other in cells[1:]:
                other_label = str(other.summary()[axis])
                for scenario in base.matrix.scenario_names:
                    if scenario not in other.matrix.scenario_names:
                        continue
                    base_profiles = base.matrix.scenario_profiles(scenario)
                    other_profiles = other.matrix.scenario_profiles(scenario)
                    for arch, base_profile in base_profiles.items():
                        if arch not in other_profiles:
                            continue
                        deltas = {
                            state.value: other_profiles[arch].probability(state)
                            - base_profile.probability(state)
                            for state in STATE_ORDER
                        }
                        rows.append(
                            ComparisonRow(
                                baseline=base_label,
                                value=other_label,
                                scenario=scenario,
                                architecture=arch,
                                deltas=deltas,
                            )
                        )
        return AxisComparison(axis=axis, rows=tuple(rows))
