"""Generic named registries.

Every look-up-by-name surface in the package (threat chains, placements,
architectures, threat scenarios, regions, hazard families, scenario
packs) is backed by one :class:`Registry` so the ergonomics are uniform:

* ``register(name, value)`` refuses to silently clobber an existing
  entry unless ``replace=True`` is passed;
* ``get(name)`` raises :class:`~repro.errors.ConfigurationError` with a
  message that lists the valid names;
* ``available()`` returns the sorted names for CLIs and error messages.

The class is deliberately tiny -- a dict plus consistent error
messages -- so domain modules keep owning their registration helpers
(``register_chain``, ``register_region``, ...) and only delegate the
bookkeeping here.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")

__all__ = ["Registry"]


class Registry(Generic[T]):
    """A named collection of ``T`` with consistent errors.

    ``kind`` is the singular noun used in error messages ("threat
    chain", "region"); ``plural`` defaults to ``kind + "s"`` and names
    the listing in unknown-name errors ("registered chains: [...]").
    """

    def __init__(self, kind: str, *, plural: str | None = None) -> None:
        self.kind = kind
        self.plural = plural if plural is not None else kind + "s"
        self._entries: Dict[str, T] = {}

    def register(self, name: str, value: T, *, replace: bool = False) -> T:
        """Add ``value`` under ``name``; refuse duplicates unless ``replace``."""
        if not name:
            raise ConfigurationError(f"{self.kind} name must be a non-empty string")
        if name in self._entries and not replace:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered; "
                "pass replace=True to override"
            )
        self._entries[name] = value
        return value

    def get(self, name: str) -> T:
        """Look up ``name`` or raise listing the registered names."""
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; registered {self.plural}: "
                f"{self.available()}"
            ) from None

    def available(self) -> List[str]:
        """Sorted registered names."""
        return sorted(self._entries)

    def unregister(self, name: str) -> None:
        """Remove ``name`` if present (no error when absent)."""
        self._entries.pop(name, None)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, entries={self.available()})"
