"""Proactive recovery: periodically reboot replicas to flush intrusions.

The "6" configuration reserves capacity for one replica being down for
proactive recovery at any time (k=1, Sousa et al. 2010).  The scheduler
cycles through replicas round-robin: each is taken offline for
``recovery_duration_ms`` (its key material and code image are refreshed),
then brought back and resynchronized from its peers.
"""

from __future__ import annotations

from repro.bft.network_sim import SimNetwork
from repro.bft.replica import Replica
from repro.des.simulator import Simulator
from repro.errors import ProtocolError


class ProactiveRecoveryScheduler:
    """Round-robin rejuvenation of replicas."""

    def __init__(
        self,
        simulator: Simulator,
        network: SimNetwork,
        replicas: list[Replica],
        period_ms: float = 2000.0,
        recovery_duration_ms: float = 300.0,
    ) -> None:
        if period_ms <= recovery_duration_ms:
            raise ProtocolError(
                "recovery period must exceed the recovery duration, or "
                "multiple replicas would be down simultaneously"
            )
        if not replicas:
            raise ProtocolError("no replicas to recover")
        self.simulator = simulator
        self.network = network
        self.replicas = list(replicas)
        self.period_ms = period_ms
        self.recovery_duration_ms = recovery_duration_ms
        self._next_index = 0
        self.recoveries_completed = 0
        self.currently_recovering: int | None = None

    def start(self) -> None:
        """Begin the rejuvenation cycle."""
        self.simulator.schedule(self.period_ms, self._recover_next)

    def _recover_next(self) -> None:
        replica = self.replicas[self._next_index]
        self._next_index = (self._next_index + 1) % len(self.replicas)
        # Skip replicas that are already down for another reason (flooded
        # site); recovering them would double-count the k budget.
        if self.network.is_down(replica.id):
            self.simulator.schedule(self.period_ms, self._recover_next)
            return
        self.currently_recovering = replica.id
        self.network.set_down(replica.id, True)
        self.simulator.schedule(
            self.recovery_duration_ms, lambda: self._finish(replica)
        )

    def _finish(self, replica: Replica) -> None:
        self.network.set_down(replica.id, False)
        self.currently_recovering = None
        self.recoveries_completed += 1
        replica.begin_resync()
        self.simulator.schedule(self.period_ms, self._recover_next)
