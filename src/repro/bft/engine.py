"""The BFT cluster harness: build, fault-inject, run, and check.

Assembles replicas across sites on the simulated network, drives a client
workload, optionally injects the compound-threat faults (flooded sites,
isolated sites, Byzantine replicas, proactive recovery), and checks the
two properties the analysis framework's Table-I rules assume:

* **safety** -- all correct replicas execute the same digest at every
  sequence number they share, and
* **liveness** -- correct replicas in connected, surviving sites execute
  the whole workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bft.messages import ClientRequest
from repro.bft.network_sim import NetworkParams, SimNetwork
from repro.bft.recovery import ProactiveRecoveryScheduler
from repro.bft.replica import Behavior, Replica
from repro.des.simulator import Simulator
from repro.errors import ProtocolError
from repro.scada.replication import replicas_for_safety


@dataclass
class ClusterSpec:
    """Shape of a replication deployment for the engine."""

    sites: tuple[str, ...] = ("control-center",)
    replicas_per_site: int = 6
    f: int = 1
    k: int = 1
    request_timeout_ms: float = 400.0
    network: NetworkParams = field(default_factory=NetworkParams)

    def __post_init__(self) -> None:
        if not self.sites:
            raise ProtocolError("cluster needs at least one site")
        if self.replicas_per_site < 1:
            raise ProtocolError("each site needs at least one replica")
        total = len(self.sites) * self.replicas_per_site
        if total < replicas_for_safety(self.f, self.k):
            raise ProtocolError(
                f"{total} replicas cannot tolerate f={self.f}, k={self.k}"
            )

    @property
    def total_replicas(self) -> int:
        return len(self.sites) * self.replicas_per_site


@dataclass(frozen=True)
class RunReport:
    """Outcome of one workload run."""

    requests_submitted: int
    executed_counts: dict[int, int]
    safety_ok: bool
    live_replica_ids: tuple[int, ...]
    messages_sent: int
    messages_delivered: int
    recoveries_completed: int

    @property
    def ordered_everywhere(self) -> bool:
        """All live correct replicas executed the full workload."""
        return all(
            self.executed_counts[rid] >= self.requests_submitted
            for rid in self.live_replica_ids
        )


class BFTCluster:
    """A deployed replication group under simulation."""

    def __init__(
        self,
        spec: ClusterSpec | None = None,
        byzantine: dict[int, Behavior] | None = None,
    ) -> None:
        self.spec = spec or ClusterSpec()
        byzantine = byzantine or {}
        if len(byzantine) > self.spec.f:
            raise ProtocolError(
                f"{len(byzantine)} Byzantine replicas exceed the tolerance "
                f"f={self.spec.f}; the run would be outside the model"
            )
        self.simulator = Simulator()
        site_of = {}
        for index, site in enumerate(self.spec.sites):
            for j in range(self.spec.replicas_per_site):
                site_of[index * self.spec.replicas_per_site + j] = site
        self.network = SimNetwork(self.simulator, site_of, self.spec.network)
        n = self.spec.total_replicas
        self.replicas: list[Replica] = []
        for rid in range(n):
            behavior = byzantine.get(rid, Behavior.CORRECT)
            replica = Replica(
                rid,
                n,
                self.spec.f,
                self.spec.k,
                self.network,
                self.simulator,
                behavior=behavior,
                request_timeout_ms=self.spec.request_timeout_ms,
            )
            self.network.attach(rid, replica.on_message)
            self.replicas.append(replica)
        self.recovery: ProactiveRecoveryScheduler | None = None
        self._submitted = 0

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def flood_site(self, site: str) -> None:
        """Hurricane damage: every replica in the site goes down."""
        for replica in self.replicas:
            if self.network.site_of[replica.id] == site:
                self.network.set_down(replica.id, True)

    def isolate_site(self, site: str) -> None:
        """Network attack: the site cannot talk to the other sites."""
        self.network.isolate_site(site)

    def enable_proactive_recovery(
        self, period_ms: float = 2000.0, recovery_duration_ms: float = 300.0
    ) -> None:
        correct = [r for r in self.replicas if r.is_correct]
        self.recovery = ProactiveRecoveryScheduler(
            self.simulator, self.network, correct, period_ms, recovery_duration_ms
        )
        self.recovery.start()

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    def submit_workload(
        self, count: int, interval_ms: float = 50.0, start_ms: float = 0.0
    ) -> None:
        """Schedule ``count`` client requests, one every ``interval_ms``."""
        if count < 1:
            raise ProtocolError("workload needs at least one request")
        for i in range(count):
            request = ClientRequest(self._submitted + i, f"update-{self._submitted + i}")

            def submit(req: ClientRequest = request) -> None:
                # The client broadcasts to all replicas (the standard
                # intrusion-tolerant client pattern: it cannot trust any
                # single replica to forward).
                for replica in self.replicas:
                    if not self.network.is_down(replica.id):
                        replica.submit(req)

            self.simulator.schedule(start_ms + i * interval_ms, submit)
        self._submitted += count

    def run(self, duration_ms: float = 10_000.0) -> RunReport:
        """Run the simulation and report outcome + property checks."""
        self.simulator.run(until=duration_ms)
        return RunReport(
            requests_submitted=self._submitted,
            executed_counts={r.id: len(r.executed) for r in self.replicas},
            safety_ok=self.check_safety(),
            live_replica_ids=tuple(r.id for r in self.live_correct_replicas()),
            messages_sent=self.network.messages_sent,
            messages_delivered=self.network.messages_delivered,
            recoveries_completed=(
                self.recovery.recoveries_completed if self.recovery else 0
            ),
        )

    # ------------------------------------------------------------------
    # Property checks
    # ------------------------------------------------------------------
    def live_correct_replicas(self) -> list[Replica]:
        """Correct replicas that are up and in a non-isolated site."""
        isolated = self.network._isolated_sites
        return [
            r
            for r in self.replicas
            if r.is_correct
            and not self.network.is_down(r.id)
            and self.network.site_of[r.id] not in isolated
        ]

    def check_safety(self) -> bool:
        """No two correct replicas disagree at any executed sequence."""
        by_seq: dict[int, str] = {}
        for replica in self.replicas:
            if not replica.is_correct:
                continue
            for seq, digest, _ in replica.executed:
                if by_seq.setdefault(seq, digest) != digest:
                    return False
        return True

    def executed_payloads(self, replica_id: int) -> list[str]:
        return [payload for _, _, payload in self.replicas[replica_id].executed]
