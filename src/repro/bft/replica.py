"""The replica state machine of the intrusion-tolerant ordering protocol.

A simulation-faithful PBFT-style replica sized ``n = 3f + 2k + 1`` with
quorum ``2f + k + 1``: three-phase ordering (pre-prepare / prepare /
commit), a simplified view change that rotates out an unresponsive or
equivocating primary, quorum checkpointing with protocol-state garbage
collection, and a state-sync path used after proactive recovery.  The
goal is to *demonstrate* the fault-tolerance properties the analysis
framework assumes of the "6"-family architectures -- safety with up to
``f`` Byzantine replicas and ``k`` concurrently recovering -- not to be
a deployable implementation (digests stand in for cryptography).

Byzantine behaviours modelled:

* ``SILENT``     -- the replica sends nothing at all (fail-stop-like, but
  unannounced).
* ``EQUIVOCATE`` -- as primary it proposes conflicting orderings to
  different halves of the cluster; as backup it votes for every digest it
  sees.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable

from repro.bft.messages import (
    Checkpoint,
    ClientRequest,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    PreparedProof,
    SyncRequest,
    SyncResponse,
    ViewChange,
    digest_of,
)
from repro.des.simulator import EventHandle, Simulator
from repro.errors import ProtocolError
from repro.scada.replication import quorum_size, replicas_for_safety

if TYPE_CHECKING:
    from repro.bft.network_sim import SimNetwork


class Behavior(enum.Enum):
    CORRECT = "correct"
    SILENT = "silent"
    EQUIVOCATE = "equivocate"


class Replica:
    """One replica of the ordering group."""

    def __init__(
        self,
        replica_id: int,
        n: int,
        f: int,
        k: int,
        network: "SimNetwork",
        simulator: Simulator,
        behavior: Behavior = Behavior.CORRECT,
        request_timeout_ms: float = 400.0,
        max_timeout_attempts: int = 10,
        checkpoint_interval: int = 20,
    ) -> None:
        if n < replicas_for_safety(f, k):
            raise ProtocolError(
                f"n={n} too small for f={f}, k={k} "
                f"(need {replicas_for_safety(f, k)})"
            )
        if not 0 <= replica_id < n:
            raise ProtocolError(f"replica id {replica_id} outside [0, {n})")
        self.id = replica_id
        self.n = n
        self.f = f
        self.k = k
        self.quorum = quorum_size(n, f)
        self.network = network
        self.simulator = simulator
        self.behavior = behavior
        self.request_timeout_ms = request_timeout_ms
        self.max_timeout_attempts = max_timeout_attempts
        if checkpoint_interval < 1:
            raise ProtocolError("checkpoint interval must be positive")
        self.checkpoint_interval = checkpoint_interval

        self.view = 0
        self.next_seq = 0
        self.accepted: dict[int, PrePrepare] = {}
        self.requests: dict[str, ClientRequest] = {}
        self.prepare_votes: dict[tuple[int, int, str], set[int]] = {}
        self.commit_votes: dict[tuple[int, int, str], set[int]] = {}
        self.commit_sent: set[tuple[int, int, str]] = set()
        self.committed: dict[int, tuple[str, str]] = {}  # seq -> (digest, payload)
        self.executed: list[tuple[int, str, str]] = []
        self.executed_digests: set[str] = set()
        self.next_exec = 0
        self.pending: dict[int, ClientRequest] = {}
        self.timers: dict[int, EventHandle] = {}
        self.timeout_attempts: dict[int, int] = {}
        self.view_votes: dict[int, dict[int, ViewChange]] = {}
        self.voted_for_view: set[int] = set()
        self.max_voted_view = 0
        self.announced_views: set[int] = set()
        self.sync_responses: dict[int, SyncResponse] = {}
        self.checkpoint_votes: dict[tuple[int, str], set[int]] = {}
        self.stable_checkpoint_seq = 0
        # Optional hook fired on each fresh execution (used by the
        # client's reply path): on_execute(seq, digest, payload).
        self.on_execute: "Callable[[int, str, str], None] | None" = None

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    def primary_of(self, view: int) -> int:
        return view % self.n

    @property
    def is_primary(self) -> bool:
        return self.primary_of(self.view) == self.id

    @property
    def is_correct(self) -> bool:
        return self.behavior is Behavior.CORRECT

    @property
    def _view_changing(self) -> bool:
        """Whether this replica has voted to leave its current view.

        While view-changing, a correct replica stops participating in
        ordering (the PBFT rule that protects the quorum-intersection
        argument across views).
        """
        return self.max_voted_view > self.view

    # ------------------------------------------------------------------
    # Client path
    # ------------------------------------------------------------------
    def submit(self, request: ClientRequest) -> None:
        """Client hands the request to this replica."""
        if self.behavior is Behavior.SILENT:
            return
        digest = digest_of(request)
        self.requests[digest] = request
        if self._already_ordered(digest):
            return
        self.pending[request.request_id] = request
        self._arm_timer(request)
        if self.is_primary:
            self._propose(request)

    def _already_ordered(self, digest: str) -> bool:
        return any(d == digest for d, _ in self.committed.values()) or any(
            d == digest for _, d, _ in self.executed
        )

    def _arm_timer(self, request: ClientRequest) -> None:
        if request.request_id in self.timers:
            self.timers[request.request_id].cancel()
        self.timers[request.request_id] = self.simulator.schedule(
            self.request_timeout_ms, lambda: self._on_timeout(request.request_id)
        )

    def _on_timeout(self, request_id: int) -> None:
        if request_id not in self.pending or not self.is_correct:
            return
        attempts = self.timeout_attempts.get(request_id, 0) + 1
        self.timeout_attempts[request_id] = attempts
        if attempts > self.max_timeout_attempts:
            # Give up: an unorderable request (e.g. a forged duplicate a
            # Byzantine primary injected into half the cluster) must not
            # drive view changes forever.  Real clients retransmit.
            self.pending.pop(request_id, None)
            timer = self.timers.pop(request_id, None)
            if timer is not None:
                timer.cancel()
            return
        # The current primary failed us: vote to rotate.  Escalate past
        # views already voted for, so a run of failed primaries (e.g. an
        # entire isolated site) is eventually skipped.
        self._vote_view_change(max(self.view, self.max_voted_view) + 1)
        request = self.pending[request_id]
        self._arm_timer(request)

    # ------------------------------------------------------------------
    # Ordering: pre-prepare / prepare / commit
    # ------------------------------------------------------------------
    def _propose(self, request: ClientRequest) -> None:
        digest = digest_of(request)
        seq = self.next_seq
        self.next_seq += 1
        if self.behavior is Behavior.EQUIVOCATE:
            # Conflicting proposals to the two halves of the cluster.
            fake = ClientRequest(request.request_id, request.payload + "-forged")
            pp_a = PrePrepare(self.view, seq, digest, request, self.id)
            pp_b = PrePrepare(self.view, seq, digest_of(fake), fake, self.id)
            for dst in range(self.n):
                self.network.send(self.id, dst, pp_a if dst % 2 == 0 else pp_b)
            return
        self.network.broadcast(
            self.id, PrePrepare(self.view, seq, digest, request, self.id)
        )

    def on_message(self, src: int, message: object) -> None:
        if self.behavior is Behavior.SILENT:
            return
        if isinstance(message, PrePrepare):
            self._handle_preprepare(message)
        elif isinstance(message, Prepare):
            self._handle_prepare(message)
        elif isinstance(message, Commit):
            self._handle_commit(message)
        elif isinstance(message, Checkpoint):
            self._handle_checkpoint(message)
        elif isinstance(message, ViewChange):
            self._handle_viewchange(message)
        elif isinstance(message, NewView):
            self._handle_newview(message)
        elif isinstance(message, SyncRequest):
            self._handle_sync_request(message)
        elif isinstance(message, SyncResponse):
            self._handle_sync_response(message)
        else:
            raise ProtocolError(f"unknown message {type(message).__name__}")

    def _handle_preprepare(self, pp: PrePrepare) -> None:
        if pp.view != self.view or pp.sender != self.primary_of(pp.view):
            return
        if self._view_changing:
            return
        existing = self.accepted.get(pp.seq)
        if existing is not None and existing.digest != pp.digest:
            # Equivocating primary caught red-handed: demand rotation.
            if self.is_correct:
                self._vote_view_change(self.view + 1)
            return
        self.accepted[pp.seq] = pp
        self.requests[pp.digest] = pp.request
        self.pending.setdefault(pp.request.request_id, pp.request)
        if pp.request.request_id not in self.timers:
            self._arm_timer(pp.request)
        # The pre-prepare counts as the primary's own prepare vote.
        self._record_prepare(pp.view, pp.seq, pp.digest, pp.sender)
        if self.behavior is Behavior.EQUIVOCATE:
            # Vote for everything: maximum mischief within f replicas.
            self.network.broadcast(
                self.id, Prepare(pp.view, pp.seq, pp.digest, self.id)
            )
            return
        self.network.broadcast(self.id, Prepare(pp.view, pp.seq, pp.digest, self.id))

    def _handle_prepare(self, prepare: Prepare) -> None:
        if prepare.view != self.view or self._view_changing:
            return
        self._record_prepare(prepare.view, prepare.seq, prepare.digest, prepare.sender)

    def _record_prepare(self, view: int, seq: int, digest: str, sender: int) -> None:
        key = (view, seq, digest)
        votes = self.prepare_votes.setdefault(key, set())
        votes.add(sender)
        # A replica's own prepare is implicit once it accepted the
        # pre-prepare for this digest.
        accepted = self.accepted.get(seq)
        if accepted is not None and accepted.digest == digest:
            votes.add(self.id)
        if len(votes) >= self.quorum and key not in self.commit_sent:
            self.commit_sent.add(key)
            self.network.broadcast(self.id, Commit(view, seq, digest, self.id))

    def _handle_commit(self, commit: Commit) -> None:
        if commit.view != self.view or self._view_changing:
            return
        key = (commit.view, commit.seq, commit.digest)
        votes = self.commit_votes.setdefault(key, set())
        votes.add(commit.sender)
        if key in self.commit_sent:
            votes.add(self.id)
        if len(votes) >= self.quorum:
            self._mark_committed(commit.seq, commit.digest)

    def _mark_committed(self, seq: int, digest: str) -> None:
        previous = self.committed.get(seq)
        if previous is not None and previous[0] != digest:
            raise ProtocolError(
                f"replica {self.id}: conflicting commits at seq {seq} "
                f"({previous[0]} vs {digest}) -- quorum intersection violated"
            )
        request = self.requests.get(digest)
        payload = request.payload if request is not None else ""
        self.committed[seq] = (digest, payload)
        self._try_execute()

    def _try_execute(self) -> None:
        while self.next_exec in self.committed:
            digest, payload = self.committed[self.next_exec]
            # Apply-once semantics: a request re-ordered at a second
            # sequence number after a view change is not re-executed.
            if digest not in self.executed_digests:
                self.executed_digests.add(digest)
                self.executed.append((self.next_exec, digest, payload))
                if self.on_execute is not None and self.is_correct:
                    self.on_execute(self.next_exec, digest, payload)
            request = self.requests.get(digest)
            if request is not None:
                self.pending.pop(request.request_id, None)
                timer = self.timers.pop(request.request_id, None)
                if timer is not None:
                    timer.cancel()
            self.next_exec += 1
            if (
                self.next_exec % self.checkpoint_interval == 0
                and self.is_correct
            ):
                self._emit_checkpoint(self.next_exec)

    # ------------------------------------------------------------------
    # View change
    # ------------------------------------------------------------------
    def _prepared_proofs(self) -> tuple[PreparedProof, ...]:
        proofs: dict[int, PreparedProof] = {}
        for (view, seq, digest), votes in self.prepare_votes.items():
            if len(votes) >= self.quorum and digest in self.requests:
                current = proofs.get(seq)
                if current is None or view > current.view:
                    proofs[seq] = PreparedProof(
                        view, seq, digest, self.requests[digest]
                    )
        return tuple(proofs[s] for s in sorted(proofs))

    def _vote_view_change(self, new_view: int) -> None:
        if new_view <= self.view or new_view in self.voted_for_view:
            return
        self.voted_for_view.add(new_view)
        self.max_voted_view = max(self.max_voted_view, new_view)
        vc = ViewChange(new_view, self.id, self._prepared_proofs())
        self.network.broadcast(self.id, vc)

    def _handle_viewchange(self, vc: ViewChange) -> None:
        if vc.new_view <= self.view:
            return
        votes = self.view_votes.setdefault(vc.new_view, {})
        votes[vc.sender] = vc
        # Join once f+1 others want out: someone correct has evidence.
        if len(votes) > self.f and self.is_correct and vc.new_view > self.max_voted_view:
            self._vote_view_change(vc.new_view)
        if (
            len(votes) >= self.quorum
            and self.primary_of(vc.new_view) == self.id
            and vc.new_view not in self.announced_views
            and vc.new_view >= self.max_voted_view
            and self.is_correct
        ):
            self._announce_new_view(vc.new_view, votes)

    def _announce_new_view(self, new_view: int, votes: dict[int, ViewChange]) -> None:
        self.announced_views.add(new_view)
        self._enter_view(new_view)
        # Re-propose every prepared entry (highest view wins per seq).
        best: dict[int, PreparedProof] = {}
        for vc in votes.values():
            for proof in vc.prepared:
                current = best.get(proof.seq)
                if current is None or proof.view > current.view:
                    best[proof.seq] = proof
        preprepares = []
        max_seq = self.next_exec - 1
        for seq in sorted(best):
            proof = best[seq]
            max_seq = max(max_seq, seq)
            preprepares.append(
                PrePrepare(new_view, seq, proof.digest, proof.request, self.id)
            )
        self.next_seq = max_seq + 1
        self.network.broadcast(
            self.id, NewView(new_view, self.id, tuple(preprepares))
        )
        # Propose requests that never made it anywhere.
        covered = {digest_of(p.request) for p in best.values()}
        covered |= {d for d, _ in self.committed.values()}
        for request in sorted(self.pending.values(), key=lambda r: r.request_id):
            if digest_of(request) not in covered:
                self._propose(request)

    def _enter_view(self, new_view: int) -> None:
        self.view = new_view
        self.max_voted_view = max(self.max_voted_view, new_view)
        self.accepted = {
            seq: pp for seq, pp in self.accepted.items() if seq < self.next_exec
        }

    def _handle_newview(self, nv: NewView) -> None:
        if nv.view <= self.view or nv.sender != self.primary_of(nv.view):
            return
        if nv.view < self.max_voted_view:
            # Already committed to a later view change; joining an older
            # view would resurrect the quorum we abandoned.
            return
        self._enter_view(nv.view)
        for request in self.pending.values():
            self._arm_timer(request)
        for pp in nv.preprepares:
            self._handle_preprepare(pp)

    # ------------------------------------------------------------------
    # Checkpointing and log truncation
    # ------------------------------------------------------------------
    def _log_digest_at(self, seq: int) -> str:
        """Summary digest of the executed prefix ending before ``seq``."""
        last = ""
        for executed_seq, digest, _ in reversed(self.executed):
            if executed_seq < seq:
                last = digest
                break
        return f"ckpt:{seq}:{last}"

    def _emit_checkpoint(self, seq: int) -> None:
        self.network.broadcast(
            self.id, Checkpoint(seq, self._log_digest_at(seq), self.id)
        )

    def _handle_checkpoint(self, checkpoint: Checkpoint) -> None:
        if checkpoint.seq <= self.stable_checkpoint_seq:
            return
        key = (checkpoint.seq, checkpoint.log_digest)
        votes = self.checkpoint_votes.setdefault(key, set())
        votes.add(checkpoint.sender)
        if len(votes) >= self.quorum:
            self._stabilize_checkpoint(checkpoint.seq)

    def _stabilize_checkpoint(self, seq: int) -> None:
        """Quorum agrees the prefix below ``seq`` is durable: truncate."""
        self.stable_checkpoint_seq = max(self.stable_checkpoint_seq, seq)
        self.accepted = {
            s: pp for s, pp in self.accepted.items() if s >= seq
        }
        self.prepare_votes = {
            k: v for k, v in self.prepare_votes.items() if k[1] >= seq
        }
        self.commit_votes = {
            k: v for k, v in self.commit_votes.items() if k[1] >= seq
        }
        self.commit_sent = {k for k in self.commit_sent if k[1] >= seq}
        self.checkpoint_votes = {
            k: v for k, v in self.checkpoint_votes.items() if k[0] > seq
        }
        # Committed entries below the stable checkpoint are reflected in
        # the executed log; drop the staging copies.
        self.committed = {
            s: entry for s, entry in self.committed.items() if s >= seq
        }

    # ------------------------------------------------------------------
    # Recovery state sync
    # ------------------------------------------------------------------
    def begin_resync(self) -> None:
        """Called after proactive recovery: fetch missed state from peers."""
        if self.behavior is Behavior.SILENT:
            return
        self.sync_responses = {}
        self.network.broadcast(self.id, SyncRequest(self.id), include_self=False)

    def _handle_sync_request(self, request: SyncRequest) -> None:
        response = SyncResponse(self.id, tuple(self.executed))
        self.network.send(self.id, request.sender, response)

    def _handle_sync_response(self, response: SyncResponse) -> None:
        self.sync_responses[response.sender] = response
        # Adopt any entry vouched for by more than f peers.
        votes: dict[tuple[int, str, str], int] = {}
        for resp in self.sync_responses.values():
            for entry in resp.executed:
                votes[entry] = votes.get(entry, 0) + 1
        for (seq, digest, payload), count in sorted(votes.items()):
            if count > self.f and seq not in self.committed:
                self.committed[seq] = (digest, payload)
        self._try_execute()
