"""The SCADA client side of the replication protocol.

An intrusion-tolerant client cannot trust any single replica: it
broadcasts its request to all replicas and accepts an outcome only once
``f + 1`` replicas report the *same* execution -- at least one of them is
correct, so the reported outcome really was ordered.  This module
implements that confirmation rule and measures end-to-end latency, the
metric operators experience as "command round-trip time".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bft.messages import ClientRequest, digest_of
from repro.bft.replica import Replica
from repro.des.simulator import Simulator
from repro.errors import ProtocolError


@dataclass
class _PendingRequest:
    submitted_at: float
    replies: dict[str, set[int]] = field(default_factory=dict)
    confirmed_at: float | None = None
    confirmed_digest: str | None = None


class SCADAClient:
    """Broadcasts requests and confirms them with an f+1 reply quorum."""

    def __init__(
        self,
        simulator: Simulator,
        replicas: list[Replica],
        f: int,
        reply_latency_ms: float = 1.0,
    ) -> None:
        if not replicas:
            raise ProtocolError("client needs replicas to talk to")
        if f < 0:
            raise ProtocolError("f cannot be negative")
        if reply_latency_ms <= 0:
            raise ProtocolError("reply latency must be positive")
        self.simulator = simulator
        self.replicas = list(replicas)
        self.f = f
        self.reply_latency_ms = reply_latency_ms
        self._pending: dict[int, _PendingRequest] = {}
        self._next_id = 0
        for replica in self.replicas:
            self._hook(replica)

    def _hook(self, replica: Replica) -> None:
        previous = replica.on_execute

        def forward(seq: int, digest: str, payload: str) -> None:
            if previous is not None:
                previous(seq, digest, payload)
            request_id = _request_id_of(digest)
            if request_id is None or request_id not in self._pending:
                return
            self.simulator.schedule(
                self.reply_latency_ms,
                lambda: self.receive_reply(replica.id, request_id, digest),
            )

        replica.on_execute = forward

    # ------------------------------------------------------------------
    def submit(self, payload: str, at_ms: float = 0.0) -> int:
        """Schedule a request broadcast; returns the request id."""
        request_id = self._next_id
        self._next_id += 1
        request = ClientRequest(request_id, payload)

        def broadcast() -> None:
            self._pending[request_id] = _PendingRequest(
                submitted_at=self.simulator.now
            )
            for replica in self.replicas:
                if not replica.network.is_down(replica.id):
                    replica.submit(request)

        self.simulator.schedule_at(at_ms, broadcast)
        return request_id

    def receive_reply(self, replica_id: int, request_id: int, digest: str) -> None:
        """Record one replica's execution report."""
        pending = self._pending.get(request_id)
        if pending is None or pending.confirmed_at is not None:
            return
        voters = pending.replies.setdefault(digest, set())
        voters.add(replica_id)
        if len(voters) >= self.f + 1:
            pending.confirmed_at = self.simulator.now
            pending.confirmed_digest = digest

    # ------------------------------------------------------------------
    def is_confirmed(self, request_id: int) -> bool:
        pending = self._pending.get(request_id)
        return pending is not None and pending.confirmed_at is not None

    def latency_ms(self, request_id: int) -> float:
        pending = self._pending.get(request_id)
        if pending is None or pending.confirmed_at is None:
            raise ProtocolError(f"request {request_id} is not confirmed")
        return pending.confirmed_at - pending.submitted_at

    @property
    def confirmed_count(self) -> int:
        return sum(1 for p in self._pending.values() if p.confirmed_at is not None)

    @property
    def submitted_count(self) -> int:
        return len(self._pending)

    def latency_stats_ms(self) -> dict[str, float]:
        """Mean / median / p95 confirmation latency over confirmed requests."""
        latencies = [
            p.confirmed_at - p.submitted_at
            for p in self._pending.values()
            if p.confirmed_at is not None
        ]
        if not latencies:
            raise ProtocolError("no confirmed requests to report on")
        arr = np.array(latencies)
        return {
            "mean": float(np.mean(arr)),
            "median": float(np.median(arr)),
            "p95": float(np.quantile(arr, 0.95)),
        }


def _request_id_of(digest: str) -> int | None:
    """Recover the request id from a digest (``d<id>:<payload>``)."""
    if not digest.startswith("d"):
        return None
    head = digest[1:].split(":", 1)[0]
    try:
        return int(head)
    except ValueError:
        return None
