"""Protocol messages for the intrusion-tolerant replication engine.

The engine simulates a PBFT-style three-phase ordering protocol (the
lineage behind the paper's "6" and "6+6+6" configurations): pre-prepare /
prepare / commit, plus a simplified view change and recovery state sync.
Digests stand in for cryptographic hashes; in the simulation they are
plain strings, which is sound because the network model delivers messages
unmodified (the adversary acts through Byzantine *replicas*, not the
channel).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClientRequest:
    """An update submitted by the SCADA client (e.g. a control command)."""

    request_id: int
    payload: str


@dataclass(frozen=True)
class PrePrepare:
    """Primary's ordering proposal for a request."""

    view: int
    seq: int
    digest: str
    request: ClientRequest
    sender: int


@dataclass(frozen=True)
class Prepare:
    """A replica's echo that it accepted the primary's proposal."""

    view: int
    seq: int
    digest: str
    sender: int


@dataclass(frozen=True)
class Commit:
    """A replica's vote to commit a prepared proposal."""

    view: int
    seq: int
    digest: str
    sender: int


@dataclass(frozen=True)
class PreparedProof:
    """Evidence that (seq, digest) was prepared in some view."""

    view: int
    seq: int
    digest: str
    request: ClientRequest


@dataclass(frozen=True)
class ViewChange:
    """A replica's vote to move to ``new_view``."""

    new_view: int
    sender: int
    prepared: tuple[PreparedProof, ...] = field(default=())


@dataclass(frozen=True)
class NewView:
    """New primary's announcement, carrying entries to re-propose."""

    view: int
    sender: int
    preprepares: tuple[PrePrepare, ...]


@dataclass(frozen=True)
class Checkpoint:
    """A replica's vote that its log prefix up to ``seq`` is stable."""

    seq: int
    log_digest: str
    sender: int


@dataclass(frozen=True)
class SyncRequest:
    """A recovering replica asking peers for the executed log."""

    sender: int


@dataclass(frozen=True)
class SyncResponse:
    """A peer's copy of its executed log for a recovering replica."""

    sender: int
    executed: tuple[tuple[int, str, str], ...]  # (seq, digest, payload)


Message = (
    ClientRequest
    | PrePrepare
    | Prepare
    | Commit
    | Checkpoint
    | ViewChange
    | NewView
    | SyncRequest
    | SyncResponse
)


def digest_of(request: ClientRequest) -> str:
    """The stand-in digest of a request (stable and collision-free here)."""
    return f"d{request.request_id}:{request.payload}"
