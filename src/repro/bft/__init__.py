"""Simulated intrusion-tolerant (BFT) replication engine."""

from repro.bft.client import SCADAClient
from repro.bft.engine import BFTCluster, ClusterSpec, RunReport
from repro.bft.messages import (
    ClientRequest,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    SyncRequest,
    SyncResponse,
    ViewChange,
    digest_of,
)
from repro.bft.network_sim import NetworkParams, SimNetwork
from repro.bft.recovery import ProactiveRecoveryScheduler
from repro.bft.replica import Behavior, Replica

__all__ = [
    "SCADAClient",
    "BFTCluster",
    "ClusterSpec",
    "RunReport",
    "Behavior",
    "Replica",
    "ProactiveRecoveryScheduler",
    "SimNetwork",
    "NetworkParams",
    "ClientRequest",
    "PrePrepare",
    "Prepare",
    "Commit",
    "ViewChange",
    "NewView",
    "SyncRequest",
    "SyncResponse",
    "digest_of",
]
