"""Simulated message network for the replication engine.

Replicas are attached to *sites* (control centers / data centers).  The
network delivers every message after a fixed latency -- intra-site
traffic faster than inter-site -- unless a drop rule applies:

* a **down** replica (crashed, flooded, or mid-recovery) neither sends
  nor receives;
* an **isolated site** exchanges no traffic with other sites (the paper's
  site-isolation attack), while intra-site traffic still flows.

Beyond those clean binary faults, :class:`NetworkParams` scripts *lossy*
inter-site links: a per-message drop probability, a duplication
probability (the duplicate arrives one extra latency later), and uniform
latency jitter.  All three draw from one generator seeded by
``params.seed``, so a run with the same parameters and send sequence
loses, duplicates, and delays exactly the same messages every time --
BFT tests can therefore assert hard outcomes under degraded links
instead of sampling flaky ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.des.simulator import Simulator
from repro.errors import NetworkModelError
from repro.obs.observer import current as current_observer


@dataclass(frozen=True)
class NetworkParams:
    intra_site_latency_ms: float = 1.0
    inter_site_latency_ms: float = 10.0
    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    jitter_ms: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.intra_site_latency_ms <= 0 or self.inter_site_latency_ms <= 0:
            raise NetworkModelError("latencies must be positive")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise NetworkModelError("loss probability must be within [0, 1]")
        if not 0.0 <= self.duplicate_probability <= 1.0:
            raise NetworkModelError("duplicate probability must be within [0, 1]")
        if self.jitter_ms < 0:
            raise NetworkModelError("latency jitter cannot be negative")

    @property
    def lossy(self) -> bool:
        """Whether any stochastic degradation knob is turned on."""
        return (
            self.loss_probability > 0
            or self.duplicate_probability > 0
            or self.jitter_ms > 0
        )


class SimNetwork:
    """Delivers messages between replicas over simulated time."""

    def __init__(
        self,
        simulator: Simulator,
        site_of: dict[int, str],
        params: NetworkParams | None = None,
    ) -> None:
        if not site_of:
            raise NetworkModelError("network needs at least one replica")
        self.simulator = simulator
        self.site_of = dict(site_of)
        self.params = params or NetworkParams()
        self._handlers: dict[int, Callable[[int, object], None]] = {}
        self._down: set[int] = set()
        self._isolated_sites: set[str] = set()
        self._rng = np.random.default_rng(self.params.seed)
        # Bound at construction: per-message observer calls are skipped
        # entirely when nobody was observing at network build time.
        self._obs = current_observer()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0

    # ------------------------------------------------------------------
    # Wiring and fault injection
    # ------------------------------------------------------------------
    def attach(self, replica_id: int, handler: Callable[[int, object], None]) -> None:
        """Register the message handler of a replica."""
        if replica_id not in self.site_of:
            raise NetworkModelError(f"replica {replica_id} has no site")
        self._handlers[replica_id] = handler

    def set_down(self, replica_id: int, down: bool) -> None:
        """Crash/restore a replica (flood damage or proactive recovery)."""
        if replica_id not in self.site_of:
            raise NetworkModelError(f"unknown replica {replica_id}")
        if down:
            self._down.add(replica_id)
        else:
            self._down.discard(replica_id)

    def is_down(self, replica_id: int) -> bool:
        return replica_id in self._down

    def isolate_site(self, site: str) -> None:
        """Cut a site off from all other sites (site-isolation attack)."""
        if site not in self.site_of.values():
            raise NetworkModelError(f"unknown site {site!r}")
        self._isolated_sites.add(site)

    def heal_site(self, site: str) -> None:
        self._isolated_sites.discard(site)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliverable(self, src: int, dst: int) -> bool:
        if src in self._down or dst in self._down:
            return False
        src_site = self.site_of[src]
        dst_site = self.site_of[dst]
        if src_site != dst_site and (
            src_site in self._isolated_sites or dst_site in self._isolated_sites
        ):
            return False
        return True

    def send(self, src: int, dst: int, message: object) -> None:
        """Deliver ``message`` from ``src`` to ``dst`` after the latency.

        Deliverability is evaluated at *delivery* time, so messages in
        flight when a site is isolated are dropped too (conservative).
        With lossy :class:`NetworkParams`, the message may additionally
        be dropped outright, duplicated (the copy arrives one extra
        base latency later), or delayed by uniform jitter -- all drawn
        deterministically from the seeded generator in send order.
        """
        if dst not in self._handlers:
            raise NetworkModelError(f"replica {dst} is not attached")
        self.messages_sent += 1
        same_site = self.site_of[src] == self.site_of[dst]
        latency = (
            self.params.intra_site_latency_ms
            if same_site
            else self.params.inter_site_latency_ms
        )
        copies = 1
        if self.params.lossy:
            # One draw per knob per send, in fixed order, keeps the fault
            # sequence a pure function of (seed, send order).
            p = self.params
            if p.loss_probability > 0 and self._rng.random() < p.loss_probability:
                copies = 0
            if (
                p.duplicate_probability > 0
                and self._rng.random() < p.duplicate_probability
            ):
                copies += copies and 1
            if p.jitter_ms > 0:
                latency += float(self._rng.uniform(0.0, p.jitter_ms))
        if self._obs.enabled:
            self._obs.inc("bft.messages_sent")
            self._obs.observe("bft.latency_ms", latency)
            if copies == 0:
                self._obs.inc("bft.messages_dropped")
            elif copies > 1:
                self._obs.inc("bft.messages_duplicated")
        if copies == 0:
            self.messages_dropped += 1
            return
        if copies > 1:
            self.messages_duplicated += 1

        def deliver() -> None:
            if not self._deliverable(src, dst):
                return
            self.messages_delivered += 1
            if self._obs.enabled:
                self._obs.inc("bft.messages_delivered")
            self._handlers[dst](src, message)

        for copy in range(copies):
            self.simulator.schedule(latency * (1 + copy), deliver)

    def publish_metrics(self) -> None:
        """Push the lifetime message totals to the observer's gauges."""
        obs = self._obs
        if not obs.enabled:
            return
        obs.set_gauge("bft.messages_sent_total", self.messages_sent)
        obs.set_gauge("bft.messages_delivered_total", self.messages_delivered)
        obs.set_gauge("bft.messages_dropped_total", self.messages_dropped)
        obs.set_gauge("bft.messages_duplicated_total", self.messages_duplicated)

    def broadcast(self, src: int, message: object, include_self: bool = True) -> None:
        """Send ``message`` to every attached replica (optionally self)."""
        for dst in sorted(self._handlers):
            if dst == src and not include_self:
                continue
            self.send(src, dst, message)
