"""Data-centric analysis of compound threats to power-grid SCADA systems.

A reproduction of Bommareddy et al., "Data-Centric Analysis of Compound
Threats to Critical Infrastructure Control Systems" (DSN-W 2022): a
compound threat model (hurricane + follow-on cyberattack), a data-centric
evaluation framework, and the Oahu, Hawaii case study -- together with
every substrate the analysis depends on (hurricane surge simulation,
synthetic island geography, SCADA architecture models, an
intrusion-tolerant replication engine, a WAN attack model, and a power
grid).

Quickstart::

    from repro import (
        CompoundThreatAnalysis, PAPER_CONFIGURATIONS, PAPER_SCENARIOS,
        PLACEMENT_WAIAU, standard_oahu_ensemble, format_matrix_report,
    )

    ensemble = standard_oahu_ensemble()         # 1000 realizations
    analysis = CompoundThreatAnalysis(ensemble)
    matrix = analysis.run_matrix(
        PAPER_CONFIGURATIONS, PLACEMENT_WAIAU, PAPER_SCENARIOS
    )
    print(format_matrix_report(matrix))
"""

from repro.core import (
    PAPER_SCENARIOS,
    CompoundThreatAnalysis,
    CyberAttackBudget,
    ExhaustiveAttacker,
    OperationalProfile,
    OperationalState,
    ProbabilisticAttacker,
    ScenarioMatrix,
    SystemState,
    ThreatScenario,
    WorstCaseAttacker,
    evaluate,
    format_matrix_report,
    get_scenario,
    initial_state,
)
from repro.geo import oahu_case_study
from repro.hazards import LogisticFragility, ThresholdFragility
from repro.hazards.hurricane import (
    EnsembleGenerator,
    HurricaneEnsemble,
    HurricaneScenarioSpec,
    standard_oahu_ensemble,
)
from repro.scada import (
    PAPER_CONFIGURATIONS,
    PLACEMENT_KAHE,
    PLACEMENT_WAIAU,
    ArchitectureSpec,
    FailoverPolicy,
    Placement,
    get_architecture,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core framework
    "CompoundThreatAnalysis",
    "OperationalState",
    "OperationalProfile",
    "ScenarioMatrix",
    "SystemState",
    "initial_state",
    "evaluate",
    "ThreatScenario",
    "CyberAttackBudget",
    "PAPER_SCENARIOS",
    "get_scenario",
    "WorstCaseAttacker",
    "ExhaustiveAttacker",
    "ProbabilisticAttacker",
    "format_matrix_report",
    # hazard substrate
    "HurricaneEnsemble",
    "HurricaneScenarioSpec",
    "EnsembleGenerator",
    "standard_oahu_ensemble",
    "ThresholdFragility",
    "LogisticFragility",
    # SCADA substrate
    "ArchitectureSpec",
    "PAPER_CONFIGURATIONS",
    "get_architecture",
    "Placement",
    "PLACEMENT_WAIAU",
    "PLACEMENT_KAHE",
    "FailoverPolicy",
    # geography
    "oahu_case_study",
]
