"""Data-centric analysis of compound threats to power-grid SCADA systems.

A reproduction of Bommareddy et al., "Data-Centric Analysis of Compound
Threats to Critical Infrastructure Control Systems" (DSN-W 2022): a
compound threat model (hurricane + follow-on cyberattack), a data-centric
evaluation framework, and the Oahu, Hawaii case study -- together with
every substrate the analysis depends on (hurricane surge simulation,
synthetic island geography, SCADA architecture models, an
intrusion-tolerant replication engine, a WAN attack model, and a power
grid).

Quickstart::

    from repro import StudyConfig, run_study

    result = run_study(StudyConfig())   # the paper's full Oahu matrix
    print(result.report())              # scenario x architecture tables
    print(result.run_report())          # stage timings + run counters

``run_study`` is the supported surface: one call generates the
1000-realization ensemble, runs every (scenario, architecture) cell,
and wires the observability layer (:mod:`repro.obs`) through each stage
-- pass ``manifest_out="run_manifest.json"`` to persist the run
manifest.  The building blocks it composes
(:func:`standard_oahu_ensemble`, :class:`CompoundThreatAnalysis`, ...)
remain exported for piecewise use; see ``docs/api_guide.md`` for the
migration table.

The scenario catalog names studies instead of wiring objects:
``StudyConfig(region="oahu", hazard="earthquake")`` selects a registered
:class:`Region` and hazard family, and :func:`register_scenario_pack`
adds new regions from on-disk packs (see ``docs/scenario_packs.md``).

Tail-risk estimation rides the same facade:
``StudyConfig(sampling="importance")`` reweights the hazard draw toward
damaging tracks (unbiased, with honest CIs),
:func:`repro.sampling.run_adaptive_study` runs rounds until a target CI,
and :meth:`StudyResult.exceedance` /
:meth:`StudyResult.expected_annual_loss` turn any study into loss
exceedance curves (see ``docs/tail_risk.md``).
"""

from repro.api import (
    StudyConfig,
    StudyResult,
    TimelineStudyResult,
    run_study,
    run_timeline,
)
from repro.sweep import StudyCell, SweepResult, run_sweep, sweep_grid

# Importing repro.sampling also registers the "tail-risk" threat chain.
from repro.sampling import (
    AdaptivePlan,
    ExceedanceCurve,
    ExpectedAnnualLoss,
    ImportancePlan,
    LossModel,
    SamplingPlan,
    StratifiedPlan,
    WeightedProfile,
    available_sampling_plans,
    run_adaptive_study,
)

from repro.core import (
    PAPER_SCENARIOS,
    ClassificationStage,
    CompoundThreatAnalysis,
    CyberAttackBudget,
    CyberAttackStage,
    ExhaustiveAttacker,
    HazardImpactStage,
    InterdependencyStage,
    OperationalProfile,
    OperationalState,
    ProbabilisticAttacker,
    ScenarioMatrix,
    Stage,
    SystemState,
    ThreatChain,
    ThreatScenario,
    WorstCaseAttacker,
    available_chains,
    evaluate,
    format_matrix_report,
    get_chain,
    get_scenario,
    initial_state,
    register_chain,
)
from repro.geo import oahu_case_study
from repro.hazards import LogisticFragility, ThresholdFragility
from repro.hazards.hurricane import (
    EnsembleGenerator,
    HurricaneEnsemble,
    HurricaneScenarioSpec,
    standard_oahu_ensemble,
)
from repro.obs import NULL_OBSERVER, Observability, format_run_report
from repro.scenarios import (
    HazardFamily,
    Region,
    ScenarioPack,
    available_hazard_families,
    available_regions,
    get_hazard_family,
    get_region,
    load_scenario_pack,
    register_hazard_family,
    register_region,
    register_scenario_pack,
)
from repro.scada import (
    PAPER_CONFIGURATIONS,
    PLACEMENT_KAHE,
    PLACEMENT_WAIAU,
    ArchitectureSpec,
    FailoverPolicy,
    Placement,
    get_architecture,
)

__version__ = "1.7.0"

__all__ = [
    "__version__",
    # the supported facade (see docs/api_guide.md)
    "StudyConfig",
    "StudyResult",
    "run_study",
    "run_timeline",
    "TimelineStudyResult",
    # threat chains (see docs/architecture.md)
    "Stage",
    "ThreatChain",
    "HazardImpactStage",
    "InterdependencyStage",
    "CyberAttackStage",
    "ClassificationStage",
    "get_chain",
    "register_chain",
    "available_chains",
    # batch sweeps (see docs/api_guide.md, "Sweeps")
    "run_sweep",
    "sweep_grid",
    "SweepResult",
    "StudyCell",
    # tail-risk sampling and impacts (see docs/tail_risk.md)
    "SamplingPlan",
    "StratifiedPlan",
    "ImportancePlan",
    "AdaptivePlan",
    "available_sampling_plans",
    "run_adaptive_study",
    "WeightedProfile",
    "ExceedanceCurve",
    "ExpectedAnnualLoss",
    "LossModel",
    # observability
    "Observability",
    "NULL_OBSERVER",
    "format_run_report",
    # core framework
    "CompoundThreatAnalysis",
    "OperationalState",
    "OperationalProfile",
    "ScenarioMatrix",
    "SystemState",
    "initial_state",
    "evaluate",
    "ThreatScenario",
    "CyberAttackBudget",
    "PAPER_SCENARIOS",
    "get_scenario",
    "WorstCaseAttacker",
    "ExhaustiveAttacker",
    "ProbabilisticAttacker",
    "format_matrix_report",
    # scenario catalog (see docs/scenario_packs.md)
    "Region",
    "get_region",
    "register_region",
    "available_regions",
    "HazardFamily",
    "get_hazard_family",
    "register_hazard_family",
    "available_hazard_families",
    "ScenarioPack",
    "load_scenario_pack",
    "register_scenario_pack",
    # hazard substrate
    "HurricaneEnsemble",
    "HurricaneScenarioSpec",
    "EnsembleGenerator",
    "standard_oahu_ensemble",
    "ThresholdFragility",
    "LogisticFragility",
    # SCADA substrate
    "ArchitectureSpec",
    "PAPER_CONFIGURATIONS",
    "get_architecture",
    "Placement",
    "PLACEMENT_WAIAU",
    "PLACEMENT_KAHE",
    "FailoverPolicy",
    # geography
    "oahu_case_study",
]
