"""Crash-consistent file writes and corrupt-artifact quarantine.

Every writer in :mod:`repro.io` funnels through this module: content is
written to a ``<name>.tmp`` sibling and promoted with :func:`os.replace`,
which is atomic on POSIX and Windows.  A reader therefore only ever sees
either the previous complete artifact or the new complete artifact --
never a torn file -- and a writer killed mid-write (power loss,
``kill -9``, a crashed worker) leaves at worst a ``.tmp`` sibling that the
next successful write simply replaces.

Readers that *do* encounter a corrupt artifact (one written by an older
non-atomic writer, or damaged at rest) should call :func:`quarantine_file`
instead of overwriting it in place: the evidence is preserved under
``<name>.corrupt`` and a :class:`CorruptArtifactWarning` is emitted so the
operator learns the cache was damaged rather than silently rebuilt.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

CORRUPT_SUFFIX = ".corrupt"
TMP_SUFFIX = ".tmp"


class CorruptArtifactWarning(RuntimeWarning):
    """A cached or persisted artifact failed validation and was quarantined."""


def _tmp_sibling(path: Path) -> Path:
    return path.with_name(path.name + TMP_SUFFIX)


@contextmanager
def atomic_path(path: str | Path) -> Iterator[Path]:
    """Yield a ``.tmp`` sibling to write; atomically promote it on success.

    On an exception inside the block the temporary file is removed and the
    final path is left exactly as it was -- the write never happened.
    """
    final = Path(path)
    tmp = _tmp_sibling(final)
    try:
        yield tmp
        os.replace(tmp, final)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (tmp sibling + rename)."""
    with atomic_path(path) as tmp:
        with tmp.open("w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (tmp sibling + rename)."""
    with atomic_path(path) as tmp:
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())


def append_journal_line(path: str | Path, line: str) -> None:
    """Durably append one line to an append-only journal.

    The write is flushed and fsynced before returning, so a crash after
    this call never loses the record.  A crash *during* the call can
    leave a torn final line -- that is the journal contract: appends are
    cheap and readers (:meth:`repro.service.JobJournal.replay`) must
    tolerate exactly one torn line at the tail, which marks the instant
    of death.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if "\n" in line:
        raise ValueError("journal records are single lines")
    with target.open("a") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def quarantine_file(path: str | Path, reason: str) -> Path | None:
    """Move a damaged artifact to ``<name>.corrupt`` and warn.

    Returns the quarantine path, or ``None`` if the file had already
    vanished (a concurrent process may have quarantined it first).
    """
    original = Path(path)
    target = original.with_name(original.name + CORRUPT_SUFFIX)
    try:
        os.replace(original, target)
    except FileNotFoundError:
        return None
    warnings.warn(
        f"quarantined corrupt artifact {original} -> {target.name}: {reason}",
        CorruptArtifactWarning,
        stacklevel=2,
    )
    return target
