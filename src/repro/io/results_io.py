"""Persist and reload analysis results (scenario matrices)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.outcomes import OperationalProfile, ScenarioMatrix
from repro.core.states import STATE_ORDER, OperationalState
from repro.errors import SerializationError
from repro.io.atomic import atomic_write_text


def matrix_to_dict(matrix: ScenarioMatrix) -> dict:
    entries = []
    for scenario in matrix.scenario_names:
        for arch, profile in matrix.scenario_profiles(scenario).items():
            entries.append(
                {
                    "scenario": scenario,
                    "architecture": arch,
                    "counts": {s.value: profile.count(s) for s in STATE_ORDER},
                }
            )
    return {"placement": matrix.placement_label, "entries": entries}


def matrix_from_dict(data: dict) -> ScenarioMatrix:
    try:
        matrix = ScenarioMatrix(placement_label=data["placement"])
        for entry in data["entries"]:
            counts = {
                OperationalState(state): int(count)
                for state, count in entry["counts"].items()
            }
            matrix.add(
                entry["scenario"],
                entry["architecture"],
                OperationalProfile(counts),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed results document") from exc
    return matrix


def save_matrix_json(matrix: ScenarioMatrix, path: str | Path) -> None:
    atomic_write_text(path, json.dumps(matrix_to_dict(matrix), indent=2))


def load_matrix_json(path: str | Path) -> ScenarioMatrix:
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such results file: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON") from exc
    return matrix_from_dict(data)
