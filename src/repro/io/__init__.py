"""Serialization: ensembles, topologies, and results."""

from repro.io.ensemble_cache import (
    ensemble_cache_key,
    load_ensemble_cache,
    save_ensemble_cache,
)
from repro.io.realization_io import load_ensemble_csv, save_ensemble_csv
from repro.io.scenario_io import (
    load_scenario_json,
    save_scenario_json,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.io.results_io import (
    load_matrix_json,
    matrix_from_dict,
    matrix_to_dict,
    save_matrix_json,
)
from repro.io.topology_io import (
    catalog_from_dict,
    catalog_to_dict,
    load_catalog_json,
    save_catalog_json,
)

__all__ = [
    "save_ensemble_csv",
    "load_ensemble_csv",
    "ensemble_cache_key",
    "save_ensemble_cache",
    "load_ensemble_cache",
    "save_scenario_json",
    "load_scenario_json",
    "scenario_to_dict",
    "scenario_from_dict",
    "save_catalog_json",
    "load_catalog_json",
    "catalog_to_dict",
    "catalog_from_dict",
    "save_matrix_json",
    "load_matrix_json",
    "matrix_to_dict",
    "matrix_from_dict",
]
