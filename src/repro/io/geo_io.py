"""JSON round-trips for geography and non-hurricane hazard scenarios.

Scenario packs (:mod:`repro.scenarios.pack`) ship a region as data
files: a coastline document, an asset-catalog document, and one scenario
document per hazard family.  These helpers convert each of those objects
to and from plain JSON-able dicts with the same error discipline as
:mod:`repro.io.scenario_io` -- malformed documents raise
:class:`~repro.errors.SerializationError`, never ``KeyError``.
"""

from __future__ import annotations

from repro.errors import ReproError, SerializationError
from repro.geo.catalog import AssetCatalog, AssetRecord, AssetRole
from repro.geo.coords import GeoPoint
from repro.geo.region import CoastalRegion, ShorelineSegment
from repro.hazards.earthquake import AttenuationParams, EarthquakeScenarioSpec
from repro.hazards.flood import RiverineFloodScenarioSpec

__all__ = [
    "region_to_dict",
    "region_from_dict",
    "catalog_to_dict",
    "catalog_from_dict",
    "earthquake_scenario_to_dict",
    "earthquake_scenario_from_dict",
    "flood_scenario_to_dict",
    "flood_scenario_from_dict",
]


def _point(data: dict) -> GeoPoint:
    return GeoPoint(data["lat"], data["lon"])


def _point_dict(point: GeoPoint) -> dict:
    return {"lat": point.lat, "lon": point.lon}


def region_to_dict(region: CoastalRegion) -> dict:
    return {
        "name": region.name,
        "segments": [
            {
                "name": seg.name,
                "vertices": [_point_dict(v) for v in seg.vertices],
                "shelf_factor": seg.shelf_factor,
                "onshore_bearing_override": seg.onshore_bearing_override,
            }
            for seg in region.segments
        ],
    }


def region_from_dict(data: dict) -> CoastalRegion:
    try:
        segments = tuple(
            ShorelineSegment(
                name=seg["name"],
                vertices=tuple(_point(v) for v in seg["vertices"]),
                shelf_factor=seg.get("shelf_factor", 1.0),
                onshore_bearing_override=seg.get("onshore_bearing_override"),
            )
            for seg in data["segments"]
        )
        return CoastalRegion(name=data["name"], segments=segments)
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed coastline document: {exc}") from exc
    except ReproError as exc:
        raise SerializationError(f"invalid coastline parameters: {exc}") from exc


def catalog_to_dict(catalog: AssetCatalog) -> dict:
    return {
        "region_name": catalog.region_name,
        "assets": [
            {
                "name": rec.name,
                "role": rec.role.value,
                "location": _point_dict(rec.location),
                "elevation_m": rec.elevation_m,
                "description": rec.description,
            }
            for rec in catalog
        ],
    }


def catalog_from_dict(data: dict) -> AssetCatalog:
    try:
        records = [
            AssetRecord(
                name=rec["name"],
                role=AssetRole(rec["role"]),
                location=_point(rec["location"]),
                elevation_m=rec["elevation_m"],
                description=rec.get("description", ""),
            )
            for rec in data["assets"]
        ]
        return AssetCatalog.from_records(data["region_name"], records)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed asset-catalog document: {exc}") from exc
    except ReproError as exc:
        raise SerializationError(f"invalid asset-catalog parameters: {exc}") from exc


def earthquake_scenario_to_dict(scenario: EarthquakeScenarioSpec) -> dict:
    return {
        "name": scenario.name,
        "fault_start": _point_dict(scenario.fault_start),
        "fault_end": _point_dict(scenario.fault_end),
        "depth_km": scenario.depth_km,
        "magnitude_min": scenario.magnitude_min,
        "magnitude_max": scenario.magnitude_max,
        "gutenberg_richter_b": scenario.gutenberg_richter_b,
        "attenuation": {
            "a": scenario.attenuation.a,
            "b": scenario.attenuation.b,
            "c": scenario.attenuation.c,
            "d_km": scenario.attenuation.d_km,
        },
    }


def earthquake_scenario_from_dict(data: dict) -> EarthquakeScenarioSpec:
    try:
        att = data.get("attenuation")
        attenuation = (
            AttenuationParams(
                a=att["a"], b=att["b"], c=att["c"], d_km=att["d_km"]
            )
            if att is not None
            else AttenuationParams()
        )
        return EarthquakeScenarioSpec(
            name=data["name"],
            fault_start=_point(data["fault_start"]),
            fault_end=_point(data["fault_end"]),
            depth_km=data.get("depth_km", 10.0),
            magnitude_min=data.get("magnitude_min", 6.0),
            magnitude_max=data.get("magnitude_max", 7.8),
            gutenberg_richter_b=data.get("gutenberg_richter_b", 1.0),
            attenuation=attenuation,
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed earthquake scenario: {exc}") from exc
    except ReproError as exc:
        raise SerializationError(f"invalid earthquake parameters: {exc}") from exc


def flood_scenario_to_dict(scenario: RiverineFloodScenarioSpec) -> dict:
    return {
        "name": scenario.name,
        "channel": [_point_dict(v) for v in scenario.channel],
        "discharge_median_m3s": scenario.discharge_median_m3s,
        "discharge_log_sd": scenario.discharge_log_sd,
        "rating_depth_m": scenario.rating_depth_m,
        "rating_exponent": scenario.rating_exponent,
        "floodplain_width_km": scenario.floodplain_width_km,
    }


def flood_scenario_from_dict(data: dict) -> RiverineFloodScenarioSpec:
    try:
        return RiverineFloodScenarioSpec(
            name=data["name"],
            channel=tuple(_point(v) for v in data["channel"]),
            discharge_median_m3s=data.get("discharge_median_m3s", 350.0),
            discharge_log_sd=data.get("discharge_log_sd", 0.55),
            rating_depth_m=data.get("rating_depth_m", 2.6),
            rating_exponent=data.get("rating_exponent", 0.45),
            floodplain_width_km=data.get("floodplain_width_km", 1.8),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed flood scenario: {exc}") from exc
    except ReproError as exc:
        raise SerializationError(f"invalid flood parameters: {exc}") from exc
