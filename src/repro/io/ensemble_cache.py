"""On-disk hurricane-ensemble cache.

Regenerating the paper's 1000-realization ensemble is the dominant cost of
every figure and ablation run, yet the output is a pure function of the
scenario spec, the surge/extension physics, the mesh spacing, and the
(count, seed) pair.  This module caches that output under a directory:

- ``<key>.npz`` -- compressed arrays: the (R x A) depth matrix and the
  (R x 7) storm-parameter matrix.  Binary storage round-trips every float
  bit-exactly (unlike the CSV exchange format in ``realization_io``), so a
  cache-loaded ensemble is *identical* to the generated one.
- ``<key>.json`` -- a human-readable sidecar with the key inputs, asset
  names, scenario name, and seed.

The key is a sha256 over the canonical JSON of everything the ensemble
depends on, so editing any physics parameter, the scenario, the mesh
spacing, the seed, or the count changes the key and the stale entry is
simply never found.  Corrupt entries (truncated npz, mangled sidecar,
mismatched shapes) load as a miss and are regenerated and overwritten.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.geo.coords import GeoPoint
from repro.hazards.hurricane.ensemble import (
    HurricaneEnsemble,
    HurricaneRealization,
    HurricaneScenarioSpec,
    StormParameters,
)
from repro.hazards.hurricane.inundation import ExtensionParams, InundationField
from repro.hazards.hurricane.surge import SurgeModelParams
from repro.io.scenario_io import scenario_to_dict

# Bump when the stored layout changes; old entries then miss cleanly.
CACHE_FORMAT_VERSION = 1

_PARAM_COLUMNS = (
    "landfall_lat",
    "landfall_lon",
    "heading_deg",
    "central_pressure_mb",
    "rmw_km",
    "forward_speed_kmh",
    "track_offset_km",
)


def ensemble_cache_key(
    scenario: HurricaneScenarioSpec,
    surge_params: SurgeModelParams,
    extension_params: ExtensionParams,
    mesh_spacing_km: float,
    count: int,
    seed: int,
) -> str:
    """Content hash of every input the generated ensemble depends on."""
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "scenario": scenario_to_dict(scenario),
        "surge_params": dataclasses.asdict(surge_params),
        "extension_params": dataclasses.asdict(extension_params),
        "mesh_spacing_km": mesh_spacing_km,
        "count": count,
        "seed": seed,
    }
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def _cache_paths(cache_dir: str | Path, key: str) -> tuple[Path, Path]:
    base = Path(cache_dir)
    return base / f"ensemble-{key}.npz", base / f"ensemble-{key}.json"


def save_ensemble_cache(
    ensemble: HurricaneEnsemble, cache_dir: str | Path, key: str
) -> Path:
    """Write the ensemble under ``cache_dir``; returns the npz path."""
    npz_path, meta_path = _cache_paths(cache_dir, key)
    try:
        npz_path.parent.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise SerializationError(
            f"cannot create ensemble cache directory {str(cache_dir)!r}: {exc}"
        ) from exc
    names = ensemble.asset_names
    depths = ensemble.depth_matrix()
    params = np.array(
        [
            [
                r.params.landfall.lat,
                r.params.landfall.lon,
                r.params.heading_deg,
                r.params.central_pressure_mb,
                r.params.rmw_km,
                r.params.forward_speed_kmh,
                r.params.track_offset_km,
            ]
            for r in ensemble.realizations
        ]
    )
    np.savez_compressed(npz_path, depths=depths, params=params)
    meta = {
        "format": CACHE_FORMAT_VERSION,
        "key": key,
        "scenario_name": ensemble.scenario_name,
        "seed": ensemble.seed,
        "count": len(ensemble),
        "asset_names": names,
        "param_columns": list(_PARAM_COLUMNS),
    }
    meta_path.write_text(json.dumps(meta, indent=2))
    return npz_path


def load_ensemble_cache(cache_dir: str | Path, key: str) -> HurricaneEnsemble | None:
    """Load a cached ensemble, or ``None`` on a miss.

    Anything wrong with the entry -- missing files, undecodable npz or
    JSON, key/format mismatch, inconsistent shapes -- is treated as a
    miss so the caller regenerates (and overwrites the bad entry).
    """
    npz_path, meta_path = _cache_paths(cache_dir, key)
    if not npz_path.exists() or not meta_path.exists():
        return None
    try:
        meta = json.loads(meta_path.read_text())
        if meta["format"] != CACHE_FORMAT_VERSION or meta["key"] != key:
            return None
        names = list(meta["asset_names"])
        count = int(meta["count"])
        with np.load(npz_path) as data:
            depths = data["depths"]
            params = data["params"]
        if depths.shape != (count, len(names)):
            return None
        if params.shape != (count, len(_PARAM_COLUMNS)):
            return None
        realizations = []
        for i in range(count):
            lat, lon, heading, pressure, rmw, speed, offset = params[i]
            realizations.append(
                HurricaneRealization(
                    index=i,
                    params=StormParameters(
                        landfall=GeoPoint(float(lat), float(lon)),
                        heading_deg=float(heading),
                        central_pressure_mb=float(pressure),
                        rmw_km=float(rmw),
                        forward_speed_kmh=float(speed),
                        track_offset_km=float(offset),
                    ),
                    inundation=InundationField(
                        depths_m=dict(zip(names, depths[i].tolist()))
                    ),
                )
            )
        return HurricaneEnsemble(
            scenario_name=meta["scenario_name"],
            realizations=tuple(realizations),
            seed=meta["seed"],
        )
    except (KeyError, ValueError, OSError, zipfile.BadZipFile, json.JSONDecodeError):
        return None
