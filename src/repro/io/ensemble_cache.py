"""On-disk hurricane-ensemble cache.

Regenerating the paper's 1000-realization ensemble is the dominant cost of
every figure and ablation run, yet the output is a pure function of the
scenario spec, the surge/extension physics, the mesh spacing, and the
(count, seed) pair.  This module caches that output under a directory:

- ``<key>.npz`` -- compressed arrays: the (R x A) depth matrix and the
  (R x 7) storm-parameter matrix.  Binary storage round-trips every float
  bit-exactly (unlike the CSV exchange format in ``realization_io``), so a
  cache-loaded ensemble is *identical* to the generated one.
- ``<key>.json`` -- a human-readable sidecar with the key inputs, asset
  names, scenario name, and seed.

The key is a sha256 over the canonical JSON of everything the ensemble
depends on, so editing any physics parameter, the scenario, the mesh
spacing, the seed, or the count changes the key and the stale entry is
simply never found.  Corrupt entries (truncated npz, mangled sidecar,
mismatched shapes) load as a miss and are quarantined to
``<name>.corrupt`` so the caller regenerates them without destroying the
evidence; both files are written atomically (tmp sibling + rename), so a
writer killed mid-write can never leave a loadable-but-torn entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.geo.coords import GeoPoint
from repro.io.atomic import atomic_path, atomic_write_text, quarantine_file
from repro.obs.observer import current as current_observer
from repro.hazards.hurricane.ensemble import (
    HurricaneEnsemble,
    HurricaneRealization,
    HurricaneScenarioSpec,
    StormParameters,
)
from repro.hazards.hurricane.inundation import ExtensionParams, InundationField
from repro.hazards.hurricane.surge import SurgeModelParams
from repro.io.scenario_io import scenario_to_dict

# Bump when the stored layout changes; old entries then miss cleanly.
CACHE_FORMAT_VERSION = 1

PARAM_COLUMNS = (
    "landfall_lat",
    "landfall_lon",
    "heading_deg",
    "central_pressure_mb",
    "rmw_km",
    "forward_speed_kmh",
    "track_offset_km",
)
_PARAM_COLUMNS = PARAM_COLUMNS  # backwards-compatible alias


def params_to_row(params: StormParameters) -> list[float]:
    """Flatten storm parameters into the canonical 7-column row."""
    return [
        params.landfall.lat,
        params.landfall.lon,
        params.heading_deg,
        params.central_pressure_mb,
        params.rmw_km,
        params.forward_speed_kmh,
        params.track_offset_km,
    ]


def params_from_row(row) -> StormParameters:
    """Rebuild storm parameters from a canonical 7-column row."""
    lat, lon, heading, pressure, rmw, speed, offset = row
    return StormParameters(
        landfall=GeoPoint(float(lat), float(lon)),
        heading_deg=float(heading),
        central_pressure_mb=float(pressure),
        rmw_km=float(rmw),
        forward_speed_kmh=float(speed),
        track_offset_km=float(offset),
    )


def ensemble_cache_key(
    scenario: HurricaneScenarioSpec,
    surge_params: SurgeModelParams,
    extension_params: ExtensionParams,
    mesh_spacing_km: float,
    count: int,
    seed: int,
    geo_key: str | None = None,
) -> str:
    """Content hash of every input the generated ensemble depends on.

    ``geo_key`` is the :func:`repro.geo.digest.geo_content_key` of the
    coastline + catalog the scenario acts on; generators always pass it
    so two regions with identical storm parameters never share a cache
    entry.
    """
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "scenario": scenario_to_dict(scenario),
        "surge_params": dataclasses.asdict(surge_params),
        "extension_params": dataclasses.asdict(extension_params),
        "mesh_spacing_km": mesh_spacing_km,
        "count": count,
        "seed": seed,
    }
    if geo_key is not None:
        payload["geo"] = geo_key
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def _cache_paths(cache_dir: str | Path, key: str) -> tuple[Path, Path]:
    base = Path(cache_dir)
    return base / f"ensemble-{key}.npz", base / f"ensemble-{key}.json"


def shared_depths_path(cache_dir: str | Path, key: str) -> Path:
    """The uncompressed depth sidecar (mmap-able by sweep workers)."""
    return Path(cache_dir) / f"ensemble-{key}-depths.npy"


def save_ensemble_cache(
    ensemble: HurricaneEnsemble, cache_dir: str | Path, key: str
) -> Path:
    """Write the ensemble under ``cache_dir``; returns the npz path."""
    npz_path, meta_path = _cache_paths(cache_dir, key)
    try:
        npz_path.parent.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise SerializationError(
            f"cannot create ensemble cache directory {str(cache_dir)!r}: {exc}"
        ) from exc
    names = ensemble.asset_names
    depths = ensemble.depth_matrix()
    params = np.array([params_to_row(r.params) for r in ensemble.realizations])
    with atomic_path(npz_path) as tmp:
        with tmp.open("wb") as handle:
            np.savez_compressed(handle, depths=depths, params=params)
    # Uncompressed depth sidecar: sweep workers memory-map this instead
    # of receiving a pickled/shared-memory copy (npz entries are zip
    # members and cannot be mmapped).  Written atomically like the rest;
    # a missing sidecar (older cache entries) just means no mmap path.
    with atomic_path(shared_depths_path(cache_dir, key)) as tmp:
        with tmp.open("wb") as handle:
            np.save(handle, np.ascontiguousarray(depths))
    meta = {
        "format": CACHE_FORMAT_VERSION,
        "key": key,
        "scenario_name": ensemble.scenario_name,
        "seed": ensemble.seed,
        "count": len(ensemble),
        "asset_names": names,
        "param_columns": list(PARAM_COLUMNS),
    }
    atomic_write_text(meta_path, json.dumps(meta, indent=2))
    current_observer().inc("cache.ensemble.store")
    return npz_path


def load_ensemble_cache(cache_dir: str | Path, key: str) -> HurricaneEnsemble | None:
    """Load a cached ensemble, or ``None`` on a miss.

    Anything wrong with the entry -- undecodable npz or JSON, key/format
    mismatch, inconsistent shapes -- is treated as a miss so the caller
    regenerates; the torn or corrupt files are quarantined to
    ``<name>.corrupt`` (with a :class:`CorruptArtifactWarning`) rather
    than silently overwritten, so the evidence of the damage survives.
    """
    obs = current_observer()
    npz_path, meta_path = _cache_paths(cache_dir, key)
    if not npz_path.exists() or not meta_path.exists():
        obs.inc("cache.ensemble.miss")
        return None
    try:
        meta = json.loads(meta_path.read_text())
        if meta["format"] != CACHE_FORMAT_VERSION:
            obs.inc("cache.ensemble.miss")
            return None  # older layout: stale, not corrupt
        if meta["key"] != key:
            return _quarantine_entry(npz_path, meta_path, "sidecar key mismatch")
        names = list(meta["asset_names"])
        count = int(meta["count"])
        # Own the file handle: np.load on a torn zip raises before its
        # context manager exists, which would leak the open descriptor.
        with open(npz_path, "rb") as handle, np.load(handle) as data:
            depths = data["depths"]
            params = data["params"]
        if depths.shape != (count, len(names)) or params.shape != (
            count,
            len(PARAM_COLUMNS),
        ):
            return _quarantine_entry(npz_path, meta_path, "array shape mismatch")
        realizations = []
        for i in range(count):
            realizations.append(
                HurricaneRealization(
                    index=i,
                    params=params_from_row(params[i]),
                    inundation=InundationField(
                        depths_m=dict(zip(names, depths[i].tolist()))
                    ),
                )
            )
        obs.inc("cache.ensemble.hit")
        return HurricaneEnsemble(
            scenario_name=meta["scenario_name"],
            realizations=tuple(realizations),
            seed=meta["seed"],
        )
    except (KeyError, ValueError, OSError, zipfile.BadZipFile, json.JSONDecodeError) as exc:
        return _quarantine_entry(npz_path, meta_path, f"unreadable entry: {exc}")


def shared_depth_descriptor(cache_dir: str | Path, key: str) -> dict | None:
    """An mmap descriptor for a cached ensemble's depth sidecar.

    Returns the payload :func:`repro.io.shared_ensemble.attach_shared_ensemble`
    accepts (``kind == "mmap"``), or ``None`` when the entry lacks a
    verifiable sidecar -- missing files, stale format, or a sidecar
    whose shape disagrees with the meta (the caller then publishes a
    shared-memory segment instead).  Never raises on a damaged entry.
    """
    npy_path = shared_depths_path(cache_dir, key)
    _, meta_path = _cache_paths(cache_dir, key)
    if not npy_path.exists() or not meta_path.exists():
        return None
    try:
        meta = json.loads(meta_path.read_text())
        if meta["format"] != CACHE_FORMAT_VERSION or meta["key"] != key:
            return None
        names = list(meta["asset_names"])
        count = int(meta["count"])
        depths = np.load(npy_path, mmap_mode="r")
        if depths.shape != (count, len(names)):
            return None
        return {
            "kind": "mmap",
            "path": str(npy_path),
            "shape": [count, len(names)],
            "dtype": str(depths.dtype),
            "scenario_name": meta["scenario_name"],
            "seed": meta["seed"],
            "asset_names": names,
        }
    except (KeyError, ValueError, OSError, json.JSONDecodeError):
        return None


def _quarantine_entry(npz_path: Path, meta_path: Path, reason: str) -> None:
    """Quarantine both halves of a damaged cache entry; always a miss."""
    obs = current_observer()
    obs.inc("cache.ensemble.quarantined")
    obs.inc("cache.ensemble.miss")
    obs.event("cache_quarantine", entry=npz_path.name, reason=reason)
    quarantine_file(npz_path, reason)
    quarantine_file(meta_path, reason)
    return None
