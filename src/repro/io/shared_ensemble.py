"""Zero-copy hazard ensembles for parallel analysis workers.

The sweep engine historically shipped each group's ensemble to its pool
workers by pickling it into the pool initializer -- a full serialized
copy of every realization per worker.  The ensemble's analysis-relevant
content is just the ``(n_realizations, n_assets)`` depth matrix (plus
names and provenance), so this module ships *that* instead, by
reference:

- :func:`publish_shared_ensemble` copies the depth matrix into a
  :mod:`multiprocessing.shared_memory` segment once and returns a
  handle whose small JSON-able *descriptor* is all that crosses the
  process boundary.
- When the ensemble came from the on-disk cache,
  :func:`repro.io.ensemble_cache.shared_depth_descriptor` yields an
  mmap descriptor for the uncompressed depth sidecar -- no segment to
  manage at all; the OS page cache shares the bytes.
- :func:`attach_shared_ensemble` turns either descriptor back into an
  :class:`ArrayBackedEnsemble`, a full ``HazardEnsemble`` whose depth
  grid *is* the shared buffer (the batched executor reads it in place)
  and whose per-realization views materialize lazily only if a scalar
  fallback ever iterates them.

Lifecycle: the publishing (parent) process owns the segment and must
``close()`` + ``unlink()`` it -- the sweep engine does so in a
``finally`` so worker crashes and ``KeyboardInterrupt`` cannot leak
segments, and an ``atexit`` hook sweeps anything still live at
interpreter shutdown.  Workers only ever *attach*: their handles are
deregistered from the ``multiprocessing`` resource tracker (which would
otherwise unlink the segment when the first worker exits and warn about
leaks for the rest), so a worker dying mid-task never destroys the data
under its siblings.
"""

from __future__ import annotations

import atexit
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SerializationError
from repro.hazards.fragility import FragilityModel, ThresholdFragility

__all__ = [
    "ArrayBackedEnsemble",
    "DepthRealization",
    "DepthShardBoard",
    "SharedEnsembleHandle",
    "publish_shared_ensemble",
    "attach_shared_ensemble",
    "shareable_ensemble",
]


def shareable_ensemble(ensemble: object) -> bool:
    """Whether an ensemble can ship to workers by depth-grid reference.

    A cheap capability probe -- the ensemble exposes ``asset_names`` and
    a depth grid -- replacing the old full ``pickle.dumps`` probe of the
    ensemble (serializing 100k realizations just to throw the bytes
    away cost more than some analyses).
    """
    names = getattr(ensemble, "asset_names", None)
    if not names:
        return False
    return callable(getattr(ensemble, "depth_view", None)) or callable(
        getattr(ensemble, "depth_matrix", None)
    )


def _depth_grid(ensemble: object) -> np.ndarray:
    view = getattr(ensemble, "depth_view", None)
    if callable(view):
        return np.asarray(view())
    return np.asarray(ensemble.depth_matrix())  # type: ignore[attr-defined]


class DepthRealization:
    """One realization view over a shared depth matrix row.

    Satisfies :class:`~repro.hazards.base.HazardRealization`: the scalar
    executor's fallback path iterates these exactly as it would the
    original realizations (same float64 depths, so same failed sets).
    """

    __slots__ = ("index", "depths_m")

    def __init__(self, index: int, depths_m: Mapping[str, float]) -> None:
        self.index = index
        self.depths_m = depths_m

    def depth_at(self, asset_name: str) -> float:
        return self.depths_m[asset_name]

    def failed_assets(
        self,
        fragility: FragilityModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> frozenset[str]:
        model = fragility or ThresholdFragility()
        return model.failed_assets(self.depths_m, rng)


class ArrayBackedEnsemble:
    """A hazard ensemble whose realizations live in one depth matrix.

    The batched executor reads ``depth_view()`` in place (zero copies);
    the per-realization tuple is materialized lazily, only when a
    scalar path actually iterates the ensemble.  ``_owner`` pins the
    shared-memory handle (if any) for the buffer's lifetime.
    """

    def __init__(
        self,
        scenario_name: str,
        depths: np.ndarray,
        asset_names: list[str],
        seed: int | None = None,
        owner: object | None = None,
    ) -> None:
        if depths.ndim != 2 or depths.shape[1] != len(asset_names):
            raise SerializationError(
                "depth matrix shape does not match the asset names"
            )
        self.scenario_name = scenario_name
        self.seed = seed
        self._depths = depths
        self._asset_names = list(asset_names)
        self._owner = owner
        self._realizations: tuple[DepthRealization, ...] | None = None

    @property
    def asset_names(self) -> list[str]:
        return list(self._asset_names)

    def depth_view(self) -> np.ndarray:
        """The backing (R x A) depth matrix; treat as read-only."""
        return self._depths

    def depth_matrix(self) -> np.ndarray:
        return np.array(self._depths)

    def __len__(self) -> int:
        return int(self._depths.shape[0])

    def _materialize(self) -> tuple[DepthRealization, ...]:
        if self._realizations is None:
            names = self._asset_names
            self._realizations = tuple(
                DepthRealization(index=i, depths_m=dict(zip(names, row.tolist())))
                for i, row in enumerate(self._depths)
            )
        return self._realizations

    def __iter__(self) -> Iterator[DepthRealization]:
        return iter(self._materialize())

    def __getitem__(self, index: int) -> DepthRealization:
        return self._materialize()[index]


# ----------------------------------------------------------------------
# Shared-memory publication (owner side)
# ----------------------------------------------------------------------
class SharedEnsembleHandle:
    """The owner's grip on a published segment.

    ``descriptor`` is the small JSON-able payload workers attach from.
    ``close()`` releases this process's mapping; ``unlink()`` destroys
    the segment (idempotent -- an already-gone segment is fine, so the
    engine's ``finally`` and the ``atexit`` sweep cannot collide).
    """

    def __init__(self, shm, descriptor: dict) -> None:
        self._shm = shm
        self.descriptor = descriptor
        _LIVE.add(self)

    def close(self) -> None:
        if self._shm is not None:
            try:
                self._shm.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def unlink(self) -> None:
        _LIVE.discard(self)
        if self._shm is not None:
            try:
                self._shm.unlink()
            except (FileNotFoundError, OSError):
                pass
            self._shm = None


#: Handles published by this process and not yet unlinked; swept at
#: interpreter exit so an exception path that skipped its ``finally``
#: still cannot leak a segment past the process's lifetime.
_LIVE: set[SharedEnsembleHandle] = set()


@atexit.register
def _cleanup_live_handles() -> None:  # pragma: no cover - exit hook
    for handle in list(_LIVE):
        handle.close()
        handle.unlink()


def publish_shared_ensemble(ensemble: object) -> SharedEnsembleHandle | None:
    """Copy the ensemble's depth grid into shared memory, once.

    Returns ``None`` when the ensemble exposes no depth grid (the
    caller then falls back to pickling, as before).  The caller owns
    the returned handle and must ``close()`` + ``unlink()`` it.
    """
    from multiprocessing import shared_memory

    if not shareable_ensemble(ensemble):
        return None
    depths = _depth_grid(ensemble)
    source = np.ascontiguousarray(depths)
    shm = shared_memory.SharedMemory(create=True, size=max(1, source.nbytes))
    try:
        target = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        target[...] = source
        descriptor = {
            "kind": "shm",
            "name": shm.name,
            "shape": [int(n) for n in source.shape],
            "dtype": str(source.dtype),
            "scenario_name": getattr(ensemble, "scenario_name", "shared"),
            "seed": getattr(ensemble, "seed", None),
            "asset_names": list(ensemble.asset_names),  # type: ignore[attr-defined]
        }
    except Exception:
        shm.close()
        shm.unlink()
        raise
    return SharedEnsembleHandle(shm, descriptor)


# ----------------------------------------------------------------------
# In-place generation transport (writable board)
# ----------------------------------------------------------------------
class DepthShardBoard:
    """A parent-owned *writable* (R x A) float64 depth matrix in shared memory.

    :func:`publish_shared_ensemble` ships a finished ensemble's depths to
    analysis workers read-only; this board is the generation-side mirror
    of that idea, pointed the other way.  The run controller
    (:mod:`repro.runtime.controller`) creates one board per pooled
    generation run; each worker writes its realization's depth row
    straight into the segment and returns a light index payload instead
    of round-tripping the per-asset depth mapping through the result
    pipe's pickler.  Rows are keyed by realization index, every task owns
    exactly one row, and retries rewrite the same bits (realization
    ``i``'s rng is re-derived at every submission), so a worker dying
    mid-write can never corrupt a row that the parent will keep.

    The creating process owns the segment and must ``close()`` +
    ``unlink()`` it (the owner side registers with the same ``atexit``
    sweep as published ensembles); workers attach untracked and only ever
    ``close()``.
    """

    def __init__(self, shm, view: np.ndarray, asset_names: tuple[str, ...],
                 handle: "SharedEnsembleHandle | None") -> None:
        self._shm = shm
        self.view = view
        self.asset_names = asset_names
        self._handle = handle  # owner side only

    @classmethod
    def create(cls, count: int, asset_names: Sequence[str]) -> "DepthShardBoard":
        """Allocate a zeroed ``(count, len(asset_names))`` board (owner side)."""
        from multiprocessing import shared_memory

        names = tuple(str(n) for n in asset_names)
        if count < 1 or not names:
            raise SerializationError("depth board needs rows and asset names")
        nbytes = count * len(names) * np.dtype(np.float64).itemsize
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        try:
            view = np.ndarray((count, len(names)), dtype=np.float64, buffer=shm.buf)
            view[...] = 0.0
            descriptor = {
                "kind": "shm-board",
                "name": shm.name,
                "count": int(count),
                "asset_names": list(names),
            }
            handle = SharedEnsembleHandle(shm, descriptor)
        except Exception:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, view, names, handle)

    @property
    def descriptor(self) -> dict:
        """The small JSON-able payload workers attach from."""
        return {
            "kind": "shm-board",
            "name": self._shm.name,
            "count": int(self.view.shape[0]),
            "asset_names": list(self.asset_names),
        }

    @classmethod
    def attach(cls, descriptor: Mapping) -> "DepthShardBoard":
        """Map an existing board writable, untracked (worker side)."""
        if descriptor.get("kind") != "shm-board":
            raise SerializationError(
                f"not a depth-board descriptor: {descriptor.get('kind')!r}"
            )
        names = tuple(str(n) for n in descriptor["asset_names"])
        shm = _attach_untracked(str(descriptor["name"]))
        view = np.ndarray(
            (int(descriptor["count"]), len(names)), dtype=np.float64, buffer=shm.buf
        )
        return cls(shm, view, names, handle=None)

    def snapshot(self) -> np.ndarray:
        """A private copy of the full matrix (safe to outlive the segment)."""
        return np.array(self.view)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
        elif self._shm is not None:
            try:
                self._shm.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._shm = None

    def unlink(self) -> None:
        if self._handle is not None:
            self._handle.unlink()
            self._handle = None


# ----------------------------------------------------------------------
# Attachment (worker side)
# ----------------------------------------------------------------------
def _attach_untracked(name: str):
    """Attach to a segment without enrolling in the resource tracker.

    Python 3.13+ has ``track=False`` for exactly this.  Older runtimes
    auto-register every attachment, which is doubly wrong here: the
    tracker would unlink the segment when the first worker exits, and
    registration is set-idempotent while unregistration is not, so two
    workers registering then deregistering the same name crash the
    tracker daemon with a ``KeyError``.  Suppress registration for the
    duration of the attach instead -- the *owner* process keeps sole
    responsibility for the segment's lifetime.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    real_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = real_register


def attach_shared_ensemble(descriptor: Mapping) -> ArrayBackedEnsemble:
    """Rebuild an ensemble from a descriptor, without copying the data.

    ``kind == "shm"`` maps the published segment; ``kind == "mmap"``
    memory-maps the on-disk depth sidecar.  Both verify the array shape
    against the descriptor before use.
    """
    kind = descriptor.get("kind")
    shape = tuple(int(n) for n in descriptor["shape"])
    names = list(descriptor["asset_names"])
    if kind == "mmap":
        depths = np.load(descriptor["path"], mmap_mode="r")
        owner: object | None = None
    elif kind == "shm":
        shm = _attach_untracked(str(descriptor["name"]))
        depths = np.ndarray(
            shape, dtype=np.dtype(descriptor["dtype"]), buffer=shm.buf
        )
        owner = shm
    else:
        raise SerializationError(
            f"unknown shared-ensemble descriptor kind {kind!r}"
        )
    if tuple(depths.shape) != shape:
        raise SerializationError(
            f"shared ensemble shape {tuple(depths.shape)} does not match "
            f"its descriptor {shape}"
        )
    return ArrayBackedEnsemble(
        scenario_name=str(descriptor.get("scenario_name", "shared")),
        depths=depths,
        asset_names=names,
        seed=descriptor.get("seed"),
        owner=owner,
    )
