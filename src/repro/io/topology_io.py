"""Persist and reload asset catalogs (the geospatial SCADA topology)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import SerializationError, TopologyError
from repro.geo.catalog import AssetCatalog, AssetRecord, AssetRole
from repro.geo.coords import GeoPoint
from repro.io.atomic import atomic_write_text


def catalog_to_dict(catalog: AssetCatalog) -> dict:
    return {
        "region": catalog.region_name,
        "assets": [
            {
                "name": asset.name,
                "role": asset.role.value,
                "lat": asset.location.lat,
                "lon": asset.location.lon,
                "elevation_m": asset.elevation_m,
                "description": asset.description,
            }
            for asset in catalog
        ],
    }


def catalog_from_dict(data: dict) -> AssetCatalog:
    try:
        region = data["region"]
        entries = data["assets"]
    except (KeyError, TypeError) as exc:
        raise SerializationError("catalog document missing region/assets") from exc
    records = []
    for entry in entries:
        try:
            records.append(
                AssetRecord(
                    name=entry["name"],
                    role=AssetRole(entry["role"]),
                    location=GeoPoint(entry["lat"], entry["lon"]),
                    elevation_m=entry["elevation_m"],
                    description=entry.get("description", ""),
                )
            )
        except (KeyError, ValueError, TypeError, TopologyError) as exc:
            raise SerializationError(f"malformed asset entry: {entry}") from exc
    try:
        return AssetCatalog.from_records(region, records)
    except TopologyError as exc:
        raise SerializationError(str(exc)) from exc


def save_catalog_json(catalog: AssetCatalog, path: str | Path) -> None:
    atomic_write_text(path, json.dumps(catalog_to_dict(catalog), indent=2))


def load_catalog_json(path: str | Path) -> AssetCatalog:
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such catalog file: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON") from exc
    return catalog_from_dict(data)
