"""Persist and reload hurricane scenario specifications.

Utilities exchange planning scenarios as files; this round-trips a
:class:`HurricaneScenarioSpec` through JSON so a study (e.g. a different
basin, or a planner-supplied track) can be versioned alongside results
and replayed with ``compound-threats ensemble --scenario-file``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError, SerializationError
from repro.geo.coords import GeoPoint
from repro.hazards.hurricane.ensemble import HurricaneScenarioSpec
from repro.io.atomic import atomic_write_text


def scenario_to_dict(scenario: HurricaneScenarioSpec) -> dict:
    return {
        "name": scenario.name,
        "base_landfall": {
            "lat": scenario.base_landfall.lat,
            "lon": scenario.base_landfall.lon,
        },
        "base_heading_deg": scenario.base_heading_deg,
        "track_offset_sd_km": scenario.track_offset_sd_km,
        "heading_sd_deg": scenario.heading_sd_deg,
        "pressure_mean_mb": scenario.pressure_mean_mb,
        "pressure_sd_mb": scenario.pressure_sd_mb,
        "pressure_bounds_mb": list(scenario.pressure_bounds_mb),
        "rmw_median_km": scenario.rmw_median_km,
        "rmw_log_sd": scenario.rmw_log_sd,
        "forward_speed_mean_kmh": scenario.forward_speed_mean_kmh,
        "forward_speed_sd_kmh": scenario.forward_speed_sd_kmh,
        "forward_speed_bounds_kmh": list(scenario.forward_speed_bounds_kmh),
    }


def scenario_from_dict(data: dict) -> HurricaneScenarioSpec:
    try:
        landfall = data["base_landfall"]
        return HurricaneScenarioSpec(
            name=data["name"],
            base_landfall=GeoPoint(landfall["lat"], landfall["lon"]),
            base_heading_deg=data["base_heading_deg"],
            track_offset_sd_km=data["track_offset_sd_km"],
            heading_sd_deg=data["heading_sd_deg"],
            pressure_mean_mb=data["pressure_mean_mb"],
            pressure_sd_mb=data["pressure_sd_mb"],
            pressure_bounds_mb=tuple(data["pressure_bounds_mb"]),
            rmw_median_km=data["rmw_median_km"],
            rmw_log_sd=data["rmw_log_sd"],
            forward_speed_mean_kmh=data["forward_speed_mean_kmh"],
            forward_speed_sd_kmh=data["forward_speed_sd_kmh"],
            forward_speed_bounds_kmh=tuple(data["forward_speed_bounds_kmh"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed scenario document: {exc}") from exc
    except ReproError as exc:
        raise SerializationError(f"invalid scenario parameters: {exc}") from exc


def save_scenario_json(scenario: HurricaneScenarioSpec, path: str | Path) -> None:
    atomic_write_text(path, json.dumps(scenario_to_dict(scenario), indent=2))


def load_scenario_json(path: str | Path) -> HurricaneScenarioSpec:
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such scenario file: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON") from exc
    return scenario_from_dict(data)
