"""Persist and reload hurricane ensembles.

Generating 1000 realizations takes seconds, but pinning the exact dataset
a result was produced from matters for reproducibility, so ensembles
round-trip through CSV: one row per realization with the storm parameters
and the inundation depth at every asset.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import SerializationError
from repro.geo.coords import GeoPoint
from repro.io.atomic import atomic_path
from repro.hazards.hurricane.ensemble import (
    HurricaneEnsemble,
    HurricaneRealization,
    StormParameters,
)
from repro.hazards.hurricane.inundation import InundationField

_PARAM_COLUMNS = [
    "landfall_lat",
    "landfall_lon",
    "heading_deg",
    "central_pressure_mb",
    "rmw_km",
    "forward_speed_kmh",
    "track_offset_km",
]
_DEPTH_PREFIX = "depth:"


def save_ensemble_csv(ensemble: HurricaneEnsemble, path: str | Path) -> None:
    """Write an ensemble to CSV (parameters + per-asset depths)."""
    path = Path(path)
    asset_names = ensemble.asset_names
    header = ["index", "scenario", "seed"] + _PARAM_COLUMNS + [
        f"{_DEPTH_PREFIX}{name}" for name in asset_names
    ]
    with atomic_path(path) as tmp:
        with tmp.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            for r in ensemble:
                p = r.params
                row = [
                    r.index,
                    ensemble.scenario_name,
                    ensemble.seed if ensemble.seed is not None else "",
                    f"{p.landfall.lat:.6f}",
                    f"{p.landfall.lon:.6f}",
                    f"{p.heading_deg:.4f}",
                    f"{p.central_pressure_mb:.4f}",
                    f"{p.rmw_km:.4f}",
                    f"{p.forward_speed_kmh:.4f}",
                    f"{p.track_offset_km:.4f}",
                ]
                row += [f"{r.inundation.depths_m[name]:.6f}" for name in asset_names]
                writer.writerow(row)


def load_ensemble_csv(path: str | Path) -> HurricaneEnsemble:
    """Reload an ensemble written by :func:`save_ensemble_csv`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such ensemble file: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SerializationError(f"{path} is empty") from None
        expected_prefix = ["index", "scenario", "seed"] + _PARAM_COLUMNS
        if header[: len(expected_prefix)] != expected_prefix:
            raise SerializationError(f"{path} does not look like an ensemble CSV")
        asset_names = [
            column[len(_DEPTH_PREFIX):]
            for column in header[len(expected_prefix):]
            if column.startswith(_DEPTH_PREFIX)
        ]
        if not asset_names:
            raise SerializationError(f"{path} has no asset depth columns")

        realizations = []
        scenario_name = ""
        seed: int | None = None
        for row in reader:
            if not row:
                continue
            try:
                index = int(row[0])
                scenario_name = row[1]
                seed = int(row[2]) if row[2] else None
                values = [float(v) for v in row[3:]]
            except (ValueError, IndexError) as exc:
                raise SerializationError(f"malformed row in {path}: {row}") from exc
            params = StormParameters(
                landfall=GeoPoint(values[0], values[1]),
                heading_deg=values[2],
                central_pressure_mb=values[3],
                rmw_km=values[4],
                forward_speed_kmh=values[5],
                track_offset_km=values[6],
            )
            depths = dict(zip(asset_names, values[7:]))
            if len(depths) != len(asset_names):
                raise SerializationError(f"row {index} in {path} is truncated")
            realizations.append(
                HurricaneRealization(index, params, InundationField(depths))
            )
    if not realizations:
        raise SerializationError(f"{path} contains no realizations")
    return HurricaneEnsemble(
        scenario_name=scenario_name, realizations=tuple(realizations), seed=seed
    )
