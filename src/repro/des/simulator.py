"""A minimal deterministic discrete-event simulator.

The BFT replication engine and failover timing studies run on simulated
time: events are scheduled at absolute timestamps and executed in order.
Ties are broken by insertion sequence, so runs are fully deterministic --
a property the replication safety checks rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AnalysisError


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """Run callables at simulated times, in deterministic order."""

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Run ``action`` after ``delay`` simulated time units."""
        if delay < 0.0:
            raise AnalysisError("cannot schedule events in the past")
        event = _ScheduledEvent(self._now + delay, next(self._sequence), action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Run ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise AnalysisError(
                f"cannot schedule at {time}; current time is {self._now}"
            )
        event = _ScheduledEvent(time, next(self._sequence), action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Execute the next event; ``False`` if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> None:
        """Run events until the queue drains or ``until`` is reached.

        ``max_events`` guards against runaway event loops (a protocol bug
        that keeps rescheduling forever); exceeding it raises.
        """
        executed = 0
        while self._queue:
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and next_event.time > until:
                self._now = until
                return
            if executed >= max_events:
                raise AnalysisError(
                    f"simulation exceeded {max_events} events; likely a "
                    "scheduling loop"
                )
            self.step()
            executed += 1
        if until is not None:
            self._now = max(self._now, until)
