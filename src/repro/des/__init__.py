"""Discrete-event simulation substrate."""

from repro.des.simulator import EventHandle, Simulator

__all__ = ["Simulator", "EventHandle"]
