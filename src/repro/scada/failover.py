"""Cold-backup failover timing (the cost of the orange state).

Primary-backup architectures restore operation by activating a cold backup,
which takes minutes (paper Section IV-A).  The analysis framework keeps the
orange state symbolic; this module quantifies it for downtime-weighted
availability extensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # avoid a runtime scada -> core import cycle
    from repro.core.states import OperationalState


@dataclass(frozen=True)
class FailoverPolicy:
    """Timing model for post-event service restoration.

    ``cold_activation_minutes`` is how long bringing a cold backup online
    takes (orange state).  ``red_outage_minutes`` is the assumed outage
    until repairs restore a non-operational system (red state); gray states
    are treated as unavailable for the full horizon because the system
    cannot be trusted even while "up".
    """

    cold_activation_minutes: float = 10.0
    red_outage_minutes: float = 24.0 * 60.0
    horizon_minutes: float = 7.0 * 24.0 * 60.0

    def __post_init__(self) -> None:
        if self.cold_activation_minutes < 0:
            raise ConfigurationError("activation time cannot be negative")
        if self.red_outage_minutes < 0:
            raise ConfigurationError("red outage time cannot be negative")
        if self.horizon_minutes <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.cold_activation_minutes > self.horizon_minutes:
            raise ConfigurationError("activation time exceeds the horizon")
        if self.red_outage_minutes > self.horizon_minutes:
            raise ConfigurationError("red outage exceeds the horizon")

    def downtime_minutes(self, state: "OperationalState") -> float:
        """Downtime charged to one event ending in ``state``."""
        downtime_by_state = {
            "green": 0.0,
            "orange": self.cold_activation_minutes,
            "red": self.red_outage_minutes,
            "gray": self.horizon_minutes,  # untrusted for the full horizon
        }
        try:
            return downtime_by_state[state.value]
        except KeyError:
            raise ConfigurationError(f"unknown operational state {state!r}") from None

    def availability(self, state: OperationalState) -> float:
        """Fraction of the horizon the system is usable after the event."""
        return 1.0 - self.downtime_minutes(state) / self.horizon_minutes
