"""The SCADA architectures analyzed by the paper (Section IV-A).

Five configurations, named by their replica counts per site:

* ``"2"``     -- one control center, primary + hot-standby SCADA master.
* ``"2-2"``   -- primary control center (2 SMs) plus a *cold* backup
                 control center (2 SMs) activated after a delay.
* ``"6"``     -- one control center running intrusion-tolerant replication
                 with 6 replicas (f=1 intrusion, k=1 proactive recovery).
* ``"6-6"``   -- "6" plus a cold-backup control center with 6 replicas.
* ``"6+6+6"`` -- network-attack-resilient intrusion tolerance: 6 *active*
                 replicas in each of two control centers and one data
                 center, a single replication group of 18.

The module also exposes generic constructors so deployments beyond the
paper's five (more sites, higher f) can be analyzed with the same
framework.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.registry import Registry
from repro.scada.replication import MultiSiteSizing, replicas_for_safety


class ArchitectureFamily(enum.Enum):
    """The structural family an architecture belongs to.

    The family determines how site availability maps to an operational
    state (Table I): single-site systems die with their site,
    primary-backup systems fail over with downtime (orange), and active
    multi-site systems continue seamlessly while a quorum survives.
    """

    SINGLE_SITE = "single_site"
    PRIMARY_BACKUP = "primary_backup"
    ACTIVE_MULTISITE = "active_multisite"


class SiteRole(enum.Enum):
    """A control site's role, in the attacker's targeting priority order."""

    PRIMARY = "primary"
    BACKUP = "backup"
    DATA_CENTER = "data_center"

    @property
    def attack_priority(self) -> int:
        """Lower is attacked first (paper Section V-B, rule 2)."""
        return {"primary": 0, "backup": 1, "data_center": 2}[self.value]


@dataclass(frozen=True)
class SiteSpec:
    """One control-site slot of an architecture."""

    role: SiteRole
    replicas: int
    cold: bool = False  # cold sites need activation (downtime) to serve

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError("a site must host at least one replica")


@dataclass(frozen=True)
class ArchitectureSpec:
    """A SCADA architecture: site slots plus intrusion-tolerance limits.

    ``intrusions_f`` is the number of simultaneous server intrusions the
    replication protocol tolerates while remaining safe (0 for the
    non-intrusion-tolerant "2" family, 1 for the "6" family), and
    ``recoveries_k`` the number of replicas that may concurrently be down
    for proactive recovery.
    """

    name: str
    family: ArchitectureFamily
    sites: tuple[SiteSpec, ...]
    intrusions_f: int = 0
    recoveries_k: int = 0

    def __post_init__(self) -> None:
        if not self.sites:
            raise ConfigurationError(f"architecture {self.name!r} has no sites")
        if self.intrusions_f < 0 or self.recoveries_k < 0:
            raise ConfigurationError("f and k cannot be negative")
        roles = [s.role for s in self.sites]
        if self.family is ArchitectureFamily.SINGLE_SITE:
            if len(self.sites) != 1 or roles[0] is not SiteRole.PRIMARY:
                raise ConfigurationError(
                    f"single-site architecture {self.name!r} must have exactly "
                    "one primary site"
                )
        elif self.family is ArchitectureFamily.PRIMARY_BACKUP:
            if len(self.sites) != 2 or roles != [SiteRole.PRIMARY, SiteRole.BACKUP]:
                raise ConfigurationError(
                    f"primary-backup architecture {self.name!r} must have a "
                    "primary site followed by a backup site"
                )
            if not self.sites[1].cold:
                raise ConfigurationError(
                    f"primary-backup architecture {self.name!r} requires a "
                    "cold backup site"
                )
        else:
            if len(self.sites) < 3:
                raise ConfigurationError(
                    f"active multi-site architecture {self.name!r} needs at "
                    "least 3 sites"
                )
            if any(s.cold for s in self.sites):
                raise ConfigurationError(
                    f"active multi-site architecture {self.name!r} cannot "
                    "have cold sites"
                )
        if self.intrusions_f > 0:
            needed = replicas_for_safety(self.intrusions_f, self.recoveries_k)
            if self.family is ArchitectureFamily.ACTIVE_MULTISITE:
                if self.total_replicas < needed:
                    raise ConfigurationError(
                        f"architecture {self.name!r} has {self.total_replicas} "
                        f"replicas but needs {needed} for f={self.intrusions_f}, "
                        f"k={self.recoveries_k}"
                    )
            else:
                # Per-site replication groups: every site must be able to
                # run the protocol on its own.
                for site in self.sites:
                    if site.replicas < needed:
                        raise ConfigurationError(
                            f"site {site.role.value!r} of {self.name!r} has "
                            f"{site.replicas} replicas but needs {needed} for "
                            f"f={self.intrusions_f}, k={self.recoveries_k}"
                        )

    @property
    def total_replicas(self) -> int:
        return sum(s.replicas for s in self.sites)

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def is_intrusion_tolerant(self) -> bool:
        return self.intrusions_f > 0

    def multisite_sizing(self) -> MultiSiteSizing:
        """The replication sizing view of an active multi-site deployment."""
        if self.family is not ArchitectureFamily.ACTIVE_MULTISITE:
            raise ConfigurationError(
                f"{self.name!r} is not an active multi-site architecture"
            )
        per_site = {s.replicas for s in self.sites}
        if len(per_site) != 1:
            raise ConfigurationError(
                f"{self.name!r} has uneven site sizes; sizing view requires "
                "equal replicas per site"
            )
        return MultiSiteSizing(
            num_sites=self.num_sites,
            replicas_per_site=per_site.pop(),
            intrusions_f=self.intrusions_f,
            recoveries_k=self.recoveries_k,
        )


# ---------------------------------------------------------------------------
# Generic constructors
# ---------------------------------------------------------------------------

def single_site(replicas: int, intrusions_f: int = 0, recoveries_k: int = 0, name: str | None = None) -> ArchitectureSpec:
    """A single control center with the given replica count."""
    return ArchitectureSpec(
        name=name or str(replicas),
        family=ArchitectureFamily.SINGLE_SITE,
        sites=(SiteSpec(SiteRole.PRIMARY, replicas),),
        intrusions_f=intrusions_f,
        recoveries_k=recoveries_k,
    )


def primary_backup(replicas: int, intrusions_f: int = 0, recoveries_k: int = 0, name: str | None = None) -> ArchitectureSpec:
    """A primary control center plus a cold-backup control center."""
    return ArchitectureSpec(
        name=name or f"{replicas}-{replicas}",
        family=ArchitectureFamily.PRIMARY_BACKUP,
        sites=(
            SiteSpec(SiteRole.PRIMARY, replicas),
            SiteSpec(SiteRole.BACKUP, replicas, cold=True),
        ),
        intrusions_f=intrusions_f,
        recoveries_k=recoveries_k,
    )


def active_multisite(
    replicas_per_site: int,
    num_sites: int = 3,
    intrusions_f: int = 1,
    recoveries_k: int = 1,
    data_center_sites: int = 1,
    name: str | None = None,
) -> ArchitectureSpec:
    """Active replication across control centers plus data centers.

    The first ``num_sites - data_center_sites`` sites are control centers
    (a primary followed by backups); the rest are data centers that host
    replicas only.
    """
    if not 0 <= data_center_sites < num_sites:
        raise ConfigurationError(
            "data center count must leave at least one control center"
        )
    roles: list[SiteRole] = []
    control_sites = num_sites - data_center_sites
    for i in range(control_sites):
        roles.append(SiteRole.PRIMARY if i == 0 else SiteRole.BACKUP)
    roles.extend([SiteRole.DATA_CENTER] * data_center_sites)
    return ArchitectureSpec(
        name=name or "+".join([str(replicas_per_site)] * num_sites),
        family=ArchitectureFamily.ACTIVE_MULTISITE,
        sites=tuple(SiteSpec(role, replicas_per_site) for role in roles),
        intrusions_f=intrusions_f,
        recoveries_k=recoveries_k,
    )


# ---------------------------------------------------------------------------
# The paper's five configurations
# ---------------------------------------------------------------------------

CONFIG_2 = single_site(2)
CONFIG_2_2 = primary_backup(2)
CONFIG_6 = single_site(6, intrusions_f=1, recoveries_k=1)
CONFIG_6_6 = primary_backup(6, intrusions_f=1, recoveries_k=1)
CONFIG_6_6_6 = active_multisite(6, num_sites=3, intrusions_f=1, recoveries_k=1)

PAPER_CONFIGURATIONS: tuple[ArchitectureSpec, ...] = (
    CONFIG_2,
    CONFIG_2_2,
    CONFIG_6,
    CONFIG_6_6,
    CONFIG_6_6_6,
)

_BY_NAME: Registry[ArchitectureSpec] = Registry("architecture")
for _spec in PAPER_CONFIGURATIONS:
    _BY_NAME.register(_spec.name, _spec)


def get_architecture(name: str) -> ArchitectureSpec:
    """Look up one of the paper's configurations by its name (e.g. "6-6")."""
    return _BY_NAME.get(name)


def available_architectures() -> list[str]:
    """Registered architecture names, sorted."""
    return _BY_NAME.available()
