"""Replication sizing math for intrusion-tolerant SCADA.

The intrusion-tolerant architectures in the paper come from the Spire line
of work (Kirsch et al. 2014; Babay et al. 2018): a replicated SCADA master
needs ``n = 3f + 2k + 1`` replicas to stay safe and live with up to ``f``
simultaneous Byzantine intrusions while ``k`` replicas are down for
proactive recovery.  The paper's configuration "6" is exactly f=1, k=1.

For multi-site active replication ("6+6+6"), the system must keep a live
quorum after losing any one site, which is why 6 replicas are placed in
each of 3 sites: any 2 sites hold 12 replicas, and ``12 - f - k = 10``
meets the quorum of 10 out of 18.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


def replicas_for_safety(intrusions_f: int, recoveries_k: int = 0) -> int:
    """Minimum replicas for safety+liveness: ``3f + 2k + 1``."""
    if intrusions_f < 0 or recoveries_k < 0:
        raise ConfigurationError("f and k cannot be negative")
    return 3 * intrusions_f + 2 * recoveries_k + 1


def quorum_size(total_replicas: int, intrusions_f: int) -> int:
    """Byzantine quorum: ``ceil((n + f + 1) / 2)``.

    Any two quorums intersect in at least ``f + 1`` replicas, so at least
    one correct replica witnesses both -- the standard BFT safety argument.
    """
    if total_replicas < 1:
        raise ConfigurationError("total replicas must be positive")
    if intrusions_f < 0:
        raise ConfigurationError("f cannot be negative")
    if total_replicas < replicas_for_safety(intrusions_f):
        raise ConfigurationError(
            f"{total_replicas} replicas cannot tolerate f={intrusions_f} "
            f"(need at least {replicas_for_safety(intrusions_f)})"
        )
    return math.ceil((total_replicas + intrusions_f + 1) / 2)


def can_make_progress(
    available_replicas: int,
    total_replicas: int,
    intrusions_f: int,
    recoveries_k: int = 0,
) -> bool:
    """Whether a replica group can order updates.

    ``available_replicas`` are connected and powered; of those, up to ``f``
    may be Byzantine (they may refuse to help) and up to ``k`` may be down
    for proactive recovery, so the correct-and-present count must still
    reach the quorum.
    """
    if available_replicas < 0 or available_replicas > total_replicas:
        raise ConfigurationError(
            f"available replicas {available_replicas} outside "
            f"[0, {total_replicas}]"
        )
    q = quorum_size(total_replicas, intrusions_f)
    return available_replicas - intrusions_f - recoveries_k >= q


@dataclass(frozen=True)
class MultiSiteSizing:
    """Sizing of an active multi-site replication deployment."""

    num_sites: int
    replicas_per_site: int
    intrusions_f: int
    recoveries_k: int

    def __post_init__(self) -> None:
        if self.num_sites < 3:
            raise ConfigurationError(
                "active multi-site replication needs at least 3 sites to "
                "survive one site loss without downtime"
            )
        if self.replicas_per_site < 1:
            raise ConfigurationError("each site needs at least one replica")
        if not self.survives_site_losses(1):
            raise ConfigurationError(
                f"{self.num_sites} sites x {self.replicas_per_site} replicas "
                f"cannot make progress after one site loss with "
                f"f={self.intrusions_f}, k={self.recoveries_k}"
            )

    @property
    def total_replicas(self) -> int:
        return self.num_sites * self.replicas_per_site

    @property
    def quorum(self) -> int:
        return quorum_size(self.total_replicas, self.intrusions_f)

    def survives_site_losses(self, lost_sites: int) -> bool:
        """Whether progress continues after losing ``lost_sites`` sites."""
        if lost_sites < 0 or lost_sites > self.num_sites:
            raise ConfigurationError(
                f"lost sites {lost_sites} outside [0, {self.num_sites}]"
            )
        remaining = (self.num_sites - lost_sites) * self.replicas_per_site
        return can_make_progress(
            remaining, self.total_replicas, self.intrusions_f, self.recoveries_k
        )

    def min_sites_for_progress(self) -> int:
        """Smallest number of functioning sites that can still order updates."""
        for up in range(1, self.num_sites + 1):
            lost = self.num_sites - up
            if self.survives_site_losses(lost):
                return up
        raise ConfigurationError(
            "deployment cannot make progress even with all sites up"
        )  # pragma: no cover - excluded by __post_init__


def spire_sizing(num_sites: int = 3, intrusions_f: int = 1, recoveries_k: int = 1) -> MultiSiteSizing:
    """The Spire-style sizing: ``3f + 2k + 1`` replicas in *every* site.

    Placing a full safety group per site is conservative but keeps any
    surviving pair of sites comfortably above quorum -- it is exactly the
    paper's "6+6+6" for the defaults.
    """
    return MultiSiteSizing(
        num_sites=num_sites,
        replicas_per_site=replicas_for_safety(intrusions_f, recoveries_k),
        intrusions_f=intrusions_f,
        recoveries_k=recoveries_k,
    )
