"""Deployment cost modeling: what does each architecture's resilience buy?

The paper compares architectures purely on resilience; a utility also
weighs cost.  This extension prices a deployment (replica servers, owned
control centers, colocation racks, redundant WAN uplinks) and combines it
with the timeline extension's downtime distribution into a total annual
cost -- capital plus expected outage losses -- so "6+6+6 vs 6-6" becomes
a quantified trade, not a qualitative one.

Figures are representative annual costs in k$ (order-of-magnitude,
documented defaults); every coefficient is a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.scada.architectures import ArchitectureSpec, SiteRole


@dataclass(frozen=True)
class CostModel:
    """Annualized cost coefficients (k$/year)."""

    replica_server_cost: float = 25.0
    control_center_cost: float = 400.0
    data_center_rack_cost: float = 60.0
    wan_uplink_cost: float = 30.0
    uplinks_per_site: int = 2

    def __post_init__(self) -> None:
        values = (
            self.replica_server_cost,
            self.control_center_cost,
            self.data_center_rack_cost,
            self.wan_uplink_cost,
        )
        if any(v < 0 for v in values):
            raise ConfigurationError("cost coefficients cannot be negative")
        if self.uplinks_per_site < 1:
            raise ConfigurationError("each site needs at least one uplink")

    def annual_cost(self, architecture: ArchitectureSpec) -> float:
        """Capital + operations cost of a deployment, k$/year."""
        total = architecture.total_replicas * self.replica_server_cost
        for site in architecture.sites:
            if site.role is SiteRole.DATA_CENTER:
                total += self.data_center_rack_cost
            else:
                total += self.control_center_cost
            total += self.uplinks_per_site * self.wan_uplink_cost
        return total


@dataclass(frozen=True)
class TotalCostAssessment:
    """Capital cost plus expected outage losses for one configuration."""

    architecture_name: str
    annual_deployment_cost: float
    expected_annual_outage_cost: float

    @property
    def total_annual_cost(self) -> float:
        return self.annual_deployment_cost + self.expected_annual_outage_cost


def assess_total_cost(
    architecture: ArchitectureSpec,
    mean_unavailable_h_per_event: float,
    mean_unsafe_h_per_event: float,
    events_per_year: float = 0.25,
    outage_cost_per_hour: float = 150.0,
    unsafe_cost_per_hour: float = 600.0,
    cost_model: CostModel | None = None,
) -> TotalCostAssessment:
    """Combine deployment cost with expected compound-event losses.

    ``events_per_year`` is the annual rate of compound events (a damaging
    hurricane + attack every ~4 years by default); unsafe (gray) hours
    are costed higher than plain outage hours because an adversary is
    actively driving the grid.
    """
    if mean_unavailable_h_per_event < 0 or mean_unsafe_h_per_event < 0:
        raise ConfigurationError("mean downtime cannot be negative")
    if events_per_year < 0:
        raise ConfigurationError("event rate cannot be negative")
    if outage_cost_per_hour < 0 or unsafe_cost_per_hour < 0:
        raise ConfigurationError("hourly costs cannot be negative")
    model = cost_model or CostModel()
    outage = events_per_year * (
        mean_unavailable_h_per_event * outage_cost_per_hour
        + mean_unsafe_h_per_event * unsafe_cost_per_hour
    )
    return TotalCostAssessment(
        architecture_name=architecture.name,
        annual_deployment_cost=model.annual_cost(architecture),
        expected_annual_outage_cost=outage,
    )
