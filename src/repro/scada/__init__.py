"""SCADA system substrate: architectures, placement, replication sizing."""

from repro.scada.architectures import (
    CONFIG_2,
    CONFIG_2_2,
    CONFIG_6,
    CONFIG_6_6,
    CONFIG_6_6_6,
    PAPER_CONFIGURATIONS,
    ArchitectureFamily,
    ArchitectureSpec,
    SiteRole,
    SiteSpec,
    active_multisite,
    get_architecture,
    primary_backup,
    single_site,
)
from repro.scada.cost import CostModel, TotalCostAssessment, assess_total_cost
from repro.scada.failover import FailoverPolicy
from repro.scada.placement import PLACEMENT_KAHE, PLACEMENT_WAIAU, Placement
from repro.scada.replication import (
    MultiSiteSizing,
    can_make_progress,
    quorum_size,
    replicas_for_safety,
    spire_sizing,
)

__all__ = [
    "ArchitectureFamily",
    "ArchitectureSpec",
    "SiteRole",
    "SiteSpec",
    "single_site",
    "primary_backup",
    "active_multisite",
    "get_architecture",
    "CONFIG_2",
    "CONFIG_2_2",
    "CONFIG_6",
    "CONFIG_6_6",
    "CONFIG_6_6_6",
    "PAPER_CONFIGURATIONS",
    "Placement",
    "PLACEMENT_WAIAU",
    "PLACEMENT_KAHE",
    "FailoverPolicy",
    "CostModel",
    "TotalCostAssessment",
    "assess_total_cost",
    "MultiSiteSizing",
    "replicas_for_safety",
    "quorum_size",
    "can_make_progress",
    "spire_sizing",
]
