"""Placements: assigning architecture site slots to geographic assets.

A placement names the assets that host each control-site slot.  The same
placement is shared across all five paper configurations: "2" and "6" use
only the primary, "2-2" and "6-6" add the backup, and "6+6+6" adds the
data center(s).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, TopologyError
from repro.geo.catalog import AssetCatalog
from repro.geo import DRFORTRESS, HONOLULU_CC, KAHE_CC, WAIAU_CC
from repro.registry import Registry
from repro.scada.architectures import ArchitectureFamily, ArchitectureSpec, SiteRole


@dataclass(frozen=True)
class Placement:
    """Asset names hosting the primary, backup, and data-center slots.

    ``extra_backups`` supplies additional backup-role slots for
    architectures beyond the paper's five (e.g. a five-site active
    deployment with two backup control centers).
    """

    primary: str
    backup: str | None = None
    data_centers: tuple[str, ...] = field(default=())
    extra_backups: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        names = self._all_names()
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"placement assigns the same asset to multiple slots: {names}"
            )

    def _all_names(self) -> list[str]:
        names = [self.primary]
        if self.backup is not None:
            names.append(self.backup)
        names.extend(self.extra_backups)
        names.extend(self.data_centers)
        return names

    def label(self) -> str:
        """Short human-readable label, e.g. for figure captions."""
        return " + ".join(self._all_names())

    def sites_for(self, architecture: ArchitectureSpec) -> tuple[str, ...]:
        """Asset names aligned with the architecture's site slots.

        Raises :class:`ConfigurationError` if the placement does not supply
        enough assets for the architecture's slots.
        """
        backups = [self.backup] if self.backup is not None else []
        backups.extend(self.extra_backups)
        pools: dict[SiteRole, list[str]] = {
            SiteRole.PRIMARY: [self.primary],
            SiteRole.BACKUP: list(backups),
            SiteRole.DATA_CENTER: list(self.data_centers),
        }
        assigned: list[str] = []
        for slot in architecture.sites:
            pool = pools[slot.role]
            if not pool:
                raise ConfigurationError(
                    f"placement {self.label()!r} has no remaining asset for a "
                    f"{slot.role.value!r} slot of architecture "
                    f"{architecture.name!r}"
                )
            assigned.append(pool.pop(0))
        return tuple(assigned)

    def validate_against(self, catalog: AssetCatalog) -> None:
        """Check every placed asset exists and can host control software."""
        for name in self._all_names():
            asset = catalog.get(name)  # raises TopologyError if missing
            if not asset.role.is_control_site:
                raise TopologyError(
                    f"asset {name!r} has role {asset.role.value!r} and cannot "
                    "host SCADA masters"
                )


# The two placements studied by the paper (Sections VI and VII).
PLACEMENT_WAIAU = Placement(
    primary=HONOLULU_CC, backup=WAIAU_CC, data_centers=(DRFORTRESS,)
)
PLACEMENT_KAHE = Placement(
    primary=HONOLULU_CC, backup=KAHE_CC, data_centers=(DRFORTRESS,)
)


_PLACEMENTS: Registry[Placement] = Registry("placement")


def register_placement(
    name: str, placement: Placement, *, replace: bool = False
) -> Placement:
    """Register a placement under a short name (e.g. for CLI/sweep use)."""
    return _PLACEMENTS.register(name, placement, replace=replace)


def get_placement(name: str) -> Placement:
    """Look up a registered placement by name."""
    return _PLACEMENTS.get(name)


def available_placements() -> list[str]:
    """Registered placement names, sorted."""
    return _PLACEMENTS.available()


register_placement("waiau", PLACEMENT_WAIAU)
register_placement("kahe", PLACEMENT_KAHE)
