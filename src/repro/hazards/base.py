"""Hazard-agnostic interfaces consumed by the analysis pipeline.

The compound threat model is generic in the natural disaster (paper
Section III-B): the pipeline only needs, per realization, *which assets
failed*.  Any hazard that yields realizations with a ``failed_assets``
method and an index therefore plugs in -- the hurricane ensemble is the
paper's case study, the earthquake ensemble demonstrates the generality.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from repro.hazards.fragility import FragilityModel


@runtime_checkable
class HazardRealization(Protocol):
    """One sampled disaster outcome."""

    index: int

    def failed_assets(
        self,
        fragility: FragilityModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> frozenset[str]:
        """Asset names rendered non-operational in this realization."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class HazardEnsemble(Protocol):
    """An ordered collection of hazard realizations."""

    def __len__(self) -> int:
        ...  # pragma: no cover - protocol

    def __iter__(self) -> Iterator[HazardRealization]:
        ...  # pragma: no cover - protocol
