"""Hazard-agnostic interfaces consumed by the analysis pipeline.

The compound threat model is generic in the natural disaster (paper
Section III-B): the pipeline only needs, per realization, *which assets
failed*.  Any hazard that yields realizations with a ``failed_assets``
method and an index therefore plugs in -- the hurricane ensemble is the
paper's case study, the earthquake ensemble demonstrates the generality.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from repro.hazards.fragility import FragilityModel


@runtime_checkable
class HazardRealization(Protocol):
    """One sampled disaster outcome."""

    index: int

    def failed_assets(
        self,
        fragility: FragilityModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> frozenset[str]:
        """Asset names rendered non-operational in this realization."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class HazardEnsemble(Protocol):
    """An ordered collection of hazard realizations."""

    def __len__(self) -> int:
        ...  # pragma: no cover - protocol

    def __iter__(self) -> Iterator[HazardRealization]:
        ...  # pragma: no cover - protocol


@runtime_checkable
class Hazard(Protocol):
    """A hazard family's ensemble generator.

    Every hazard family (hurricane surge, earthquake shaking, riverine
    flooding, ...) exposes the same four capabilities so the study
    facade, sweep engine, and ensemble cache can treat them uniformly:

    * ``generate(count, seed, ...)`` -- sample ``count`` realizations
      into a :class:`HazardEnsemble`.  Implementations accept (and may
      ignore) the delivery keywords ``n_jobs``, ``cache_dir``,
      ``resume``, ``retry``, and ``faults`` so callers never need to
      know whether generation is parallel or cached.
    * per-asset intensity sampling -- the returned ensemble exposes
      ``depth_matrix()``/``depth_view()`` (the family's intensity
      measure: inundation depth, PGA, flood stage) for the batched
      executor and fragility models.
    * ``cache_key(count, seed)`` -- a content hash covering the scenario
      parameters *and* the geography they act on, so two generators
      share cached ensembles iff they would generate identical data.
    * ``deterministic`` -- True when ``generate`` is a pure function of
      ``(count, seed)``; lets schedulers cache/regenerate freely.
    """

    deterministic: bool

    def generate(
        self,
        count: int,
        seed: int,
        **delivery: object,
    ) -> HazardEnsemble:
        """Sample ``count`` realizations deterministically from ``seed``."""
        ...  # pragma: no cover - protocol

    def cache_key(self, count: int, seed: int) -> str:
        """Content hash identifying the generated ensemble."""
        ...  # pragma: no cover - protocol
