"""Riverine flood hazard family.

The third hazard family (after hurricane surge and earthquake shaking),
added to prove the :class:`repro.hazards.base.Hazard` abstraction: a
river channel is a polyline, annual peak discharge is lognormal, a
stage-discharge rating curve converts discharge to water-surface stage
at the channel, and the flood spreads laterally with an exponential
floodplain decay.  Per-asset inundation depth is then

    ``depth = max(0, stage * exp(-distance / floodplain_width) - elevation)``

so low-lying assets near the channel flood in large events while
elevated or distant assets stay dry.  The intensity measure is depth in
metres -- the same measure as hurricane surge -- so the default
:class:`~repro.hazards.fragility.ThresholdFragility` and the fused
batched executor apply unchanged.

Like the earthquake model this is a deliberately simple, fully
deterministic-from-seed physical model: the point is the pipeline
contract (realizations -> fragility -> interdependency -> attack ->
classification), not hydrological fidelity.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass
from typing import Iterator

import numpy as np

from repro.errors import HazardError
from repro.geo.catalog import AssetCatalog
from repro.geo.coords import GeoPoint, segment_distance_km
from repro.hazards.fragility import FragilityModel, ThresholdFragility

__all__ = [
    "RiverineFloodScenarioSpec",
    "FloodRealization",
    "FloodEnsemble",
    "FloodGenerator",
    "flood_fragility",
    "standard_oahu_flood",
]

DEFAULT_FLOOD_THRESHOLD_M = 0.5


def flood_fragility(threshold_m: float = DEFAULT_FLOOD_THRESHOLD_M) -> ThresholdFragility:
    """The fragility model matching this hazard's depth intensity measure."""
    return ThresholdFragility(threshold_m)


@dataclass(frozen=True)
class RiverineFloodScenarioSpec:
    """Parameters of a riverine flood scenario.

    ``channel`` is the river centreline (>= 2 vertices, upstream to
    mouth).  Discharge is lognormal around ``discharge_median_m3s`` with
    log standard deviation ``discharge_log_sd``; the rating curve
    ``stage = rating_depth_m * (Q / Q_median) ** rating_exponent``
    converts it to channel stage, which decays laterally with e-folding
    length ``floodplain_width_km``.
    """

    name: str
    channel: tuple[GeoPoint, ...]
    discharge_median_m3s: float = 350.0
    discharge_log_sd: float = 0.55
    rating_depth_m: float = 2.6
    rating_exponent: float = 0.45
    floodplain_width_km: float = 1.8

    def __post_init__(self) -> None:
        if not self.name:
            raise HazardError("flood scenario name must be non-empty")
        if len(self.channel) < 2:
            raise HazardError("river channel needs at least 2 vertices")
        if self.discharge_median_m3s <= 0:
            raise HazardError("median discharge must be positive")
        if self.discharge_log_sd < 0:
            raise HazardError("discharge log-sd must be non-negative")
        if self.rating_depth_m <= 0:
            raise HazardError("rating depth must be positive")
        if not 0 < self.rating_exponent <= 1:
            raise HazardError("rating exponent must be in (0, 1]")
        if self.floodplain_width_km <= 0:
            raise HazardError("floodplain width must be positive")

    def sample_discharge(self, rng: np.random.Generator) -> float:
        """One lognormal peak-discharge draw in m^3/s."""
        return float(
            self.discharge_median_m3s
            * math.exp(self.discharge_log_sd * rng.standard_normal())
        )

    def stage_for(self, discharge_m3s: float) -> float:
        """Rating curve: channel water-surface stage (m) for a discharge."""
        ratio = discharge_m3s / self.discharge_median_m3s
        return self.rating_depth_m * ratio**self.rating_exponent


@dataclass(frozen=True)
class FloodRealization:
    """One sampled flood: discharge plus per-asset inundation depth."""

    index: int
    discharge_m3s: float
    stage_m: float
    depths_m: dict[str, float]

    def depth_at(self, asset_name: str) -> float:
        try:
            return self.depths_m[asset_name]
        except KeyError:
            raise HazardError(f"no flood depth for asset {asset_name!r}") from None

    def failed_assets(
        self,
        fragility: FragilityModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> frozenset[str]:
        model = fragility or flood_fragility()
        return model.failed_assets(self.depths_m, rng)


@dataclass(frozen=True)
class FloodEnsemble:
    """An ordered collection of flood realizations."""

    scenario_name: str
    realizations: tuple[FloodRealization, ...]
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.realizations:
            raise HazardError("ensemble must contain at least one realization")

    def __len__(self) -> int:
        return len(self.realizations)

    def __iter__(self) -> Iterator[FloodRealization]:
        return iter(self.realizations)

    def __getitem__(self, index: int) -> FloodRealization:
        return self.realizations[index]

    @property
    def asset_names(self) -> list[str]:
        return list(self.realizations[0].depths_m)

    def _intensity_data(self) -> np.ndarray:
        """The cached (R x A) inundation-depth matrix."""
        try:
            return self._intensity_cache  # type: ignore[attr-defined]
        except AttributeError:
            pass
        names = self.asset_names
        matrix = np.array([[r.depths_m[n] for n in names] for r in self.realizations])
        object.__setattr__(self, "_intensity_cache", matrix)
        return matrix

    def depth_matrix(self) -> np.ndarray:
        """(n_realizations, n_assets) inundation depths in metres."""
        return self._intensity_data().copy()

    def depth_view(self) -> np.ndarray:
        """The cached depth matrix without the defensive copy."""
        return self._intensity_data()

    def flood_probability(
        self, asset_name: str, fragility: FragilityModel | None = None
    ) -> float:
        model = fragility or flood_fragility()
        hits = sum(
            1
            for r in self.realizations
            if asset_name in r.failed_assets(fragility=model)
        )
        return hits / len(self.realizations)


class FloodGenerator:
    """Samples riverine flood realizations over an asset catalog.

    Implements the :class:`repro.hazards.base.Hazard` protocol:
    generation is a pure function of ``(count, seed)`` and ``cache_key``
    covers the flood scenario plus the asset catalog it inundates.
    """

    deterministic = True

    def __init__(self, catalog: AssetCatalog, scenario: RiverineFloodScenarioSpec) -> None:
        if len(catalog) == 0:
            raise HazardError("catalog has no assets")
        self.catalog = catalog
        self.scenario = scenario
        self._names = catalog.names
        self._elevations = np.array(
            [catalog.get(n).elevation_m for n in self._names]
        )
        channel = scenario.channel
        self._channel_distance_km = np.array(
            [
                min(
                    segment_distance_km(catalog.get(n).location, a, b)
                    for a, b in zip(channel, channel[1:])
                )
                for n in self._names
            ]
        )
        self._lateral_decay = np.exp(
            -self._channel_distance_km / scenario.floodplain_width_km
        )

    def realize(self, index: int, rng: np.random.Generator) -> FloodRealization:
        discharge = self.scenario.sample_discharge(rng)
        stage = self.scenario.stage_for(discharge)
        depths = np.maximum(0.0, stage * self._lateral_decay - self._elevations)
        return FloodRealization(
            index=index,
            discharge_m3s=discharge,
            stage_m=stage,
            depths_m=dict(zip(self._names, depths.tolist())),
        )

    def generate(
        self, count: int = 1000, seed: int = 0, **delivery: object
    ) -> FloodEnsemble:
        """Sample ``count`` realizations (pure in ``count``/``seed``).

        Generation is cheap (closed-form depths, no mesh solve), so the
        :class:`Hazard` delivery keywords (``n_jobs``, ``cache_dir``,
        ``resume``, ...) are accepted and ignored.
        """
        if count < 1:
            raise HazardError("ensemble size must be at least 1")
        rng = np.random.default_rng(seed)
        realizations = tuple(self.realize(i, rng) for i in range(count))
        return FloodEnsemble(
            scenario_name=self.scenario.name, realizations=realizations, seed=seed
        )

    def cache_key(self, count: int, seed: int) -> str:
        """Content hash over the flood scenario, catalog, count, and seed."""
        from repro.geo.digest import geo_content_key

        payload = {
            "format": 1,
            "kind": "repro.flood",
            "scenario": asdict(self.scenario),
            "geo": geo_content_key(self.catalog),
            "count": count,
            "seed": seed,
        }
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def standard_oahu_flood() -> RiverineFloodScenarioSpec:
    """A synthetic Pearl Harbor / Honolulu-plain floodway.

    The channel descends from the Koolau range through the Waiau
    lowlands and along the southern coastal plain past downtown
    Honolulu, so the paper's two low-lying control sites (Waiau at
    2.6 m, Honolulu at 2.6 m) share the flood exposure while Kahe and
    the inland data centers stay dry -- the same correlated-control-site
    structure the hurricane case study exhibits.
    """
    return RiverineFloodScenarioSpec(
        name="oahu-pearl-floodway",
        channel=(
            GeoPoint(21.420, -157.900),
            GeoPoint(21.385, -157.935),
            GeoPoint(21.372, -157.940),
            GeoPoint(21.340, -157.915),
            GeoPoint(21.310, -157.870),
            GeoPoint(21.300, -157.858),
        ),
    )
