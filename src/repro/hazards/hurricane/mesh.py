"""Coastal mesh discretization of a region's shoreline.

The surge solver evaluates wind setup at discrete shoreline nodes, the
same way ADCIRC resolves the coast with near-shore mesh elements.  Each
node carries its location, the shoreline segment it belongs to (for the
segment's shelf factor), and the local *onshore normal* -- the unit vector
pointing inland, against which the wind's onshore component is measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import HazardError
from repro.geo.coords import GeoPoint, LocalProjection
from repro.geo.region import CoastalRegion


@dataclass(frozen=True)
class MeshNode:
    """One shoreline node of the coastal mesh."""

    index: int
    point: GeoPoint
    segment_name: str
    shelf_factor: float
    onshore_normal: tuple[float, float]  # (east, north) unit vector, points inland


@dataclass(frozen=True)
class CoastalMesh:
    """Shoreline nodes for a region, plus cached planar geometry.

    Nodes are ordered walking the shoreline ring segment by segment, so a
    moving-average window over node indices is a window over physically
    adjacent coastline (as used by the paper's shoreline averaging step).
    """

    region: CoastalRegion
    nodes: tuple[MeshNode, ...]
    projection: LocalProjection

    def __post_init__(self) -> None:
        if len(self.nodes) < 3:
            raise HazardError("coastal mesh needs at least 3 nodes")

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def xy_km(self) -> np.ndarray:
        """Planar (n, 2) node coordinates in the mesh projection."""
        return np.array([self.projection.to_xy(n.point) for n in self.nodes])

    @property
    def normals(self) -> np.ndarray:
        """Planar (n, 2) onshore unit normals."""
        return np.array([n.onshore_normal for n in self.nodes])

    @property
    def shelf_factors(self) -> np.ndarray:
        return np.array([n.shelf_factor for n in self.nodes])

    def nodes_in_segment(self, segment_name: str) -> list[MeshNode]:
        return [n for n in self.nodes if n.segment_name == segment_name]

    def segment_slices(self) -> dict[str, slice]:
        """Index ranges of each shoreline segment (nodes are contiguous)."""
        slices: dict[str, slice] = {}
        start = 0
        current = self.nodes[0].segment_name
        for i, node in enumerate(self.nodes):
            if node.segment_name != current:
                slices[current] = slice(start, i)
                start = i
                current = node.segment_name
        slices[current] = slice(start, len(self.nodes))
        return slices


def build_coastal_mesh(region: CoastalRegion, spacing_km: float = 2.0) -> CoastalMesh:
    """Discretize a region's shoreline into nodes every ``spacing_km``.

    Nodes are placed along each segment's edges at the requested spacing;
    every segment contributes at least its edge midpoints so no segment is
    left unresolved.  The onshore normal of each node is the edge
    perpendicular oriented toward the region centroid.
    """
    if spacing_km <= 0.0:
        raise HazardError("mesh spacing must be positive")
    projection = LocalProjection(region.centroid)
    cx, cy = 0.0, 0.0  # centroid in its own projection
    nodes: list[MeshNode] = []
    for segment in region.segments:
        vs = segment.vertices
        for a, b in zip(vs, vs[1:]):
            ax, ay = projection.to_xy(a)
            bx, by = projection.to_xy(b)
            edge_len = math.hypot(bx - ax, by - ay)
            if edge_len == 0.0:
                continue
            count = max(1, int(round(edge_len / spacing_km)))
            dx = (bx - ax) / edge_len
            dy = (by - ay) / edge_len
            # Two candidate perpendiculars; pick the one facing the centroid.
            for k in range(count):
                frac = (k + 0.5) / count
                px = ax + frac * (bx - ax)
                py = ay + frac * (by - ay)
                if segment.onshore_bearing_override is not None:
                    theta = math.radians(segment.onshore_bearing_override)
                    nx, ny = math.sin(theta), math.cos(theta)
                else:
                    nx, ny = -dy, dx
                    if (cx - px) * nx + (cy - py) * ny < 0.0:
                        nx, ny = -nx, -ny
                nodes.append(
                    MeshNode(
                        index=len(nodes),
                        point=projection.to_point(px, py),
                        segment_name=segment.name,
                        shelf_factor=segment.shelf_factor,
                        onshore_normal=(nx, ny),
                    )
                )
    return CoastalMesh(region=region, nodes=tuple(nodes), projection=projection)
