"""Hurricane hazard substrate: track, wind, surge, inundation, ensembles."""

from repro.hazards.hurricane.ensemble import (
    EnsembleGenerator,
    HurricaneEnsemble,
    HurricaneRealization,
    HurricaneScenarioSpec,
    StormParameters,
)
from repro.hazards.hurricane.inundation import (
    Basin,
    ExtensionParams,
    InundationField,
    InundationMapper,
    smooth_shoreline,
)
from repro.hazards.hurricane.mesh import CoastalMesh, MeshNode, build_coastal_mesh
from repro.hazards.hurricane.standard import (
    DEFAULT_REALIZATIONS,
    DEFAULT_SEED,
    OAHU_SOUTH_SHORE_BASIN,
    oahu_scenario_for_category,
    shared_standard_generator,
    standard_oahu_ensemble,
    standard_oahu_generator,
    standard_oahu_scenario,
)
from repro.hazards.hurricane.surge import SurgeModel, SurgeModelParams, SurgeResult
from repro.hazards.hurricane.validation import (
    WindFieldDiagnostics,
    diagnose_wind_field,
    hydrograph,
)
from repro.hazards.hurricane.track import (
    AMBIENT_PRESSURE_MB,
    StormTrack,
    TrackPoint,
    estimate_max_gradient_wind_ms,
    saffir_simpson_category,
    synthesize_linear_track,
)
from repro.hazards.hurricane.wind import HollandWindField, coriolis_parameter

__all__ = [
    "AMBIENT_PRESSURE_MB",
    "DEFAULT_REALIZATIONS",
    "DEFAULT_SEED",
    "CoastalMesh",
    "MeshNode",
    "build_coastal_mesh",
    "EnsembleGenerator",
    "HurricaneEnsemble",
    "HurricaneRealization",
    "HurricaneScenarioSpec",
    "StormParameters",
    "ExtensionParams",
    "InundationField",
    "InundationMapper",
    "smooth_shoreline",
    "SurgeModel",
    "SurgeModelParams",
    "SurgeResult",
    "StormTrack",
    "TrackPoint",
    "synthesize_linear_track",
    "saffir_simpson_category",
    "estimate_max_gradient_wind_ms",
    "HollandWindField",
    "coriolis_parameter",
    "standard_oahu_scenario",
    "standard_oahu_generator",
    "shared_standard_generator",
    "standard_oahu_ensemble",
    "oahu_scenario_for_category",
    "OAHU_SOUTH_SHORE_BASIN",
    "WindFieldDiagnostics",
    "diagnose_wind_field",
    "hydrograph",
    "Basin",
]
