"""Diagnostics validating the parametric hurricane model.

ADCIRC users sanity-check their wind forcing before trusting the surge;
these utilities do the same for the Holland substrate: maximum winds vs.
Saffir-Simpson expectations, wind-radius metrics (R34/R50/R64, the
operational size measures), and the translation asymmetry ratio.  Used by
tests and available to anyone recalibrating the scenario for a different
basin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import HazardError
from repro.geo.coords import GeoPoint, LocalProjection
from repro.hazards.hurricane.track import TrackPoint, saffir_simpson_category
from repro.hazards.hurricane.wind import SURFACE_WIND_FACTOR, HollandWindField

#: Operational wind radii thresholds (m/s): gale, storm, hurricane force.
R34_MS = 17.5
R50_MS = 25.7
R64_MS = 32.9


@dataclass(frozen=True)
class WindFieldDiagnostics:
    """Summary metrics of one storm instant's wind field."""

    max_surface_wind_ms: float
    category: int
    radius_max_wind_km: float
    r34_km: float
    r50_km: float
    r64_km: float
    asymmetry_ratio: float  # right-side / left-side peak wind

    def consistent_with_category(self, expected: int) -> bool:
        return self.category == expected


def _radius_where_wind_drops_below(
    field: HollandWindField, threshold_ms: float, max_radius_km: float = 600.0
) -> float:
    """Outermost radius (km) where the surface wind reaches ``threshold``."""
    radii = np.linspace(1.0, max_radius_km, 1200)
    winds = SURFACE_WIND_FACTOR * field.gradient_wind_ms(radii)
    reaching = np.where(winds >= threshold_ms)[0]
    if reaching.size == 0:
        return 0.0
    return float(radii[reaching[-1]])


def diagnose_wind_field(
    state: TrackPoint,
    motion_kmh: float = 0.0,
    motion_bearing_deg: float = 0.0,
) -> WindFieldDiagnostics:
    """Compute the standard diagnostics for one storm state."""
    field = HollandWindField(
        state, motion_kmh=motion_kmh, motion_bearing_deg=motion_bearing_deg
    )
    radii = np.linspace(1.0, 300.0, 600)
    surface = SURFACE_WIND_FACTOR * field.gradient_wind_ms(radii)
    peak_index = int(np.argmax(surface))
    max_wind = float(surface[peak_index])

    # Asymmetry: peak wind on the right vs. left of the motion vector.
    projection = LocalProjection(state.center)
    theta = math.radians(motion_bearing_deg)
    # Unit vectors perpendicular to motion: right = motion rotated -90.
    right = (math.cos(theta), -math.sin(theta))
    left = (-math.cos(theta), math.sin(theta))
    rmw = state.rmw_km
    right_xy = np.array([[right[0] * rmw, right[1] * rmw]])
    left_xy = np.array([[left[0] * rmw, left[1] * rmw]])
    right_wind = float(np.hypot(*field.wind_vectors(right_xy, projection)[0]))
    left_wind = float(np.hypot(*field.wind_vectors(left_xy, projection)[0]))
    if left_wind <= 0.0:
        raise HazardError("degenerate wind field: zero left-side wind")

    return WindFieldDiagnostics(
        max_surface_wind_ms=max_wind,
        category=saffir_simpson_category(max_wind),
        radius_max_wind_km=float(radii[peak_index]),
        r34_km=_radius_where_wind_drops_below(field, R34_MS),
        r50_km=_radius_where_wind_drops_below(field, R50_MS),
        r64_km=_radius_where_wind_drops_below(field, R64_MS),
        asymmetry_ratio=right_wind / left_wind,
    )


def hydrograph(
    surge_model,
    track,
    node_index: int,
    step_h: float = 0.5,
) -> list[tuple[float, float]]:
    """Water-level time series at one mesh node over a storm's passage.

    The surge solver normally records only the peak; the hydrograph is
    the full (time, WSE) series -- the standard way surge models are
    inspected against gauge data.
    """
    if not 0 <= node_index < len(surge_model.mesh):
        raise HazardError(
            f"node index {node_index} outside [0, {len(surge_model.mesh)})"
        )
    series = []
    for t in track.times(step_h):
        wse = surge_model._wse_at_time(track, t)
        series.append((t, float(wse[node_index])))
    return series
