"""Simplified storm-surge solver (wind setup + inverse barometer).

The paper drives its analysis with ADCIRC, a finite-element shallow-water
solver.  ADCIRC itself is an HPC code with proprietary meshes; what the
downstream framework consumes is only the *peak water surface elevation
(WSE) at shoreline nodes per hurricane realization*.  This module produces
that quantity with the standard first-order surge physics:

* **wind setup**: steady-state onshore wind stress balance gives a setup
  proportional to the square of the onshore wind component, scaled by the
  local shelf factor (broad shallow shelves pile up far more water), and
* **inverse barometer**: ~1 cm of sea-level rise per mb of local pressure
  deficit, following the storm's Holland pressure profile,
* **wave setup**: a fixed fraction of the wind setup, representing breaking
  wave momentum flux.

The solver sweeps the storm track in time steps and records the peak WSE
per node.  It then reproduces the coarse-mesh artifact the paper
describes ("a water surface elevation of 1.5 m, but then 0 m nearby in
several locations") by dropping a random subset of node readings to zero;
the shoreline-averaging step in :mod:`repro.hazards.hurricane.inundation`
repairs this exactly as the paper's post-processing does.

Two kernels produce the sweep.  :meth:`SurgeModel.run` evaluates the whole
(timestep x node) grid in one batched numpy computation: per-timestep track
states and wind-field scalars are precomputed once (cheap Python loop over
~30 timesteps), the setup + inverse-barometer physics is evaluated as 2-D
array ops, and the peak is an ``np.max``/``argmax`` reduction over the time
axis.  :meth:`SurgeModel.run_reference` keeps the original per-timestep
Python loop; the two are bitwise identical (asserted by tests), so the
reference path serves as both a correctness oracle and the baseline for
the ensemble-throughput benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import HazardError
from repro.geo.coords import haversine_km, initial_bearing_deg, unit_vector_deg
from repro.hazards.hurricane.mesh import CoastalMesh
from repro.hazards.hurricane.track import AMBIENT_PRESSURE_MB, StormTrack
from repro.hazards.hurricane.wind import (
    AIR_DENSITY_KG_M3,
    ASYMMETRY_FACTOR,
    INFLOW_ANGLE_DEG,
    SURFACE_WIND_FACTOR,
    HollandWindField,
    coriolis_parameter,
)


@dataclass(frozen=True)
class SurgeModelParams:
    """Tunable physics coefficients of the surge solver.

    Defaults are calibrated (see ``tests/hazards/test_calibration.py``) so
    that the Oahu case-study ensemble reproduces the paper's headline
    failure statistics: the Honolulu control center floods in roughly 9.5%
    of 1000 Category-2 realizations.
    """

    setup_coefficient: float = 0.00112  # m per (m/s)^2 of onshore wind, shelf=1
    wave_setup_fraction: float = 0.25  # extra fraction of wind setup
    inverse_barometer_m_per_mb: float = 0.010
    time_step_h: float = 1.0
    dropout_probability: float = 0.15  # coarse-mesh zero-reading artifact
    sea_level_offset_m: float = 0.0  # climate sea-level rise / tide stage

    def __post_init__(self) -> None:
        if self.setup_coefficient <= 0.0:
            raise HazardError("setup coefficient must be positive")
        if not 0.0 <= self.wave_setup_fraction <= 1.0:
            raise HazardError("wave setup fraction must be in [0, 1]")
        if self.inverse_barometer_m_per_mb < 0.0:
            raise HazardError("inverse barometer coefficient cannot be negative")
        if self.time_step_h <= 0.0:
            raise HazardError("time step must be positive")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise HazardError("dropout probability must be in [0, 1)")
        if not -1.0 <= self.sea_level_offset_m <= 3.0:
            raise HazardError("sea level offset must be in [-1, 3] m")


@dataclass(frozen=True)
class SurgeResult:
    """Peak water surface elevation per mesh node for one storm."""

    mesh: CoastalMesh
    raw_peak_wse_m: np.ndarray  # before coarse-mesh dropout
    peak_wse_m: np.ndarray  # after dropout (what the "model output" shows)
    peak_time_h: np.ndarray

    def max_wse_m(self) -> float:
        return float(np.max(self.raw_peak_wse_m))


#: Holland B exponent used by the surge sweep (the wind-field default).
_HOLLAND_B: float = HollandWindField.__dataclass_fields__["holland_b"].default


class SurgeModel:
    """Computes peak WSE along a coastal mesh for a storm track."""

    def __init__(self, mesh: CoastalMesh, params: SurgeModelParams | None = None) -> None:
        self.mesh = mesh
        self.params = params or SurgeModelParams()
        self._xy = mesh.xy_km
        self._normals = mesh.normals
        self._shelf = mesh.shelf_factors

    def _wse_at_time(self, track: StormTrack, time_h: float) -> np.ndarray:
        state = track.state_at(time_h)
        field = HollandWindField(
            state=state,
            motion_kmh=track.forward_speed_kmh_at(time_h),
            motion_bearing_deg=track.heading_deg_at(time_h),
        )
        wind = field.wind_vectors(self._xy, self.mesh.projection)
        onshore = wind[:, 0] * self._normals[:, 0] + wind[:, 1] * self._normals[:, 1]
        onshore = np.maximum(onshore, 0.0)
        setup = self.params.setup_coefficient * self._shelf * onshore * onshore
        setup *= 1.0 + self.params.wave_setup_fraction

        cx, cy = self.mesh.projection.to_xy(state.center)
        radius_km = np.hypot(self._xy[:, 0] - cx, self._xy[:, 1] - cy)
        local_pressure = field.pressure_mb(radius_km)
        deficit_mb = np.maximum(
            0.0, np.full_like(local_pressure, 1013.0) - local_pressure
        )
        barometer = self.params.inverse_barometer_m_per_mb * deficit_mb
        return setup + barometer + self.params.sea_level_offset_m

    def _track_scalars(self, track: StormTrack, times: list[float]) -> dict[str, np.ndarray]:
        """Per-timestep storm scalars, mirroring the reference arithmetic.

        Evaluates the same expressions :meth:`StormTrack.state_at`,
        :meth:`StormTrack.heading_deg_at`, :meth:`StormTrack.forward_speed_kmh_at`,
        :meth:`LocalProjection.to_xy`, and the wind field's scalar profile use
        (same operations, same order) without constructing the intermediate
        ``TrackPoint``/``HollandWindField`` objects, so the batched kernel is
        bitwise identical to the per-timestep reference sweep.
        """
        origin = self.mesh.projection.origin
        kx = math.cos(math.radians(origin.lat))
        from repro.geo.coords import EARTH_RADIUS_KM

        columns = {
            name: np.empty(len(times))
            for name in ("cx", "cy", "pc", "deficit", "rmax_m", "f", "vmax", "motion_ms", "mx", "my")
        }
        pairs = list(zip(track.points, track.points[1:]))
        for j, t in enumerate(times):
            for a, b in pairs:
                if a.time_h <= t <= b.time_h:
                    break
            else:  # pragma: no cover - track.times() stays inside the track
                raise HazardError(f"time {t} h not bracketed")
            frac = (t - a.time_h) / (b.time_h - a.time_h)
            lat = a.center.lat + frac * (b.center.lat - a.center.lat)
            lon = a.center.lon + frac * (b.center.lon - a.center.lon)
            pressure = a.central_pressure_mb + frac * (
                b.central_pressure_mb - a.central_pressure_mb
            )
            rmw_km = a.rmw_km + frac * (b.rmw_km - a.rmw_km)
            motion_kmh = haversine_km(a.center, b.center) / (b.time_h - a.time_h)
            mx, my = unit_vector_deg(initial_bearing_deg(a.center, b.center))

            deficit_mb = AMBIENT_PRESSURE_MB - pressure
            deficit_pa = deficit_mb * 100.0
            columns["cx"][j] = math.radians(lon - origin.lon) * EARTH_RADIUS_KM * kx
            columns["cy"][j] = math.radians(lat - origin.lat) * EARTH_RADIUS_KM
            columns["pc"][j] = pressure
            columns["deficit"][j] = deficit_mb
            columns["rmax_m"][j] = rmw_km * 1000.0
            columns["f"][j] = abs(coriolis_parameter(lat))
            columns["vmax"][j] = max(
                math.sqrt(_HOLLAND_B * deficit_pa / (AIR_DENSITY_KG_M3 * math.e)), 1e-9
            )
            columns["motion_ms"][j] = motion_kmh / 3.6 if motion_kmh > 0.0 else 0.0
            columns["mx"][j] = mx
            columns["my"][j] = my
        return columns

    def _wse_grid(self, track: StormTrack, times: list[float]) -> np.ndarray:
        """The full (timestep x node) WSE grid in one batched computation.

        Every elementwise expression below mirrors :meth:`_wse_at_time` /
        :meth:`HollandWindField.wind_vectors` exactly (same ufuncs, same
        operand order) with the per-timestep scalars broadcast as column
        vectors, so each grid row is bitwise equal to the reference sweep's
        per-timestep output.
        """
        s = self._track_scalars(track, times)
        col = {k: v[:, None] for k, v in s.items()}  # (T, 1) broadcast columns

        dx = self._xy[:, 0][None, :] - col["cx"]
        dy = self._xy[:, 1][None, :] - col["cy"]
        radius_km = np.hypot(dx, dy)

        # Holland gradient wind (wind.gradient_wind_ms, batched over time).
        r_m = np.maximum(radius_km * 1000.0, 1.0)
        ratio_b = (col["rmax_m"] / r_m) ** _HOLLAND_B
        rf_half = r_m * col["f"] / 2.0
        term = ratio_b * _HOLLAND_B * (col["deficit"] * 100.0) / AIR_DENSITY_KG_M3 * np.exp(-ratio_b)
        gradient = np.sqrt(term + rf_half**2) - rf_half

        # Surface wind vectors (wind.wind_vectors, batched over time).
        speed = SURFACE_WIND_FACTOR * gradient
        safe_r = np.maximum(radius_km, 1e-6)
        ux = dx / safe_r
        uy = dy / safe_r
        inflow = math.radians(INFLOW_ANGLE_DEG)
        cos_a, sin_a = math.cos(inflow), math.sin(inflow)
        wind_x = (cos_a * (-uy) + sin_a * (-ux)) * speed
        wind_y = (cos_a * ux + sin_a * (-uy)) * speed
        decay = gradient / col["vmax"]
        wind_x = wind_x + ASYMMETRY_FACTOR * col["motion_ms"] * col["mx"] * decay
        wind_y = wind_y + ASYMMETRY_FACTOR * col["motion_ms"] * col["my"] * decay

        # Wind setup against the onshore normal (surge._wse_at_time).
        onshore = wind_x * self._normals[:, 0] + wind_y * self._normals[:, 1]
        onshore = np.maximum(onshore, 0.0)
        setup = self.params.setup_coefficient * self._shelf * onshore * onshore
        setup *= 1.0 + self.params.wave_setup_fraction

        # Inverse barometer from the Holland pressure profile (wind.pressure_mb);
        # the profile's (Rmax/r)^B is the same ratio_b computed above.
        local_pressure = col["pc"] + col["deficit"] * np.exp(-ratio_b)
        deficit_mb = np.maximum(0.0, 1013.0 - local_pressure)
        barometer = self.params.inverse_barometer_m_per_mb * deficit_mb
        return setup + barometer + self.params.sea_level_offset_m

    def _apply_dropout(
        self, peak: np.ndarray, rng: np.random.Generator | None
    ) -> np.ndarray:
        observed = peak.copy()
        if rng is not None and self.params.dropout_probability > 0.0:
            dropped = rng.random(len(peak)) < self.params.dropout_probability
            observed = np.where(dropped, 0.0, observed)
        return observed

    def run(self, track: StormTrack, rng: np.random.Generator | None = None) -> SurgeResult:
        """Sweep the track and return peak WSE per node (batched kernel).

        ``rng`` drives the coarse-mesh dropout artifact; pass ``None`` to
        disable dropout (raw physics only).  Bitwise identical to
        :meth:`run_reference`.
        """
        times = track.times(self.params.time_step_h)
        grid = self._wse_grid(track, times)
        raw_max = grid.max(axis=0)
        first_idx = grid.argmax(axis=0)
        # The reference loop starts its running peak at 0, so sub-zero WSE
        # never registers and the peak time stays at the sweep start.
        positive = raw_max > 0.0
        peak = np.where(positive, raw_max, 0.0)
        peak_time = np.where(positive, np.asarray(times)[first_idx], times[0])
        return SurgeResult(
            mesh=self.mesh,
            raw_peak_wse_m=peak,
            peak_wse_m=self._apply_dropout(peak, rng),
            peak_time_h=peak_time,
        )

    def run_reference(
        self, track: StormTrack, rng: np.random.Generator | None = None
    ) -> SurgeResult:
        """The original per-timestep sweep, kept as the correctness oracle.

        Tests assert ``run`` produces bitwise-identical peaks; benchmarks
        use this path as the pre-vectorization baseline.
        """
        times = track.times(self.params.time_step_h)
        n = len(self.mesh)
        peak = np.zeros(n)
        peak_time = np.full(n, times[0])
        for t in times:
            wse = self._wse_at_time(track, t)
            improved = wse > peak
            peak = np.where(improved, wse, peak)
            peak_time = np.where(improved, t, peak_time)
        return SurgeResult(
            mesh=self.mesh,
            raw_peak_wse_m=peak,
            peak_wse_m=self._apply_dropout(peak, rng),
            peak_time_h=peak_time,
        )
