"""Simplified storm-surge solver (wind setup + inverse barometer).

The paper drives its analysis with ADCIRC, a finite-element shallow-water
solver.  ADCIRC itself is an HPC code with proprietary meshes; what the
downstream framework consumes is only the *peak water surface elevation
(WSE) at shoreline nodes per hurricane realization*.  This module produces
that quantity with the standard first-order surge physics:

* **wind setup**: steady-state onshore wind stress balance gives a setup
  proportional to the square of the onshore wind component, scaled by the
  local shelf factor (broad shallow shelves pile up far more water), and
* **inverse barometer**: ~1 cm of sea-level rise per mb of local pressure
  deficit, following the storm's Holland pressure profile,
* **wave setup**: a fixed fraction of the wind setup, representing breaking
  wave momentum flux.

The solver sweeps the storm track in time steps and records the peak WSE
per node.  It then reproduces the coarse-mesh artifact the paper
describes ("a water surface elevation of 1.5 m, but then 0 m nearby in
several locations") by dropping a random subset of node readings to zero;
the shoreline-averaging step in :mod:`repro.hazards.hurricane.inundation`
repairs this exactly as the paper's post-processing does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HazardError
from repro.hazards.hurricane.mesh import CoastalMesh
from repro.hazards.hurricane.track import StormTrack
from repro.hazards.hurricane.wind import HollandWindField


@dataclass(frozen=True)
class SurgeModelParams:
    """Tunable physics coefficients of the surge solver.

    Defaults are calibrated (see ``tests/hazards/test_calibration.py``) so
    that the Oahu case-study ensemble reproduces the paper's headline
    failure statistics: the Honolulu control center floods in roughly 9.5%
    of 1000 Category-2 realizations.
    """

    setup_coefficient: float = 0.00112  # m per (m/s)^2 of onshore wind, shelf=1
    wave_setup_fraction: float = 0.25  # extra fraction of wind setup
    inverse_barometer_m_per_mb: float = 0.010
    time_step_h: float = 1.0
    dropout_probability: float = 0.15  # coarse-mesh zero-reading artifact
    sea_level_offset_m: float = 0.0  # climate sea-level rise / tide stage

    def __post_init__(self) -> None:
        if self.setup_coefficient <= 0.0:
            raise HazardError("setup coefficient must be positive")
        if not 0.0 <= self.wave_setup_fraction <= 1.0:
            raise HazardError("wave setup fraction must be in [0, 1]")
        if self.inverse_barometer_m_per_mb < 0.0:
            raise HazardError("inverse barometer coefficient cannot be negative")
        if self.time_step_h <= 0.0:
            raise HazardError("time step must be positive")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise HazardError("dropout probability must be in [0, 1)")
        if not -1.0 <= self.sea_level_offset_m <= 3.0:
            raise HazardError("sea level offset must be in [-1, 3] m")


@dataclass(frozen=True)
class SurgeResult:
    """Peak water surface elevation per mesh node for one storm."""

    mesh: CoastalMesh
    raw_peak_wse_m: np.ndarray  # before coarse-mesh dropout
    peak_wse_m: np.ndarray  # after dropout (what the "model output" shows)
    peak_time_h: np.ndarray

    def max_wse_m(self) -> float:
        return float(np.max(self.raw_peak_wse_m))


class SurgeModel:
    """Computes peak WSE along a coastal mesh for a storm track."""

    def __init__(self, mesh: CoastalMesh, params: SurgeModelParams | None = None) -> None:
        self.mesh = mesh
        self.params = params or SurgeModelParams()
        self._xy = mesh.xy_km
        self._normals = mesh.normals
        self._shelf = mesh.shelf_factors

    def _wse_at_time(self, track: StormTrack, time_h: float) -> np.ndarray:
        state = track.state_at(time_h)
        field = HollandWindField(
            state=state,
            motion_kmh=track.forward_speed_kmh_at(time_h),
            motion_bearing_deg=track.heading_deg_at(time_h),
        )
        wind = field.wind_vectors(self._xy, self.mesh.projection)
        onshore = wind[:, 0] * self._normals[:, 0] + wind[:, 1] * self._normals[:, 1]
        onshore = np.maximum(onshore, 0.0)
        setup = self.params.setup_coefficient * self._shelf * onshore * onshore
        setup *= 1.0 + self.params.wave_setup_fraction

        cx, cy = self.mesh.projection.to_xy(state.center)
        radius_km = np.hypot(self._xy[:, 0] - cx, self._xy[:, 1] - cy)
        local_pressure = field.pressure_mb(radius_km)
        deficit_mb = np.maximum(
            0.0, np.full_like(local_pressure, 1013.0) - local_pressure
        )
        barometer = self.params.inverse_barometer_m_per_mb * deficit_mb
        return setup + barometer + self.params.sea_level_offset_m

    def run(self, track: StormTrack, rng: np.random.Generator | None = None) -> SurgeResult:
        """Sweep the track and return peak WSE per node.

        ``rng`` drives the coarse-mesh dropout artifact; pass ``None`` to
        disable dropout (raw physics only).
        """
        times = track.times(self.params.time_step_h)
        n = len(self.mesh)
        peak = np.zeros(n)
        peak_time = np.full(n, times[0])
        for t in times:
            wse = self._wse_at_time(track, t)
            improved = wse > peak
            peak = np.where(improved, wse, peak)
            peak_time = np.where(improved, t, peak_time)

        observed = peak.copy()
        if rng is not None and self.params.dropout_probability > 0.0:
            dropped = rng.random(n) < self.params.dropout_probability
            observed = np.where(dropped, 0.0, observed)
        return SurgeResult(
            mesh=self.mesh,
            raw_peak_wse_m=peak,
            peak_wse_m=observed,
            peak_time_h=peak_time,
        )
