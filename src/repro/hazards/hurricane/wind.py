"""Parametric hurricane wind and pressure fields (Holland 1980).

Given a storm state (center, central pressure, radius of maximum winds),
this module evaluates the surface wind vector and sea-level pressure at
arbitrary points.  The model is the standard axisymmetric Holland gradient
wind with:

* a surface-reduction factor applied to the gradient wind,
* an inward-rotated inflow angle,
* a forward-motion asymmetry (half the translation velocity added on the
  storm's right side, the classic first-order correction), and
* cyclonic (counter-clockwise) rotation for the northern hemisphere.

All wind evaluation is vectorized over numpy arrays of target points so the
surge solver can sweep a full coastal mesh per time step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import HazardError
from repro.geo.coords import GeoPoint, LocalProjection, unit_vector_deg
from repro.hazards.hurricane.track import AMBIENT_PRESSURE_MB, TrackPoint

AIR_DENSITY_KG_M3 = 1.15
EARTH_ROTATION_RAD_S = 7.2921e-5
SURFACE_WIND_FACTOR = 0.9
INFLOW_ANGLE_DEG = 20.0
ASYMMETRY_FACTOR = 0.5


def coriolis_parameter(lat_deg: float) -> float:
    """Coriolis parameter f = 2 * Omega * sin(latitude)."""
    return 2.0 * EARTH_ROTATION_RAD_S * math.sin(math.radians(lat_deg))


@dataclass(frozen=True)
class HollandWindField:
    """Holland (1980) wind/pressure field for one storm instant.

    ``motion_kmh`` and ``motion_bearing_deg`` describe storm translation and
    feed the asymmetry correction.
    """

    state: TrackPoint
    motion_kmh: float = 0.0
    motion_bearing_deg: float = 0.0
    holland_b: float = 1.4

    def __post_init__(self) -> None:
        if not 0.8 <= self.holland_b <= 2.5:
            raise HazardError(f"Holland B {self.holland_b} outside plausible [0.8, 2.5]")
        if self.motion_kmh < 0.0:
            raise HazardError("storm motion speed cannot be negative")

    # ------------------------------------------------------------------
    # Scalar profile
    # ------------------------------------------------------------------
    @property
    def max_gradient_wind_ms(self) -> float:
        deficit_pa = self.state.pressure_deficit_mb * 100.0
        return math.sqrt(self.holland_b * deficit_pa / (AIR_DENSITY_KG_M3 * math.e))

    def gradient_wind_ms(self, radius_km: np.ndarray) -> np.ndarray:
        """Axisymmetric gradient wind speed at the given radii (km)."""
        r_m = np.asarray(radius_km, dtype=float) * 1000.0
        r_m = np.maximum(r_m, 1.0)  # avoid the singular storm center
        rmax_m = self.state.rmw_km * 1000.0
        deficit_pa = self.state.pressure_deficit_mb * 100.0
        b = self.holland_b
        ratio_b = (rmax_m / r_m) ** b
        f = abs(coriolis_parameter(self.state.center.lat))
        rf_half = r_m * f / 2.0
        term = ratio_b * b * deficit_pa / AIR_DENSITY_KG_M3 * np.exp(-ratio_b)
        return np.sqrt(term + rf_half**2) - rf_half

    def pressure_mb(self, radius_km: np.ndarray) -> np.ndarray:
        """Sea-level pressure profile p(r) = pc + dP * exp(-(Rmax/r)^B)."""
        r_m = np.maximum(np.asarray(radius_km, dtype=float) * 1000.0, 1.0)
        rmax_m = self.state.rmw_km * 1000.0
        ratio_b = (rmax_m / r_m) ** self.holland_b
        return self.state.central_pressure_mb + self.state.pressure_deficit_mb * np.exp(-ratio_b)

    # ------------------------------------------------------------------
    # Vector field
    # ------------------------------------------------------------------
    def wind_vectors(self, xy_km: np.ndarray, projection: LocalProjection) -> np.ndarray:
        """Surface wind (east, north) m/s at planar points ``xy_km``.

        ``xy_km`` has shape (n, 2) in the supplied local projection; the
        storm center is projected into the same plane.
        """
        pts = np.asarray(xy_km, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise HazardError("xy_km must have shape (n, 2)")
        cx, cy = projection.to_xy(self.state.center)
        dx = pts[:, 0] - cx
        dy = pts[:, 1] - cy
        radius_km = np.hypot(dx, dy)
        speed = SURFACE_WIND_FACTOR * self.gradient_wind_ms(radius_km)

        # Unit vector from center to point; rotate +90 deg for cyclonic
        # (counter-clockwise) flow in the northern hemisphere, then rotate
        # a further INFLOW_ANGLE_DEG toward the center.
        safe_r = np.maximum(radius_km, 1e-6)
        ux = dx / safe_r
        uy = dy / safe_r
        tangential = np.stack([-uy, ux], axis=1)
        inflow = math.radians(INFLOW_ANGLE_DEG)
        cos_a, sin_a = math.cos(inflow), math.sin(inflow)
        # Rotate the tangential vector by -inflow (toward the center).
        rot_x = cos_a * tangential[:, 0] + sin_a * (-ux)
        rot_y = cos_a * tangential[:, 1] + sin_a * (-uy)
        wind = np.stack([rot_x, rot_y], axis=1) * speed[:, None]

        if self.motion_kmh > 0.0:
            mx, my = unit_vector_deg(self.motion_bearing_deg)
            motion_ms = self.motion_kmh / 3.6
            # The correction decays with distance like the wind profile so
            # far-field points are not dragged along with the storm.
            decay = self.gradient_wind_ms(radius_km) / max(self.max_gradient_wind_ms, 1e-9)
            wind[:, 0] += ASYMMETRY_FACTOR * motion_ms * mx * decay
            wind[:, 1] += ASYMMETRY_FACTOR * motion_ms * my * decay
        return wind

    def wind_at(self, point: GeoPoint, projection: LocalProjection | None = None) -> tuple[float, float]:
        """Convenience scalar wrapper around :meth:`wind_vectors`."""
        proj = projection or LocalProjection(self.state.center)
        xy = np.array([proj.to_xy(point)])
        vec = self.wind_vectors(xy, proj)
        return float(vec[0, 0]), float(vec[0, 1])

    def pressure_at(self, point: GeoPoint) -> float:
        """Sea-level pressure (mb) at a point."""
        proj = LocalProjection(self.state.center)
        x, y = proj.to_xy(point)
        return float(self.pressure_mb(np.array([math.hypot(x, y)]))[0])


def ambient_pressure_mb() -> float:
    """The far-field sea-level pressure assumed by the model."""
    return AMBIENT_PRESSURE_MB
