"""Inundation post-processing: shoreline averaging and inland extension.

Mirrors the paper's treatment of the raw surge output (Section V-A):

1. **Shoreline averaging** -- the coarse mesh produces anomalous readings
   (e.g. 1.5 m at one node, 0 m nearby), so water surface elevations are
   averaged along the shoreline within each segment.
2. **Extension onto the shoreline** -- the smoothed water surface elevation
   is extended inland to asset locations, attenuating with inland distance,
   to produce the inundation estimate at each power asset.
3. **Depth at asset** -- inundation depth is the extended WSE minus the
   asset's ground elevation, floored at zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HazardError
from repro.geo.catalog import AssetCatalog, AssetRecord
from repro.geo.region import CoastalRegion
from repro.hazards.hurricane.mesh import CoastalMesh


def smooth_shoreline(mesh: CoastalMesh, wse_m: np.ndarray, window: int = 2) -> np.ndarray:
    """Moving-average WSE along the shoreline, within each segment.

    The coarse mesh yields anomalous zero readings next to metre-scale ones
    (paper Section V-A); zeros are therefore treated as *missing* readings
    and each node is replaced by the mean of the non-zero readings in the
    ``2*window + 1`` node window centred on it (clipped to the segment).
    A window with no valid readings stays at zero.
    """
    if window < 0:
        raise HazardError("smoothing window must be non-negative")
    values = np.asarray(wse_m, dtype=float)
    if values.shape != (len(mesh),):
        raise HazardError(
            f"wse array has shape {values.shape}, expected ({len(mesh)},)"
        )
    smoothed = np.empty_like(values)
    width = 2 * window + 1
    for seg_slice in mesh.segment_slices().values():
        seg = values[seg_slice]
        # Zero-pad the segment so every node sees a full-width window; the
        # pad entries are invalid (<= 0) so they drop out of both the sum
        # and the count, reproducing the clipped-window mean exactly.
        padded = np.zeros(len(seg) + 2 * window)
        if window:
            padded[window:-window] = seg
        else:
            padded[:] = seg
        windows = np.lib.stride_tricks.sliding_window_view(padded, width)
        valid = windows > 0.0
        sums = np.where(valid, windows, 0.0).sum(axis=1)
        counts = valid.sum(axis=1)
        smoothed[seg_slice] = np.divide(
            sums, counts, out=np.zeros(len(seg)), where=counts > 0
        )
    return smoothed


@dataclass(frozen=True)
class Basin:
    """A hydraulically connected littoral strip.

    With a coarse mesh, nearby shoreline assets on the same low-lying
    coastal plain see the *same* extended water surface elevation -- the
    paper's averaging + "extend onto the shoreline" post-processing
    homogenizes WSE along the shore.  A basin names the shoreline segments
    forming one such strip; every asset within ``membership_distance_km``
    of the strip receives the basin-average smoothed WSE (no per-asset
    attenuation), so co-located assets flood together exactly as the
    paper's Honolulu and Waiau control centers do.
    """

    name: str
    segment_names: tuple[str, ...]
    membership_distance_km: float = 3.0

    def __post_init__(self) -> None:
        if not self.segment_names:
            raise HazardError(f"basin {self.name!r} needs at least one segment")
        if self.membership_distance_km <= 0.0:
            raise HazardError("basin membership distance must be positive")


@dataclass(frozen=True)
class ExtensionParams:
    """How smoothed shoreline WSE is extended inland to assets."""

    influence_radius_km: float = 6.0  # shoreline nodes considered per asset
    idw_power: float = 2.0  # inverse-distance weighting exponent
    inland_decay_km: float = 3.0  # e-folding of WSE with inland distance
    smoothing_window: int = 2
    basins: tuple[Basin, ...] = ()

    def __post_init__(self) -> None:
        if self.influence_radius_km <= 0.0:
            raise HazardError("influence radius must be positive")
        if self.idw_power <= 0.0:
            raise HazardError("IDW power must be positive")
        if self.inland_decay_km <= 0.0:
            raise HazardError("inland decay length must be positive")


class InundationMapper:
    """Precomputed map from shoreline WSE to per-asset inundation depth.

    The node weights, inland attenuation, and elevations for a fixed
    (mesh, catalog) pair do not change between hurricane realizations, so
    they are assembled once into matrices; mapping a realization is then a
    single matrix-vector product.  This is what lets the ensemble generator
    process 1000 realizations in seconds.
    """

    def __init__(
        self,
        region: CoastalRegion,
        mesh: CoastalMesh,
        catalog: AssetCatalog,
        params: ExtensionParams | None = None,
    ) -> None:
        self.region = region
        self.mesh = mesh
        self.catalog = catalog
        self.params = params or ExtensionParams()
        self.asset_names = catalog.names
        self._elevations = np.array([catalog.get(n).elevation_m for n in self.asset_names])
        self._weights = self._build_weights()

    def _basin_for(self, asset_name: str) -> Basin | None:
        """The basin an asset belongs to, if any."""
        asset = self.catalog.get(asset_name)
        node_xy = self.mesh.xy_km
        ax, ay = self.mesh.projection.to_xy(asset.location)
        dist = np.hypot(node_xy[:, 0] - ax, node_xy[:, 1] - ay)
        for basin in self.params.basins:
            member_nodes = [
                i
                for i, node in enumerate(self.mesh.nodes)
                if node.segment_name in basin.segment_names
            ]
            if not member_nodes:
                raise HazardError(
                    f"basin {basin.name!r} matches no mesh nodes; check its "
                    "segment names"
                )
            if dist[member_nodes].min() <= basin.membership_distance_km:
                return basin
        return None

    def _build_weights(self) -> np.ndarray:
        """(n_assets, n_nodes) matrix mapping smoothed WSE to asset WSE.

        Basin members get a uniform average over the basin's nodes (the
        shared littoral water level); other assets get inverse-distance
        weights over nearby nodes times an inland attenuation.
        """
        p = self.params
        node_xy = self.mesh.xy_km
        weights = np.zeros((len(self.asset_names), len(self.mesh)))
        for i, name in enumerate(self.asset_names):
            asset = self.catalog.get(name)
            basin = self._basin_for(name)
            if basin is not None:
                member = np.array(
                    [
                        node.segment_name in basin.segment_names
                        for node in self.mesh.nodes
                    ]
                )
                weights[i] = member / member.sum()
                continue
            ax, ay = self.mesh.projection.to_xy(asset.location)
            dist = np.hypot(node_xy[:, 0] - ax, node_xy[:, 1] - ay)
            in_range = dist <= p.influence_radius_km
            if not np.any(in_range):
                # Asset far inland: nearest node only, heavy attenuation.
                in_range = dist <= dist.min() + 1e-9
            d = np.maximum(dist, 0.1)
            w = np.where(in_range, 1.0 / d**p.idw_power, 0.0)
            w /= w.sum()
            inland_km = self.region.distance_to_shore_km(asset.location)
            if not self.region.contains(asset.location):
                inland_km = 0.0
            attenuation = float(np.exp(-inland_km / p.inland_decay_km))
            weights[i] = w * attenuation
        return weights

    def depths_from_wse(self, wse_m: np.ndarray) -> dict[str, float]:
        """Per-asset inundation depth (m) from raw shoreline WSE readings."""
        smoothed = smooth_shoreline(self.mesh, wse_m, self.params.smoothing_window)
        extended = self._weights @ smoothed
        depths = np.maximum(0.0, extended - self._elevations)
        return dict(zip(self.asset_names, depths.tolist()))

    def wse_at_asset(self, wse_m: np.ndarray, asset: AssetRecord) -> float:
        """Extended (pre-elevation-subtraction) WSE at one asset."""
        smoothed = smooth_shoreline(self.mesh, wse_m, self.params.smoothing_window)
        idx = self.asset_names.index(asset.name)
        return float(self._weights[idx] @ smoothed)


@dataclass(frozen=True)
class InundationField:
    """The inundation outcome of one hurricane realization."""

    depths_m: dict[str, float]

    def depth_at(self, asset_name: str) -> float:
        try:
            return self.depths_m[asset_name]
        except KeyError:
            raise HazardError(f"no inundation data for asset {asset_name!r}") from None

    def flooded_assets(self, threshold_m: float) -> frozenset[str]:
        return frozenset(
            name for name, depth in self.depths_m.items() if depth > threshold_m
        )
