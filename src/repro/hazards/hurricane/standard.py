"""The standard case-study hurricane scenario (Category 2 on Oahu).

The paper simulates a Category-2 hurricane on a realistic planner track and
generates 1000 realizations.  This module pins the reproduction's standard
scenario, seed, and ensemble size so every test, example, and benchmark
analyses the *same* natural-disaster input data, and caches the generated
ensemble in-process (generation takes a few seconds).
"""

from __future__ import annotations

from functools import lru_cache

from repro.geo.coords import GeoPoint
from repro.geo import build_oahu_catalog, build_oahu_region
from repro.hazards.hurricane.ensemble import (
    EnsembleGenerator,
    HurricaneEnsemble,
    HurricaneScenarioSpec,
)
from repro.hazards.hurricane.inundation import Basin, ExtensionParams

DEFAULT_SEED = 20220522
DEFAULT_REALIZATIONS = 1000

#: Oahu's southern shore -- the Ewa plain, Pearl Harbor, and the Honolulu
#: waterfront -- forms one low-lying littoral strip: the coarse-mesh
#: averaging + shoreline extension gives its assets a shared water level,
#: which is why the Honolulu and Waiau control centers flood in exactly
#: the same realizations (paper Section VI-A).
OAHU_SOUTH_SHORE_BASIN = Basin(
    name="south-shore",
    segment_names=("ewa-south-shore", "pearl-harbor", "honolulu-waterfront"),
    membership_distance_km=3.0,
)


def standard_oahu_scenario() -> HurricaneScenarioSpec:
    """Category-2 storm approaching Oahu from the SSE, heading NNW.

    The base track makes landfall just west of Pearl Harbor -- the
    alignment, like historical planning scenarios (e.g. the Makani Pahili
    exercise track), that exposes the populated southern shore.  The track
    offset spread sweeps the ensemble across and past the island, so most
    realizations spare Honolulu and a strong-hit minority floods it.
    """
    return HurricaneScenarioSpec(
        name="oahu-cat2",
        base_landfall=GeoPoint(21.33, -158.06),
        base_heading_deg=335.0,
        track_offset_sd_km=45.0,
        heading_sd_deg=12.0,
        pressure_mean_mb=972.0,
        pressure_sd_mb=7.0,
        pressure_bounds_mb=(956.0, 990.0),
        rmw_median_km=35.0,
        rmw_log_sd=0.22,
        forward_speed_mean_kmh=18.0,
        forward_speed_sd_kmh=5.0,
    )


#: Representative central pressures by Saffir-Simpson category, used by
#: the intensity-sweep ablation.  The case study's Category 2 matches the
#: standard scenario's 972 mb.
CATEGORY_PRESSURE_MB = {1: 985.0, 2: 972.0, 3: 958.0, 4: 945.0}


def oahu_scenario_for_category(category: int) -> HurricaneScenarioSpec:
    """The standard Oahu scenario rescaled to another storm category."""
    if category not in CATEGORY_PRESSURE_MB:
        raise ValueError(
            f"category must be one of {sorted(CATEGORY_PRESSURE_MB)}, "
            f"not {category}"
        )
    base = standard_oahu_scenario()
    pressure = CATEGORY_PRESSURE_MB[category]
    return HurricaneScenarioSpec(
        name=f"oahu-cat{category}",
        base_landfall=base.base_landfall,
        base_heading_deg=base.base_heading_deg,
        track_offset_sd_km=base.track_offset_sd_km,
        heading_sd_deg=base.heading_sd_deg,
        pressure_mean_mb=pressure,
        pressure_sd_mb=base.pressure_sd_mb,
        pressure_bounds_mb=(pressure - 16.0, pressure + 18.0),
        rmw_median_km=base.rmw_median_km,
        rmw_log_sd=base.rmw_log_sd,
        forward_speed_mean_kmh=base.forward_speed_mean_kmh,
        forward_speed_sd_kmh=base.forward_speed_sd_kmh,
    )


def standard_oahu_generator() -> EnsembleGenerator:
    """An ensemble generator wired to the synthetic Oahu geography."""
    return EnsembleGenerator(
        region=build_oahu_region(),
        catalog=build_oahu_catalog(),
        scenario=standard_oahu_scenario(),
        extension_params=ExtensionParams(basins=(OAHU_SOUTH_SHORE_BASIN,)),
    )


@lru_cache(maxsize=1)
def shared_standard_generator() -> EnsembleGenerator:
    """The standard generator, built once per process and shared.

    Construction builds the coastal mesh and inundation mapping, which
    dominates the cost of cheap derived operations like
    ``StudyConfig.cache_key()``.  Generation methods are pure functions
    of their arguments, so sharing one instance is always sound; callers
    must not mutate it.
    """
    return standard_oahu_generator()


@lru_cache(maxsize=4)
def standard_oahu_ensemble(
    count: int = DEFAULT_REALIZATIONS,
    seed: int = DEFAULT_SEED,
    n_jobs: int = 1,
    cache_dir: str | None = None,
    resume: bool = False,
    max_retries: int | None = None,
    task_timeout: float | None = None,
) -> HurricaneEnsemble:
    """The standard 1000-realization ensemble used across the repo.

    Deterministic in (count, seed) and cached in-process; all paper-figure
    benchmarks consume ``standard_oahu_ensemble()`` with the defaults.
    The remaining arguments only change how (and how robustly) the
    ensemble arrives -- worker processes, on-disk reuse, checkpointed
    resume, retry budget, per-task timeout -- never its contents.
    """
    from repro.runtime.controller import RetryPolicy

    retry = RetryPolicy.from_options(max_retries, task_timeout)
    return standard_oahu_generator().generate(
        count=count,
        seed=seed,
        n_jobs=n_jobs,
        cache_dir=cache_dir,
        resume=resume,
        retry=retry,
    )
