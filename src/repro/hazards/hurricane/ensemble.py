"""Monte Carlo hurricane ensembles (the paper's 1000 realizations).

The paper generates 1000 ADCIRC realizations of a Category-2 hurricane on a
planner-supplied track and records the peak inundation at each power asset.
This module reproduces that pipeline: a base scenario (landfall, heading,
intensity) is perturbed per realization -- track offset, heading, central
pressure, storm size, forward speed -- the surge solver produces shoreline
WSE, and the inundation mapper turns it into per-asset depths.

Generation is split into two deterministic passes: a serial parameter pass
drawing every realization's storm parameters from the single main rng, and
a realization pass in which realization ``i``'s coarse-mesh dropout rng is
seeded from ``np.random.SeedSequence(seed).spawn(count)[i]``.  Because no
rng is shared across realizations in the second pass, the fault-tolerant
run controller (:mod:`repro.runtime.controller`) parallelizes it over
worker processes (``n_jobs``) with bit-identical output for any worker
count -- including across worker retries, pool rebuilds, and checkpointed
resumes -- and ensembles can round-trip through the on-disk cache
(``cache_dir``, see :mod:`repro.io.ensemble_cache`) without drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.errors import HazardError
from repro.geo.catalog import AssetCatalog
from repro.geo.coords import GeoPoint, destination_point
from repro.geo.region import CoastalRegion
from repro.hazards.fragility import FragilityModel, ThresholdFragility
from repro.hazards.hurricane.inundation import ExtensionParams, InundationField, InundationMapper
from repro.hazards.hurricane.mesh import build_coastal_mesh
from repro.hazards.hurricane.surge import SurgeModel, SurgeModelParams
from repro.hazards.hurricane.track import StormTrack, synthesize_linear_track

if TYPE_CHECKING:  # runtime imports lazily inside generate() (no cycle)
    from repro.runtime.controller import RetryPolicy
    from repro.runtime.faults import FaultPlan


@dataclass(frozen=True)
class HurricaneScenarioSpec:
    """The base storm and its per-realization perturbation magnitudes."""

    name: str
    base_landfall: GeoPoint
    base_heading_deg: float
    track_offset_sd_km: float = 45.0
    heading_sd_deg: float = 12.0
    pressure_mean_mb: float = 972.0
    pressure_sd_mb: float = 7.0
    pressure_bounds_mb: tuple[float, float] = (956.0, 990.0)
    rmw_median_km: float = 30.0
    rmw_log_sd: float = 0.30
    forward_speed_mean_kmh: float = 18.0
    forward_speed_sd_kmh: float = 5.0
    forward_speed_bounds_kmh: tuple[float, float] = (8.0, 35.0)

    def __post_init__(self) -> None:
        if self.track_offset_sd_km < 0 or self.heading_sd_deg < 0:
            raise HazardError("perturbation magnitudes cannot be negative")
        lo, hi = self.pressure_bounds_mb
        if not lo < hi:
            raise HazardError("pressure bounds must be an increasing pair")


@dataclass(frozen=True)
class StormParameters:
    """One realization's sampled storm parameters."""

    landfall: GeoPoint
    heading_deg: float
    central_pressure_mb: float
    rmw_km: float
    forward_speed_kmh: float
    track_offset_km: float

    def to_track(self, name: str) -> StormTrack:
        return synthesize_linear_track(
            name=name,
            landfall=self.landfall,
            heading_deg=self.heading_deg,
            forward_speed_kmh=self.forward_speed_kmh,
            central_pressure_mb=self.central_pressure_mb,
            rmw_km=self.rmw_km,
        )


@dataclass(frozen=True)
class HurricaneRealization:
    """One hurricane outcome: storm parameters plus asset inundation."""

    index: int
    params: StormParameters
    inundation: InundationField

    def depth_at(self, asset_name: str) -> float:
        return self.inundation.depth_at(asset_name)

    def failed_assets(
        self,
        fragility: FragilityModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> frozenset[str]:
        model = fragility or ThresholdFragility()
        return model.failed_assets(self.inundation.depths_m, rng)


@dataclass(frozen=True)
class HurricaneEnsemble:
    """An ordered collection of hurricane realizations."""

    scenario_name: str
    realizations: tuple[HurricaneRealization, ...]
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.realizations:
            raise HazardError("ensemble must contain at least one realization")

    def __len__(self) -> int:
        return len(self.realizations)

    def __iter__(self) -> Iterator[HurricaneRealization]:
        return iter(self.realizations)

    def __getitem__(self, index: int) -> HurricaneRealization:
        return self.realizations[index]

    @property
    def asset_names(self) -> list[str]:
        return list(self.realizations[0].inundation.depths_m)

    def _depth_data(self) -> tuple[np.ndarray, dict[str, int]]:
        """The cached (R x A) depth matrix and its name -> column index."""
        try:
            return self._depth_cache  # type: ignore[attr-defined]
        except AttributeError:
            pass
        names = self.asset_names
        matrix = np.array(
            [[r.inundation.depths_m[n] for n in names] for r in self.realizations]
        )
        columns = {name: i for i, name in enumerate(names)}
        # Frozen dataclass: stash the lazily built cache via object.__setattr__.
        object.__setattr__(self, "_depth_cache", (matrix, columns))
        return matrix, columns

    def _column(self, asset_name: str) -> np.ndarray:
        matrix, columns = self._depth_data()
        try:
            return matrix[:, columns[asset_name]]
        except KeyError:
            raise HazardError(f"no inundation data for asset {asset_name!r}") from None

    @staticmethod
    def _failure_mask(model: FragilityModel, depths: np.ndarray) -> np.ndarray:
        """Boolean mask of certain failures (failure probability >= 1)."""
        if isinstance(model, ThresholdFragility):
            return depths > model.threshold_m
        flat = depths.reshape(-1)
        probs = np.fromiter(
            (model.failure_probability(float(d)) for d in flat), float, len(flat)
        )
        return (probs >= 1.0).reshape(depths.shape)

    def depth_matrix(self) -> np.ndarray:
        """(n_realizations, n_assets) inundation depths."""
        matrix, _ = self._depth_data()
        return matrix.copy()

    def depth_view(self) -> np.ndarray:
        """The cached depth matrix without the defensive copy.

        The batched executor reads this once per analysis; callers must
        treat it as read-only (it backs every other depth query).
        """
        matrix, _ = self._depth_data()
        return matrix

    def flood_probability(
        self, asset_name: str, fragility: FragilityModel | None = None
    ) -> float:
        """Fraction of realizations in which the asset fails."""
        model = fragility or ThresholdFragility()
        hits = int(np.count_nonzero(self._failure_mask(model, self._column(asset_name))))
        return hits / len(self.realizations)

    def joint_flood_probability(
        self, names: Sequence[str], fragility: FragilityModel | None = None
    ) -> float:
        """Fraction of realizations flooding *all* the named assets."""
        model = fragility or ThresholdFragility()
        matrix, columns = self._depth_data()
        try:
            cols = [columns[n] for n in names]
        except KeyError as exc:
            raise HazardError(f"no inundation data for asset {exc.args[0]!r}") from None
        mask = self._failure_mask(model, matrix[:, cols]).all(axis=1)
        return int(np.count_nonzero(mask)) / len(self.realizations)

    def conditional_flood_probability(
        self,
        target: str,
        given: str,
        fragility: FragilityModel | None = None,
    ) -> float:
        """P(target floods | given floods); NaN if the condition never occurs."""
        model = fragility or ThresholdFragility()
        given_mask = self._failure_mask(model, self._column(given))
        given_hits = int(np.count_nonzero(given_mask))
        if given_hits == 0:
            return math.nan
        target_mask = self._failure_mask(model, self._column(target))
        both = int(np.count_nonzero(given_mask & target_mask))
        return both / given_hits

    def subset(self, count: int) -> "HurricaneEnsemble":
        """The first ``count`` realizations (for convergence studies)."""
        if not 1 <= count <= len(self):
            raise HazardError(f"subset size {count} outside [1, {len(self)}]")
        return HurricaneEnsemble(
            scenario_name=self.scenario_name,
            realizations=self.realizations[:count],
            seed=self.seed,
        )


@dataclass
class EnsembleGenerator:
    """Generates hurricane ensembles for a region + asset catalog.

    Construction builds the coastal mesh and the (mesh x asset) inundation
    mapping once; each realization then costs one track sweep of the surge
    solver plus a matrix-vector product.
    """

    region: CoastalRegion
    catalog: AssetCatalog
    scenario: HurricaneScenarioSpec
    surge_params: SurgeModelParams = field(default_factory=SurgeModelParams)
    extension_params: ExtensionParams = field(default_factory=ExtensionParams)
    mesh_spacing_km: float = 2.0

    deterministic = True

    def __post_init__(self) -> None:
        self._mesh = build_coastal_mesh(self.region, self.mesh_spacing_km)
        self._surge = SurgeModel(self._mesh, self.surge_params)
        self._mapper = InundationMapper(
            self.region, self._mesh, self.catalog, self.extension_params
        )
        from repro.geo.digest import geo_content_key

        self._geo_key = geo_content_key(self.catalog, self.region)

    @property
    def mesh_size(self) -> int:
        return len(self._mesh)

    @property
    def asset_order(self) -> tuple[str, ...]:
        """Asset names in depth-mapping order (the catalog's order).

        Every realization's ``depths_m`` mapping iterates in exactly this
        order; the run controller's in-place shared-memory transport
        relies on it to lay depth rows out column-for-column.
        """
        return tuple(self._mapper.asset_names)

    def sample_parameters(
        self,
        rng: np.random.Generator,
        *,
        offset_km: float | None = None,
    ) -> StormParameters:
        """Draw one realization's storm parameters from the scenario spec.

        ``offset_km`` overrides the track-offset draw (no rng consumed
        for it): the hook :mod:`repro.sampling` uses to substitute a
        variance-reduced offset stream.  The default ``None`` keeps the
        historical draw order bit-identical.
        """
        s = self.scenario
        if offset_km is None:
            offset = float(rng.normal(0.0, s.track_offset_sd_km))
        else:
            offset = float(offset_km)
        heading = float(rng.normal(s.base_heading_deg, s.heading_sd_deg))
        # Offset the landfall perpendicular to the storm heading, so the
        # ensemble sweeps the track sideways across the island.
        landfall = destination_point(s.base_landfall, (heading + 90.0) % 360.0, offset)
        pressure = float(
            np.clip(
                rng.normal(s.pressure_mean_mb, s.pressure_sd_mb),
                *s.pressure_bounds_mb,
            )
        )
        rmw = float(s.rmw_median_km * math.exp(rng.normal(0.0, s.rmw_log_sd)))
        speed = float(
            np.clip(
                rng.normal(s.forward_speed_mean_kmh, s.forward_speed_sd_kmh),
                *s.forward_speed_bounds_kmh,
            )
        )
        return StormParameters(
            landfall=landfall,
            heading_deg=heading % 360.0,
            central_pressure_mb=pressure,
            rmw_km=rmw,
            forward_speed_kmh=speed,
            track_offset_km=offset,
        )

    def realize(self, index: int, params: StormParameters, rng: np.random.Generator) -> HurricaneRealization:
        """Run the surge + inundation pipeline for one parameter draw."""
        track = params.to_track(f"{self.scenario.name}-r{index}")
        surge = self._surge.run(track, rng)
        depths = self._mapper.depths_from_wse(surge.peak_wse_m)
        return HurricaneRealization(
            index=index,
            params=params,
            inundation=InundationField(depths_m=depths),
        )

    def sample_all_parameters(self, count: int, seed: int) -> list[StormParameters]:
        """The serial parameter pass: every realization's storm parameters.

        All draws come from the single main rng in realization order, so the
        parameter stream is independent of how the realization pass is
        later scheduled (worker count, caching).
        """
        rng = np.random.default_rng(seed)
        return [self.sample_parameters(rng) for _ in range(count)]

    def _realization_rngs(self, count: int, seed: int) -> list[np.random.Generator]:
        """One independent dropout rng per realization, spawned from ``seed``."""
        return [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(seed).spawn(count)
        ]

    def generate(
        self,
        count: int = 1000,
        seed: int = 0,
        n_jobs: int = 1,
        cache_dir: str | None = None,
        resume: bool = False,
        retry: "RetryPolicy | None" = None,
        faults: "FaultPlan | None" = None,
        transport: str = "auto",
    ) -> HurricaneEnsemble:
        """Generate a full ensemble deterministically from ``seed``.

        The realization pass is delegated to the fault-tolerant
        :class:`~repro.runtime.controller.RunController`: ``n_jobs``
        parallelizes it over worker processes (bit-identical output for
        every worker count, because each realization owns a spawned rng),
        failed or hung workers are retried under ``retry`` (a
        :class:`~repro.runtime.controller.RetryPolicy`), and ``faults``
        injects a deterministic
        :class:`~repro.runtime.faults.FaultPlan` for chaos testing.
        ``transport`` picks how pooled workers return depths: ``"auto"``
        (in-place shared-memory rows when pooled), ``"inplace"``, or
        ``"pickle"`` (the historical per-result pickling baseline).

        ``cache_dir`` names an on-disk cache directory: a hit (same
        scenario, surge/extension physics, mesh spacing, seed, and count)
        loads the stored ensemble instead of regenerating, and corrupt or
        stale entries are quarantined and regenerated.  With a cache
        directory, per-realization progress is also checkpointed to
        sharded files under ``run-<key>/``; ``resume=True`` restarts an
        interrupted run from those shards instead of from scratch.
        """
        if count < 1:
            raise HazardError("ensemble size must be at least 1")
        if n_jobs < 1:
            raise HazardError("n_jobs must be at least 1")
        if resume and cache_dir is None:
            raise HazardError("resume requires a cache_dir to hold checkpoints")
        from repro.obs.observer import current as current_observer

        obs = current_observer()
        with obs.span(
            "ensemble.generate",
            scenario=self.scenario.name,
            count=count,
            seed=seed,
            n_jobs=n_jobs,
        ):
            key = self.cache_key(count, seed)
            if cache_dir is not None:
                from repro.io.ensemble_cache import load_ensemble_cache

                with obs.span("ensemble.cache_lookup"):
                    cached = load_ensemble_cache(cache_dir, key)
                if cached is not None:
                    return cached

            from repro.runtime.checkpoint import CheckpointStore
            from repro.runtime.controller import RunController

            checkpoint = None
            if cache_dir is not None:
                checkpoint = CheckpointStore(
                    run_dir=Path(cache_dir) / f"run-{key}",
                    key=key,
                    count=count,
                    seed=seed,
                    scenario_name=self.scenario.name,
                )
            controller = RunController(
                self,
                count=count,
                seed=seed,
                n_jobs=n_jobs,
                policy=retry,
                faults=faults,
                checkpoint=checkpoint,
                transport=transport,
            )
            ensemble = controller.run(resume=resume)
            if cache_dir is not None:
                from repro.io.ensemble_cache import save_ensemble_cache

                with obs.span("ensemble.cache_store"):
                    save_ensemble_cache(ensemble, cache_dir, key)
                checkpoint.discard()
            return ensemble

    def cache_key(self, count: int, seed: int) -> str:
        """Content hash identifying this generator's output for (count, seed)."""
        from repro.io.ensemble_cache import ensemble_cache_key

        return ensemble_cache_key(
            scenario=self.scenario,
            surge_params=self.surge_params,
            extension_params=self.extension_params,
            mesh_spacing_km=self.mesh_spacing_km,
            count=count,
            seed=seed,
            geo_key=self._geo_key,
        )


