"""Storm tracks: the time history of a hurricane's center and intensity.

A track is a sequence of points (time, center, central pressure, radius of
maximum winds).  The case study uses synthetic straight-line tracks passing
through a landfall point -- the same role the emergency-planner track plays
in the paper's ADCIRC runs -- with per-realization perturbations applied by
:mod:`repro.hazards.hurricane.ensemble`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HazardError
from repro.geo.coords import GeoPoint, destination_point, haversine_km, initial_bearing_deg

AMBIENT_PRESSURE_MB = 1013.0

# Saffir-Simpson scale lower bounds on 1-minute sustained wind (m/s).
_SAFFIR_SIMPSON_BOUNDS = [(5, 70.0), (4, 58.0), (3, 50.0), (2, 43.0), (1, 33.0)]


def saffir_simpson_category(max_wind_ms: float) -> int:
    """Saffir-Simpson category (0 = below hurricane strength)."""
    for category, bound in _SAFFIR_SIMPSON_BOUNDS:
        if max_wind_ms >= bound:
            return category
    return 0


@dataclass(frozen=True)
class TrackPoint:
    """The storm state at one instant."""

    time_h: float
    center: GeoPoint
    central_pressure_mb: float
    rmw_km: float

    def __post_init__(self) -> None:
        if not 850.0 <= self.central_pressure_mb < AMBIENT_PRESSURE_MB:
            raise HazardError(
                f"central pressure {self.central_pressure_mb} mb is not a valid "
                f"hurricane pressure (must be in [850, {AMBIENT_PRESSURE_MB}))"
            )
        if self.rmw_km <= 0.0:
            raise HazardError("radius of maximum winds must be positive")

    @property
    def pressure_deficit_mb(self) -> float:
        return AMBIENT_PRESSURE_MB - self.central_pressure_mb


@dataclass(frozen=True)
class StormTrack:
    """A hurricane track as an ordered sequence of :class:`TrackPoint`.

    Points must be strictly increasing in time.  State between points is
    linearly interpolated.
    """

    name: str
    points: tuple[TrackPoint, ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise HazardError(f"track {self.name!r} needs at least 2 points")
        times = [p.time_h for p in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise HazardError(f"track {self.name!r} times must be strictly increasing")

    @property
    def start_time_h(self) -> float:
        return self.points[0].time_h

    @property
    def end_time_h(self) -> float:
        return self.points[-1].time_h

    def _bracket(self, time_h: float) -> tuple[TrackPoint, TrackPoint, float]:
        if not self.start_time_h <= time_h <= self.end_time_h:
            raise HazardError(
                f"time {time_h} h outside track interval "
                f"[{self.start_time_h}, {self.end_time_h}]"
            )
        for a, b in zip(self.points, self.points[1:]):
            if a.time_h <= time_h <= b.time_h:
                frac = (time_h - a.time_h) / (b.time_h - a.time_h)
                return a, b, frac
        raise HazardError(f"time {time_h} h not bracketed")  # pragma: no cover

    def state_at(self, time_h: float) -> TrackPoint:
        """Linearly interpolated storm state at ``time_h``."""
        a, b, frac = self._bracket(time_h)
        lat = a.center.lat + frac * (b.center.lat - a.center.lat)
        lon = a.center.lon + frac * (b.center.lon - a.center.lon)
        return TrackPoint(
            time_h=time_h,
            center=GeoPoint(lat, lon),
            central_pressure_mb=(
                a.central_pressure_mb + frac * (b.central_pressure_mb - a.central_pressure_mb)
            ),
            rmw_km=a.rmw_km + frac * (b.rmw_km - a.rmw_km),
        )

    def heading_deg_at(self, time_h: float) -> float:
        """Direction of storm motion (compass bearing) at ``time_h``."""
        a, b, _ = self._bracket(time_h)
        return initial_bearing_deg(a.center, b.center)

    def forward_speed_kmh_at(self, time_h: float) -> float:
        """Translation speed of the storm center at ``time_h``."""
        a, b, _ = self._bracket(time_h)
        return haversine_km(a.center, b.center) / (b.time_h - a.time_h)

    def times(self, step_h: float) -> list[float]:
        """Sample times covering the track at the given step."""
        if step_h <= 0.0:
            raise HazardError("time step must be positive")
        out = []
        t = self.start_time_h
        while t < self.end_time_h:
            out.append(t)
            t += step_h
        out.append(self.end_time_h)
        return out


def synthesize_linear_track(
    name: str,
    landfall: GeoPoint,
    heading_deg: float,
    forward_speed_kmh: float,
    central_pressure_mb: float,
    rmw_km: float,
    lead_hours: float = 18.0,
    trail_hours: float = 12.0,
) -> StormTrack:
    """A constant-speed, constant-intensity straight-line track.

    The storm moves along ``heading_deg`` and its center passes through
    ``landfall`` at time 0; the track spans ``[-lead_hours, +trail_hours]``.
    """
    if forward_speed_kmh <= 0.0:
        raise HazardError("forward speed must be positive")
    if lead_hours <= 0.0 or trail_hours <= 0.0:
        raise HazardError("lead and trail durations must be positive")
    start = destination_point(
        landfall, (heading_deg + 180.0) % 360.0, forward_speed_kmh * lead_hours
    )
    end = destination_point(landfall, heading_deg, forward_speed_kmh * trail_hours)
    points = (
        TrackPoint(-lead_hours, start, central_pressure_mb, rmw_km),
        TrackPoint(0.0, landfall, central_pressure_mb, rmw_km),
        TrackPoint(trail_hours, end, central_pressure_mb, rmw_km),
    )
    return StormTrack(name, points)


def estimate_max_gradient_wind_ms(pressure_deficit_mb: float, holland_b: float = 1.4) -> float:
    """Holland (1980) maximum gradient wind for a pressure deficit.

    ``V_max = sqrt(B * dP / (rho * e))`` with air density 1.15 kg/m^3.
    """
    if pressure_deficit_mb <= 0.0:
        raise HazardError("pressure deficit must be positive")
    deficit_pa = pressure_deficit_mb * 100.0
    return math.sqrt(holland_b * deficit_pa / (1.15 * math.e))
