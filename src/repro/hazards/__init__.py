"""Natural-hazard substrate: hurricanes, earthquakes, floods, fragility."""

from repro.hazards.base import Hazard, HazardEnsemble, HazardRealization
from repro.hazards.correlation import (
    CorrelationReport,
    analyze_failure_correlation,
    failure_matrix,
    phi_coefficient,
)
from repro.hazards.earthquake import (
    EarthquakeEnsemble,
    EarthquakeGenerator,
    EarthquakeRealization,
    EarthquakeScenarioSpec,
    seismic_fragility,
    standard_oahu_fault,
)
from repro.hazards.flood import (
    FloodEnsemble,
    FloodGenerator,
    FloodRealization,
    RiverineFloodScenarioSpec,
    flood_fragility,
    standard_oahu_flood,
)
from repro.hazards.fragility import (
    PAPER_FAILURE_THRESHOLD_M,
    FragilityModel,
    LogisticFragility,
    ThresholdFragility,
)

__all__ = [
    "Hazard",
    "HazardEnsemble",
    "HazardRealization",
    "CorrelationReport",
    "analyze_failure_correlation",
    "failure_matrix",
    "phi_coefficient",
    "EarthquakeEnsemble",
    "EarthquakeGenerator",
    "EarthquakeRealization",
    "EarthquakeScenarioSpec",
    "seismic_fragility",
    "standard_oahu_fault",
    "FloodEnsemble",
    "FloodGenerator",
    "FloodRealization",
    "RiverineFloodScenarioSpec",
    "flood_fragility",
    "standard_oahu_flood",
    "PAPER_FAILURE_THRESHOLD_M",
    "FragilityModel",
    "ThresholdFragility",
    "LogisticFragility",
]
