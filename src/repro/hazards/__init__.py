"""Natural-hazard substrate: hurricanes, earthquakes, asset fragility."""

from repro.hazards.base import HazardEnsemble, HazardRealization
from repro.hazards.correlation import (
    CorrelationReport,
    analyze_failure_correlation,
    failure_matrix,
    phi_coefficient,
)
from repro.hazards.earthquake import (
    EarthquakeEnsemble,
    EarthquakeGenerator,
    EarthquakeRealization,
    EarthquakeScenarioSpec,
    seismic_fragility,
    standard_oahu_fault,
)
from repro.hazards.fragility import (
    PAPER_FAILURE_THRESHOLD_M,
    FragilityModel,
    LogisticFragility,
    ThresholdFragility,
)

__all__ = [
    "HazardEnsemble",
    "HazardRealization",
    "CorrelationReport",
    "analyze_failure_correlation",
    "failure_matrix",
    "phi_coefficient",
    "EarthquakeEnsemble",
    "EarthquakeGenerator",
    "EarthquakeRealization",
    "EarthquakeScenarioSpec",
    "seismic_fragility",
    "standard_oahu_fault",
    "PAPER_FAILURE_THRESHOLD_M",
    "FragilityModel",
    "ThresholdFragility",
    "LogisticFragility",
]
