"""Asset fragility: when does inundation take an asset out of service?

The paper assumes an asset fails when peak inundation exceeds 0.5 m (2 ft),
the typical switch height in power plants and substations.  That threshold
rule is the default here; a probabilistic depth-damage curve is provided as
an extension for sensitivity studies.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import HazardError

PAPER_FAILURE_THRESHOLD_M = 0.5


class FragilityModel(abc.ABC):
    """Maps inundation depth at an asset to a failure outcome.

    Stochastic models follow the **RNG-draw contract** (see
    ``docs/architecture.md``): one :meth:`failed_assets` call consumes
    exactly one ``rng.random(len(depths_m))`` vector draw, with asset
    ``i`` (in mapping order) compared against draw ``i``.  Because the
    per-realization draw count is a fixed function of the asset set, the
    batched executor can replay the exact same generator stream with a
    single ``rng.random((n_realizations, n_assets))`` matrix draw and
    stay bitwise-identical to the scalar loop.
    """

    #: True when :meth:`failed_assets` is a pure function of the depths --
    #: no rng draws ever -- so callers may compute it once per realization
    #: and reuse the result (see ``CompoundThreatAnalysis.run_matrix``).
    deterministic: bool = False

    #: True when the model honors the RNG-draw contract above, i.e.
    #: :meth:`failed_assets` draws exactly ``rng.random(len(depths_m))``
    #: and :meth:`sample_failure_matrix` consumes the matching matrix
    #: draw.  A subclass that overrides :meth:`failed_assets` with its
    #: own rng consumption pattern must set this False so the batched
    #: executor declines it instead of silently diverging.
    batch_sampling: bool = True

    @abc.abstractmethod
    def failure_probability(self, depth_m: float) -> float:
        """Probability the asset fails at the given inundation depth."""

    def fails(self, depth_m: float, rng: np.random.Generator | None = None) -> bool:
        """Sample (or decide deterministically) whether the asset fails."""
        p = self.failure_probability(depth_m)
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        if rng is None:
            raise HazardError(
                "probabilistic fragility model requires an rng to sample outcomes"
            )
        return bool(rng.random() < p)

    def failed_assets(
        self,
        depths_m: Mapping[str, float],
        rng: np.random.Generator | None = None,
    ) -> frozenset[str]:
        """The set of asset names that fail under this model.

        Deterministic models never touch the rng.  Stochastic models
        with an rng consume exactly one ``rng.random(len(depths_m))``
        vector draw -- asset ``i`` in mapping order against draw ``i``,
        whatever its probability -- so the draw count per realization is
        fixed and the batched executor can replay the stream (the
        RNG-draw contract).  Without an rng the per-asset path applies,
        raising :class:`HazardError` on the first probability strictly
        between 0 and 1.
        """
        if self.deterministic or rng is None:
            return frozenset(
                name for name, depth in depths_m.items() if self.fails(depth, rng)
            )
        draws = rng.random(len(depths_m))
        return frozenset(
            name
            for (name, depth), u in zip(depths_m.items(), draws)
            if u < self.failure_probability(depth)
        )

    def probability_matrix(self, depths: np.ndarray) -> np.ndarray:
        """Failure probabilities over a (realization x asset) depth grid.

        Routes every cell through the scalar :meth:`failure_probability`
        (deduplicated over the distinct depths, which repeat heavily --
        most assets stay dry), so the grid carries the exact same
        float64 values the scalar path compares against.  A numpy
        re-derivation could differ by 1 ulp and flip a ``u < p``
        comparison, breaking the bitwise-identity bar.
        """
        unique, inverse = np.unique(depths, return_inverse=True)
        probs = np.fromiter(
            (self.failure_probability(float(d)) for d in unique), float, unique.size
        )
        # return_inverse shape varies across numpy releases; normalize.
        return probs[np.asarray(inverse).reshape(-1)].reshape(depths.shape)

    def sample_failure_matrix(
        self,
        depths: np.ndarray,
        draws: np.ndarray,
        probabilities: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized stochastic sampling under the RNG-draw contract.

        ``draws`` is the ``(n_realizations, n_assets)`` uniform block
        the executor drew for this stage; row ``r`` holds the same
        stream values the scalar loop's realization-``r``
        ``rng.random(n_assets)`` draw would, so ``draws < p`` is
        bitwise-identical to looping :meth:`failed_assets`.
        ``probabilities`` optionally passes a precomputed (memoized)
        :meth:`probability_matrix` for the same depth grid.
        """
        if draws.shape != depths.shape:
            raise HazardError(
                f"draw block shape {draws.shape} does not match "
                f"depth grid shape {depths.shape}"
            )
        p = (
            probabilities
            if probabilities is not None
            else self.probability_matrix(depths)
        )
        return draws < p

    def failure_matrix(self, depths: np.ndarray) -> np.ndarray:
        """Vectorized failure mask over a (realization x asset) depth grid.

        The batched executor's fragility pass: one boolean per cell,
        bitwise-identical to calling :meth:`fails` on each depth.  Only
        defined for deterministic outcomes -- a probability strictly
        between 0 and 1 would need an rng draw per cell, so it raises
        :class:`HazardError` exactly as :meth:`fails` does without an
        rng (and the batched path falls back to per-realization
        execution for models whose ``deterministic`` flag is False).
        """
        flat = depths.reshape(-1)
        probs = np.fromiter(
            (self.failure_probability(float(d)) for d in flat), float, flat.size
        )
        if bool(np.any((probs > 0.0) & (probs < 1.0))):
            raise HazardError(
                "probabilistic fragility model requires an rng to sample outcomes"
            )
        return (probs >= 1.0).reshape(depths.shape)


@dataclass(frozen=True)
class ThresholdFragility(FragilityModel):
    """The paper's rule: fail iff depth exceeds the switch height."""

    deterministic = True

    threshold_m: float = PAPER_FAILURE_THRESHOLD_M

    def __post_init__(self) -> None:
        if self.threshold_m < 0.0:
            raise HazardError("fragility threshold cannot be negative")

    def failure_probability(self, depth_m: float) -> float:
        return 1.0 if depth_m > self.threshold_m else 0.0

    def failure_matrix(self, depths: np.ndarray) -> np.ndarray:
        """One fused comparison; same bits as the per-depth rule."""
        return depths > self.threshold_m


@dataclass(frozen=True)
class LogisticFragility(FragilityModel):
    """Smooth depth-damage curve: P(fail) = sigmoid(steepness*(d - midpoint)).

    An extension used by the threshold-sensitivity ablation; with high
    steepness it converges to :class:`ThresholdFragility`.
    """

    midpoint_m: float = PAPER_FAILURE_THRESHOLD_M
    steepness_per_m: float = 8.0

    def __post_init__(self) -> None:
        if self.midpoint_m < 0.0:
            raise HazardError("fragility midpoint cannot be negative")
        if self.steepness_per_m <= 0.0:
            raise HazardError("fragility steepness must be positive")

    def failure_probability(self, depth_m: float) -> float:
        x = self.steepness_per_m * (depth_m - self.midpoint_m)
        # Stable logistic.
        if x >= 0:
            return 1.0 / (1.0 + math.exp(-x))
        z = math.exp(x)
        return z / (1.0 + z)
