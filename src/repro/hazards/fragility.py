"""Asset fragility: when does inundation take an asset out of service?

The paper assumes an asset fails when peak inundation exceeds 0.5 m (2 ft),
the typical switch height in power plants and substations.  That threshold
rule is the default here; a probabilistic depth-damage curve is provided as
an extension for sensitivity studies.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import HazardError

PAPER_FAILURE_THRESHOLD_M = 0.5


class FragilityModel(abc.ABC):
    """Maps inundation depth at an asset to a failure outcome."""

    #: True when :meth:`failed_assets` is a pure function of the depths --
    #: no rng draws ever -- so callers may compute it once per realization
    #: and reuse the result (see ``CompoundThreatAnalysis.run_matrix``).
    deterministic: bool = False

    @abc.abstractmethod
    def failure_probability(self, depth_m: float) -> float:
        """Probability the asset fails at the given inundation depth."""

    def fails(self, depth_m: float, rng: np.random.Generator | None = None) -> bool:
        """Sample (or decide deterministically) whether the asset fails."""
        p = self.failure_probability(depth_m)
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        if rng is None:
            raise HazardError(
                "probabilistic fragility model requires an rng to sample outcomes"
            )
        return bool(rng.random() < p)

    def failed_assets(
        self,
        depths_m: Mapping[str, float],
        rng: np.random.Generator | None = None,
    ) -> frozenset[str]:
        """The set of asset names that fail under this model."""
        return frozenset(
            name for name, depth in depths_m.items() if self.fails(depth, rng)
        )

    def failure_matrix(self, depths: np.ndarray) -> np.ndarray:
        """Vectorized failure mask over a (realization x asset) depth grid.

        The batched executor's fragility pass: one boolean per cell,
        bitwise-identical to calling :meth:`fails` on each depth.  Only
        defined for deterministic outcomes -- a probability strictly
        between 0 and 1 would need an rng draw per cell, so it raises
        :class:`HazardError` exactly as :meth:`fails` does without an
        rng (and the batched path falls back to per-realization
        execution for models whose ``deterministic`` flag is False).
        """
        flat = depths.reshape(-1)
        probs = np.fromiter(
            (self.failure_probability(float(d)) for d in flat), float, flat.size
        )
        if bool(np.any((probs > 0.0) & (probs < 1.0))):
            raise HazardError(
                "probabilistic fragility model requires an rng to sample outcomes"
            )
        return (probs >= 1.0).reshape(depths.shape)


@dataclass(frozen=True)
class ThresholdFragility(FragilityModel):
    """The paper's rule: fail iff depth exceeds the switch height."""

    deterministic = True

    threshold_m: float = PAPER_FAILURE_THRESHOLD_M

    def __post_init__(self) -> None:
        if self.threshold_m < 0.0:
            raise HazardError("fragility threshold cannot be negative")

    def failure_probability(self, depth_m: float) -> float:
        return 1.0 if depth_m > self.threshold_m else 0.0

    def failure_matrix(self, depths: np.ndarray) -> np.ndarray:
        """One fused comparison; same bits as the per-depth rule."""
        return depths > self.threshold_m


@dataclass(frozen=True)
class LogisticFragility(FragilityModel):
    """Smooth depth-damage curve: P(fail) = sigmoid(steepness*(d - midpoint)).

    An extension used by the threshold-sensitivity ablation; with high
    steepness it converges to :class:`ThresholdFragility`.
    """

    midpoint_m: float = PAPER_FAILURE_THRESHOLD_M
    steepness_per_m: float = 8.0

    def __post_init__(self) -> None:
        if self.midpoint_m < 0.0:
            raise HazardError("fragility midpoint cannot be negative")
        if self.steepness_per_m <= 0.0:
            raise HazardError("fragility steepness must be positive")

    def failure_probability(self, depth_m: float) -> float:
        x = self.steepness_per_m * (depth_m - self.midpoint_m)
        # Stable logistic.
        if x >= 0:
            return 1.0 / (1.0 + math.exp(-x))
        z = math.exp(x)
        return z / (1.0 + z)
