"""Failure-correlation analysis of hazard ensembles.

The paper's central data insight is a *correlation*: Honolulu and Waiau
flood in the same realizations, so a backup at Waiau is worthless.  This
module makes that analysis first-class: pairwise failure correlation
(phi coefficient) across an ensemble, and a screening utility that flags
site pairs too correlated to host primary+backup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.hazards.base import HazardEnsemble
from repro.hazards.fragility import FragilityModel, ThresholdFragility


def failure_matrix(
    ensemble: HazardEnsemble,
    asset_names: Sequence[str],
    fragility: FragilityModel | None = None,
) -> np.ndarray:
    """(n_realizations, n_assets) boolean failure indicators."""
    if not asset_names:
        raise AnalysisError("no assets to analyze")
    model = fragility or ThresholdFragility()
    rows = []
    for realization in ensemble:
        failed = realization.failed_assets(model)
        rows.append([name in failed for name in asset_names])
    return np.array(rows, dtype=bool)


def phi_coefficient(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation of two boolean series (the phi coefficient).

    NaN when either series is constant (correlation undefined) -- e.g.
    an asset that never fails.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise AnalysisError("series must be 1-d and the same length")
    if a.std() == 0.0 or b.std() == 0.0:
        return math.nan
    return float(np.corrcoef(a, b)[0, 1])


@dataclass(frozen=True)
class CorrelationReport:
    """Pairwise failure correlations over an ensemble."""

    asset_names: tuple[str, ...]
    marginals: dict[str, float]
    matrix: np.ndarray  # (n, n) phi coefficients, NaN where undefined

    def correlation(self, a: str, b: str) -> float:
        try:
            i = self.asset_names.index(a)
            j = self.asset_names.index(b)
        except ValueError as exc:
            raise AnalysisError(f"unknown asset in ({a!r}, {b!r})") from exc
        return float(self.matrix[i, j])

    def correlated_pairs(self, threshold: float = 0.8) -> list[tuple[str, str, float]]:
        """Distinct pairs whose failure correlation reaches ``threshold``.

        These are exactly the pairs that must NOT share primary/backup
        duty: when one fails the other likely fails too.
        """
        if not 0.0 < threshold <= 1.0:
            raise AnalysisError("threshold must be in (0, 1]")
        out = []
        n = len(self.asset_names)
        for i in range(n):
            for j in range(i + 1, n):
                phi = self.matrix[i, j]
                if not math.isnan(phi) and phi >= threshold:
                    out.append(
                        (self.asset_names[i], self.asset_names[j], float(phi))
                    )
        return sorted(out, key=lambda t: -t[2])

    def independent_partners(
        self, anchor: str, threshold: float = 0.2
    ) -> list[str]:
        """Assets whose failures are (nearly) independent of ``anchor``.

        Candidates for hosting the backup of a control center at
        ``anchor``; assets that never fail at all also qualify.
        """
        i = self.asset_names.index(anchor) if anchor in self.asset_names else -1
        if i < 0:
            raise AnalysisError(f"unknown asset {anchor!r}")
        out = []
        for j, name in enumerate(self.asset_names):
            if name == anchor:
                continue
            phi = self.matrix[i, j]
            never_fails = self.marginals[name] == 0.0
            if never_fails or (not math.isnan(phi) and abs(phi) <= threshold):
                out.append(name)
        return out


def analyze_failure_correlation(
    ensemble: HazardEnsemble,
    asset_names: Sequence[str],
    fragility: FragilityModel | None = None,
) -> CorrelationReport:
    """Build the pairwise failure-correlation report for an ensemble."""
    indicators = failure_matrix(ensemble, asset_names, fragility)
    n = len(asset_names)
    matrix = np.full((n, n), math.nan)
    for i in range(n):
        matrix[i, i] = 1.0 if indicators[:, i].std() > 0 else math.nan
        for j in range(i + 1, n):
            phi = phi_coefficient(indicators[:, i], indicators[:, j])
            matrix[i, j] = phi
            matrix[j, i] = phi
    marginals = {
        name: float(indicators[:, k].mean()) for k, name in enumerate(asset_names)
    }
    return CorrelationReport(
        asset_names=tuple(asset_names), marginals=marginals, matrix=matrix
    )
