"""Earthquake hazard: a second disaster type for the compound threat model.

The paper notes its threat model "is a generic model that can apply to
any type of natural disaster" while analyzing only hurricanes.  This
module exercises that claim: a seismic hazard with a fundamentally
different spatial correlation structure (radial attenuation from an
epicenter, rather than coastal surge), producing realizations that plug
into the same analysis pipeline.

Ground motion uses a standard simplified attenuation form::

    ln PGA = a + b * M - c * ln(R_hypo + d)

with soft-soil amplification for low-lying (sedimentary) sites.  The
"intensity measure" handed to the fragility model is PGA in g -- the
threshold fragility then reads "fail if PGA exceeds the anchorage
capacity", the standard substation fragility abstraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import HazardError
from repro.geo.catalog import AssetCatalog
from repro.geo.coords import GeoPoint, haversine_km
from repro.hazards.fragility import FragilityModel, ThresholdFragility

#: Default anchorage capacity: unanchored substation equipment starts
#: failing around 0.3 g.
DEFAULT_CAPACITY_G = 0.30

#: Sites on low-lying coastal sediment shake harder than rock sites.
SOFT_SOIL_AMPLIFICATION = 1.4
SOFT_SOIL_ELEVATION_M = 6.0


def seismic_fragility(capacity_g: float = DEFAULT_CAPACITY_G) -> ThresholdFragility:
    """The fragility model matching this hazard's PGA intensity measure."""
    return ThresholdFragility(capacity_g)


@dataclass(frozen=True)
class AttenuationParams:
    """Coefficients of the simplified ground-motion prediction equation."""

    a: float = -2.6
    b: float = 1.05
    c: float = 1.7
    d_km: float = 10.0

    def pga_g(self, magnitude: float, hypocentral_km: np.ndarray) -> np.ndarray:
        r = np.maximum(np.asarray(hypocentral_km, dtype=float), 0.0)
        ln_pga = self.a + self.b * magnitude - self.c * np.log(r + self.d_km)
        return np.exp(ln_pga)


@dataclass(frozen=True)
class EarthquakeScenarioSpec:
    """A fault source: epicenters along a trace, Gutenberg-Richter sizes."""

    name: str
    fault_start: GeoPoint
    fault_end: GeoPoint
    depth_km: float = 10.0
    magnitude_min: float = 6.0
    magnitude_max: float = 7.8
    gutenberg_richter_b: float = 1.0
    attenuation: AttenuationParams = AttenuationParams()

    def __post_init__(self) -> None:
        if self.depth_km <= 0:
            raise HazardError("focal depth must be positive")
        if not self.magnitude_min < self.magnitude_max:
            raise HazardError("magnitude range must be increasing")
        if self.gutenberg_richter_b <= 0:
            raise HazardError("Gutenberg-Richter b must be positive")

    def sample_magnitude(self, rng: np.random.Generator) -> float:
        """Truncated Gutenberg-Richter: P(M > m) ~ 10^(-b m)."""
        beta = self.gutenberg_richter_b * math.log(10.0)
        lo, hi = self.magnitude_min, self.magnitude_max
        u = rng.random()
        # Inverse CDF of the truncated exponential on [lo, hi].
        z = math.exp(-beta * lo) - u * (math.exp(-beta * lo) - math.exp(-beta * hi))
        return -math.log(z) / beta

    def sample_epicenter(self, rng: np.random.Generator) -> GeoPoint:
        frac = rng.random()
        lat = self.fault_start.lat + frac * (self.fault_end.lat - self.fault_start.lat)
        lon = self.fault_start.lon + frac * (self.fault_end.lon - self.fault_start.lon)
        return GeoPoint(lat, lon)


@dataclass(frozen=True)
class EarthquakeRealization:
    """One sampled earthquake: source parameters plus per-asset PGA."""

    index: int
    magnitude: float
    epicenter: GeoPoint
    pga_g: dict[str, float]

    def pga_at(self, asset_name: str) -> float:
        try:
            return self.pga_g[asset_name]
        except KeyError:
            raise HazardError(f"no ground motion for asset {asset_name!r}") from None

    def failed_assets(
        self,
        fragility: FragilityModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> frozenset[str]:
        model = fragility or seismic_fragility()
        return model.failed_assets(self.pga_g, rng)


@dataclass(frozen=True)
class EarthquakeEnsemble:
    """An ordered collection of earthquake realizations."""

    scenario_name: str
    realizations: tuple[EarthquakeRealization, ...]
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.realizations:
            raise HazardError("ensemble must contain at least one realization")

    def __len__(self) -> int:
        return len(self.realizations)

    def __iter__(self) -> Iterator[EarthquakeRealization]:
        return iter(self.realizations)

    def __getitem__(self, index: int) -> EarthquakeRealization:
        return self.realizations[index]

    @property
    def asset_names(self) -> list[str]:
        return list(self.realizations[0].pga_g)

    def _intensity_data(self) -> np.ndarray:
        """The cached (R x A) peak-ground-acceleration matrix."""
        try:
            return self._intensity_cache  # type: ignore[attr-defined]
        except AttributeError:
            pass
        names = self.asset_names
        matrix = np.array([[r.pga_g[n] for n in names] for r in self.realizations])
        object.__setattr__(self, "_intensity_cache", matrix)
        return matrix

    def depth_matrix(self) -> np.ndarray:
        """(n_realizations, n_assets) PGA values.

        Named for interface parity with the hurricane ensemble: the
        batched executor treats any per-asset intensity grid uniformly
        (the seismic fragility thresholds PGA exactly as the flood
        fragility thresholds depth).
        """
        return self._intensity_data().copy()

    def depth_view(self) -> np.ndarray:
        """The cached intensity matrix without the defensive copy."""
        return self._intensity_data()

    def failure_probability(
        self, asset_name: str, fragility: FragilityModel | None = None
    ) -> float:
        model = fragility or seismic_fragility()
        hits = sum(
            1
            for r in self.realizations
            if model.failure_probability(r.pga_at(asset_name)) >= 1.0
        )
        return hits / len(self.realizations)


class EarthquakeGenerator:
    """Samples earthquake realizations over an asset catalog.

    Implements the :class:`repro.hazards.base.Hazard` protocol:
    generation is a pure function of ``(count, seed)`` and ``cache_key``
    covers the fault scenario plus the asset catalog it shakes.
    """

    deterministic = True

    def __init__(self, catalog: AssetCatalog, scenario: EarthquakeScenarioSpec) -> None:
        if len(catalog) == 0:
            raise HazardError("catalog has no assets")
        self.catalog = catalog
        self.scenario = scenario
        self._names = catalog.names
        self._locations = [catalog.get(n).location for n in self._names]
        self._amplification = np.array(
            [
                SOFT_SOIL_AMPLIFICATION
                if catalog.get(n).elevation_m < SOFT_SOIL_ELEVATION_M
                else 1.0
                for n in self._names
            ]
        )

    def realize(self, index: int, rng: np.random.Generator) -> EarthquakeRealization:
        magnitude = self.scenario.sample_magnitude(rng)
        epicenter = self.scenario.sample_epicenter(rng)
        surface_km = np.array(
            [haversine_km(epicenter, loc) for loc in self._locations]
        )
        hypocentral_km = np.hypot(surface_km, self.scenario.depth_km)
        pga = self.scenario.attenuation.pga_g(magnitude, hypocentral_km)
        pga = pga * self._amplification
        return EarthquakeRealization(
            index=index,
            magnitude=magnitude,
            epicenter=epicenter,
            pga_g=dict(zip(self._names, pga.tolist())),
        )

    def generate(
        self, count: int = 1000, seed: int = 0, **delivery: object
    ) -> EarthquakeEnsemble:
        """Sample ``count`` realizations (pure in ``count``/``seed``).

        Generation is cheap (no mesh solve), so the :class:`Hazard`
        delivery keywords (``n_jobs``, ``cache_dir``, ``resume``, ...)
        are accepted and ignored.
        """
        if count < 1:
            raise HazardError("ensemble size must be at least 1")
        rng = np.random.default_rng(seed)
        realizations = tuple(self.realize(i, rng) for i in range(count))
        return EarthquakeEnsemble(
            scenario_name=self.scenario.name, realizations=realizations, seed=seed
        )

    def cache_key(self, count: int, seed: int) -> str:
        """Content hash over the fault scenario, catalog, count, and seed."""
        import hashlib
        import json
        from dataclasses import asdict

        from repro.geo.digest import geo_content_key

        payload = {
            "format": 1,
            "kind": "repro.earthquake",
            "scenario": asdict(self.scenario),
            "geo": geo_content_key(self.catalog),
            "count": count,
            "seed": seed,
        }
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def standard_oahu_fault() -> EarthquakeScenarioSpec:
    """A synthetic offshore fault south of Oahu (diffuse seismic zone)."""
    return EarthquakeScenarioSpec(
        name="oahu-south-fault",
        fault_start=GeoPoint(21.05, -158.30),
        fault_end=GeoPoint(21.10, -157.60),
        depth_km=12.0,
    )
