"""One shared home for every public deprecation in the package.

Each deprecated surface registers a :class:`Deprecation` record here --
the *single* source of truth for what is deprecated, what replaces it,
and the release that removes it.  Warning/message text is rendered from
the record, so every public deprecation is guaranteed to name its
removal release (``tests/integration/test_deprecations.py`` asserts
this), and grepping for ``removal_release`` before cutting a major
release yields the full runway in one place.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

__all__ = [
    "Deprecation",
    "register_deprecation",
    "get_deprecation",
    "public_deprecations",
    "deprecation_message",
    "warn_deprecated",
]


@dataclass(frozen=True)
class Deprecation:
    """One deprecated public surface and its removal contract."""

    #: The deprecated surface as users see it (import path or CLI verb).
    name: str
    #: What to use instead (import path, call, or CLI verb).
    replacement: str
    #: The release that deletes the surface, e.g. ``"2.0.0"``.
    removal_release: str

    def message(self, detail: str | None = None) -> str:
        subject = f"{self.name}.{detail}" if detail else self.name
        return (
            f"{subject} is deprecated and will be removed in "
            f"{self.removal_release}; use {self.replacement} instead"
        )


_REGISTRY: dict[str, Deprecation] = {}


def register_deprecation(
    name: str, replacement: str, removal_release: str
) -> Deprecation:
    """Record a public deprecation; returns the record for reuse."""
    record = Deprecation(name, replacement, removal_release)
    _REGISTRY[name] = record
    return record


def get_deprecation(name: str) -> Deprecation:
    return _REGISTRY[name]


def public_deprecations() -> tuple[Deprecation, ...]:
    """Every registered deprecation (the 2.0.0 runway)."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def deprecation_message(name: str, detail: str | None = None) -> str:
    """The canonical user-facing message for a registered deprecation."""
    return _REGISTRY[name].message(detail)


def warn_deprecated(name: str, detail: str | None = None, *, stacklevel: int = 2) -> None:
    """Emit the canonical :class:`DeprecationWarning` for ``name``."""
    warnings.warn(
        deprecation_message(name, detail), DeprecationWarning, stacklevel=stacklevel + 1
    )


# ----------------------------------------------------------------------
# The 2.0.0 runway.  Every entry here must have a warning emitter at the
# deprecated surface and a removal_release it actually honors.
# ----------------------------------------------------------------------
register_deprecation(
    "repro.geo.oahu",
    'repro.geo or repro.scenarios.get_region("oahu")',
    removal_release="2.0.0",
)
register_deprecation(
    "compound-threats analyze",
    "compound-threats run",
    removal_release="2.0.0",
)
register_deprecation(
    "repro.core.batch.attack_batch_fallback",
    "a native attack_batch on the attacker (repro.core.attacker) or "
    "CyberAttackStage's automatic per-pattern replay",
    removal_release="2.0.0",
)
