"""The on-disk ensemble cache: exact round-trips, corruption, staleness."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.hazards.hurricane.standard import standard_oahu_generator
from repro.io.ensemble_cache import (
    ensemble_cache_key,
    load_ensemble_cache,
    save_ensemble_cache,
)

COUNT = 24
SEED = 4242


@pytest.fixture(scope="module")
def generator():
    return standard_oahu_generator()


@pytest.fixture(scope="module")
def ensemble(generator):
    return generator.generate(count=COUNT, seed=SEED)


class TestRoundTrip:
    def test_loaded_ensemble_is_bit_identical(self, generator, ensemble, tmp_path):
        key = generator.cache_key(COUNT, SEED)
        save_ensemble_cache(ensemble, tmp_path, key)
        loaded = load_ensemble_cache(tmp_path, key)
        assert loaded is not None
        assert loaded.scenario_name == ensemble.scenario_name
        assert loaded.seed == ensemble.seed
        assert loaded.asset_names == ensemble.asset_names
        assert np.array_equal(loaded.depth_matrix(), ensemble.depth_matrix())
        for a, b in zip(ensemble, loaded):
            assert a.index == b.index
            assert a.params == b.params

    def test_generate_with_cache_dir_hits_on_second_call(self, generator, tmp_path):
        first = generator.generate(count=COUNT, seed=SEED, cache_dir=str(tmp_path))
        assert list(tmp_path.iterdir())  # entry written
        second = generator.generate(count=COUNT, seed=SEED, cache_dir=str(tmp_path))
        assert np.array_equal(first.depth_matrix(), second.depth_matrix())

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert load_ensemble_cache(tmp_path, "0" * 32) is None

    def test_unwritable_cache_dir_raises_cleanly(self, ensemble, tmp_path):
        blocking_file = tmp_path / "not-a-directory"
        blocking_file.write_text("")
        with pytest.raises(SerializationError):
            save_ensemble_cache(ensemble, blocking_file, "0" * 32)


class TestInvalidation:
    def test_key_changes_with_every_input(self, generator):
        base = generator.cache_key(COUNT, SEED)
        assert generator.cache_key(COUNT + 1, SEED) != base
        assert generator.cache_key(COUNT, SEED + 1) != base
        other_key = ensemble_cache_key(
            scenario=generator.scenario,
            surge_params=generator.surge_params,
            extension_params=generator.extension_params,
            mesh_spacing_km=generator.mesh_spacing_km + 0.5,
            count=COUNT,
            seed=SEED,
        )
        assert other_key != base

    def test_corrupted_npz_is_regenerated(self, generator, ensemble, tmp_path):
        key = generator.cache_key(COUNT, SEED)
        npz_path = save_ensemble_cache(ensemble, tmp_path, key)
        npz_path.write_bytes(b"not a zip archive")
        assert load_ensemble_cache(tmp_path, key) is None
        # generate() regenerates and overwrites the bad entry in place.
        regenerated = generator.generate(count=COUNT, seed=SEED, cache_dir=str(tmp_path))
        assert np.array_equal(regenerated.depth_matrix(), ensemble.depth_matrix())
        assert load_ensemble_cache(tmp_path, key) is not None

    def test_mangled_sidecar_is_a_miss(self, generator, ensemble, tmp_path):
        key = generator.cache_key(COUNT, SEED)
        npz_path = save_ensemble_cache(ensemble, tmp_path, key)
        meta_path = npz_path.with_suffix(".json")
        meta_path.write_text("{ this is not json")
        assert load_ensemble_cache(tmp_path, key) is None

    def test_stale_format_version_is_a_miss(self, generator, ensemble, tmp_path):
        key = generator.cache_key(COUNT, SEED)
        npz_path = save_ensemble_cache(ensemble, tmp_path, key)
        meta_path = npz_path.with_suffix(".json")
        meta = json.loads(meta_path.read_text())
        meta["format"] = -1
        meta_path.write_text(json.dumps(meta))
        assert load_ensemble_cache(tmp_path, key) is None

    def test_shape_mismatch_is_a_miss(self, generator, ensemble, tmp_path):
        key = generator.cache_key(COUNT, SEED)
        npz_path = save_ensemble_cache(ensemble, tmp_path, key)
        meta_path = npz_path.with_suffix(".json")
        meta = json.loads(meta_path.read_text())
        meta["count"] = COUNT + 1
        meta_path.write_text(json.dumps(meta))
        assert load_ensemble_cache(tmp_path, key) is None
