"""Tests for the timeline and earthquake CLI subcommands."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def small_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-ext") / "small.csv"
    assert main(["ensemble", "--count", "40", "--seed", "2", "--output", str(path)]) == 0
    return str(path)


class TestTimelineCommand:
    def test_default_run(self, small_csv, capsys):
        code = main(["timeline", "--ensemble", small_csv, "--realizations", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Downtime per compound event" in out
        for config in ("2", "2-2", "6", "6-6", "6+6+6"):
            assert f"\n{config} " in out or out.startswith(f"{config} ")

    def test_scenario_selection(self, small_csv, capsys):
        code = main(
            [
                "timeline",
                "--ensemble", small_csv,
                "--scenario", "hurricane",
                "--realizations", "40",
            ]
        )
        assert code == 0
        assert "hurricane," in capsys.readouterr().out

    def test_unknown_scenario_is_an_error(self, small_csv, capsys):
        code = main(
            ["timeline", "--ensemble", small_csv, "--scenario", "volcano"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestEarthquakeCommand:
    def test_default_run(self, capsys):
        code = main(["earthquake", "--count", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Earthquake compound-threat analysis" in out
        assert "Scenario: hurricane+intrusion+isolation" in out

    def test_capacity_changes_results(self, capsys):
        main(["earthquake", "--count", "150", "--capacity-g", "0.2"])
        fragile = capsys.readouterr().out
        main(["earthquake", "--count", "150", "--capacity-g", "0.8"])
        robust = capsys.readouterr().out
        assert fragile != robust


class TestCorrelationCommand:
    def test_default_run(self, small_csv, capsys):
        code = main(["correlation", "--ensemble", small_csv])
        assert code == 0
        out = capsys.readouterr().out
        assert "failure marginals" in out
        assert "Independent backup candidates" in out
        assert "Kahe Control Center" in out

    def test_pairs_reported_at_low_threshold(self, small_csv, capsys):
        code = main(
            ["correlation", "--ensemble", small_csv, "--threshold", "0.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phi=" in out or "No pairs" in out

    def test_custom_anchor(self, small_csv, capsys):
        code = main(
            [
                "correlation",
                "--ensemble", small_csv,
                "--anchor", "Waiau Control Center",
            ]
        )
        assert code == 0
        assert "Waiau Control Center" in capsys.readouterr().out
