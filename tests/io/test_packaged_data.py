"""The packaged data artifacts stay in sync with the code."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.geo import build_oahu_catalog
from repro.hazards.hurricane.standard import standard_oahu_scenario
from repro.io.scenario_io import load_scenario_json
from repro.io.topology_io import load_catalog_json

DATA_DIR = Path(__file__).resolve().parents[2] / "data"


class TestPackagedData:
    def test_catalog_file_matches_code(self):
        packaged = load_catalog_json(DATA_DIR / "oahu_catalog.json")
        built = build_oahu_catalog()
        assert packaged.names == built.names
        for name in built.names:
            a, b = packaged.get(name), built.get(name)
            assert a.role == b.role
            assert a.elevation_m == pytest.approx(b.elevation_m)
            assert a.location.lat == pytest.approx(b.location.lat)
            assert a.location.lon == pytest.approx(b.location.lon)

    def test_scenario_file_matches_code(self):
        packaged = load_scenario_json(DATA_DIR / "oahu_cat2_scenario.json")
        assert packaged == standard_oahu_scenario()

    def test_scenario_file_drives_the_cli(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io.realization_io import load_ensemble_csv

        out = tmp_path / "ens.csv"
        code = main(
            [
                "ensemble",
                "--count", "30",
                "--seed", "20220522",
                "--scenario-file", str(DATA_DIR / "oahu_cat2_scenario.json"),
                "--output", str(out),
            ]
        )
        assert code == 0
        assert load_ensemble_csv(out).scenario_name == "oahu-cat2"
