"""Tests for scenario-spec serialization and the CLI hook."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import SerializationError
from repro.hazards.hurricane.standard import (
    oahu_scenario_for_category,
    standard_oahu_scenario,
)
from repro.io.scenario_io import (
    load_scenario_json,
    save_scenario_json,
    scenario_from_dict,
    scenario_to_dict,
)


class TestRoundTrip:
    def test_standard_scenario_roundtrips(self, tmp_path):
        scenario = standard_oahu_scenario()
        path = tmp_path / "scenario.json"
        save_scenario_json(scenario, path)
        loaded = load_scenario_json(path)
        assert loaded == scenario

    def test_category_scenarios_roundtrip(self, tmp_path):
        for category in (1, 3, 4):
            scenario = oahu_scenario_for_category(category)
            path = tmp_path / f"cat{category}.json"
            save_scenario_json(scenario, path)
            assert load_scenario_json(path) == scenario

    def test_dict_roundtrip(self):
        scenario = standard_oahu_scenario()
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_scenario_json(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(SerializationError):
            load_scenario_json(path)

    def test_missing_fields(self):
        with pytest.raises(SerializationError):
            scenario_from_dict({"name": "x"})

    def test_invalid_physics_rejected(self, tmp_path):
        data = scenario_to_dict(standard_oahu_scenario())
        data["base_landfall"]["lat"] = 120.0  # off the planet
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(SerializationError):
            load_scenario_json(path)


class TestCliIntegration:
    def test_ensemble_from_scenario_file(self, tmp_path, capsys):
        scenario_path = tmp_path / "cat4.json"
        save_scenario_json(oahu_scenario_for_category(4), scenario_path)
        out_csv = tmp_path / "cat4.csv"
        code = main(
            [
                "ensemble",
                "--count", "60",
                "--seed", "1",
                "--scenario-file", str(scenario_path),
                "--output", str(out_csv),
            ]
        )
        assert code == 0
        assert out_csv.exists()
        # Category 4 floods Honolulu far more often than Category 2.
        from repro.io.realization_io import load_ensemble_csv

        ensemble = load_ensemble_csv(out_csv)
        assert ensemble.scenario_name == "oahu-cat4"
        assert ensemble.flood_probability("Honolulu Control Center") > 0.2

    def test_bad_scenario_file_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        code = main(["ensemble", "--count", "5", "--scenario-file", str(path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err
