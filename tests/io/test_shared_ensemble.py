"""Shared-memory / mmap ensemble transport: fidelity and lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.hazards.fragility import ThresholdFragility
from repro.io.ensemble_cache import (
    save_ensemble_cache,
    shared_depth_descriptor,
    shared_depths_path,
)
from repro.io.shared_ensemble import (
    ArrayBackedEnsemble,
    attach_shared_ensemble,
    publish_shared_ensemble,
    shareable_ensemble,
)


def _array_ensemble(n=8, n_assets=3, seed=11):
    rng = np.random.default_rng(seed)
    names = [f"asset-{i}" for i in range(n_assets)]
    return ArrayBackedEnsemble(
        scenario_name="transport-test",
        depths=rng.uniform(0.0, 1.2, size=(n, n_assets)),
        asset_names=names,
        seed=seed,
    )


# ----------------------------------------------------------------------
# ArrayBackedEnsemble as a HazardEnsemble
# ----------------------------------------------------------------------
def test_array_ensemble_realizations_match_matrix():
    ensemble = _array_ensemble()
    depths = ensemble.depth_view()
    assert len(ensemble) == depths.shape[0]
    for i, realization in enumerate(ensemble):
        assert realization.index == i
        row = [realization.depths_m[n] for n in ensemble.asset_names]
        assert row == depths[i].tolist()
    # failed_assets agrees with a direct threshold on the matrix.
    model = ThresholdFragility(threshold_m=0.5)
    for i, realization in enumerate(ensemble):
        expected = {
            name
            for j, name in enumerate(ensemble.asset_names)
            if depths[i, j] > 0.5
        }
        assert realization.failed_assets(model) == frozenset(expected)


def test_array_ensemble_shape_mismatch_rejected():
    with pytest.raises(SerializationError, match="shape"):
        ArrayBackedEnsemble(
            scenario_name="bad",
            depths=np.zeros((4, 3)),
            asset_names=["a", "b"],
        )


def test_shareable_probe():
    assert shareable_ensemble(_array_ensemble())
    assert not shareable_ensemble(object())
    assert not shareable_ensemble([1, 2, 3])


# ----------------------------------------------------------------------
# Shared-memory roundtrip and lifecycle
# ----------------------------------------------------------------------
def test_shm_publish_attach_roundtrip_bit_identical():
    source = _array_ensemble()
    handle = publish_shared_ensemble(source)
    assert handle is not None
    try:
        attached = attach_shared_ensemble(handle.descriptor)
        assert attached.scenario_name == source.scenario_name
        assert attached.seed == source.seed
        assert attached.asset_names == source.asset_names
        assert np.array_equal(attached.depth_view(), source.depth_view())
        # The attached grid is the same bytes, not a pickled copy.
        assert attached.depth_view().base is not None
    finally:
        handle.close()
        handle.unlink()


def test_unlink_is_idempotent_and_destroys_the_segment():
    handle = publish_shared_ensemble(_array_ensemble())
    descriptor = handle.descriptor
    handle.close()
    handle.unlink()
    handle.unlink()  # second unlink is a no-op, not an error
    with pytest.raises(FileNotFoundError):
        attach_shared_ensemble(descriptor)


def test_publish_returns_none_for_unshareable():
    assert publish_shared_ensemble(object()) is None


def test_attach_rejects_unknown_kind():
    with pytest.raises(SerializationError, match="descriptor kind"):
        attach_shared_ensemble(
            {"kind": "carrier-pigeon", "shape": [1, 1], "asset_names": ["a"]}
        )


# ----------------------------------------------------------------------
# The mmap (cache sidecar) path
# ----------------------------------------------------------------------
def test_cache_sidecar_descriptor_roundtrip(tmp_path, small_ensemble):
    ensemble = small_ensemble
    save_ensemble_cache(ensemble, tmp_path, "k1")
    assert shared_depths_path(tmp_path, "k1").exists()
    descriptor = shared_depth_descriptor(tmp_path, "k1")
    assert descriptor is not None and descriptor["kind"] == "mmap"
    attached = attach_shared_ensemble(descriptor)
    assert attached.asset_names == ensemble.asset_names
    assert np.array_equal(attached.depth_view(), ensemble.depth_matrix())
    # Realization-level fidelity: same failed sets as the original.
    model = ThresholdFragility()
    for ours, theirs in zip(attached, ensemble):
        assert ours.failed_assets(model) == theirs.failed_assets(model)


def test_missing_sidecar_is_none(tmp_path, small_ensemble):
    save_ensemble_cache(small_ensemble, tmp_path, "k2")
    shared_depths_path(tmp_path, "k2").unlink()
    assert shared_depth_descriptor(tmp_path, "k2") is None


def test_damaged_sidecar_is_none(tmp_path, small_ensemble):
    save_ensemble_cache(small_ensemble, tmp_path, "k3")
    shared_depths_path(tmp_path, "k3").write_bytes(b"not an npy file")
    assert shared_depth_descriptor(tmp_path, "k3") is None
