"""Crash-consistent writers: tmp-sibling + rename, quarantine semantics."""

from __future__ import annotations

import json

import pytest

from repro.io.atomic import (
    CorruptArtifactWarning,
    atomic_path,
    atomic_write_bytes,
    atomic_write_text,
    quarantine_file,
)


class TestAtomicWrites:
    def test_text_round_trip(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_text(target, '{"ok": true}')
        assert json.loads(target.read_text()) == {"ok": True}

    def test_bytes_round_trip(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        target = tmp_path / "doc.txt"
        atomic_write_text(target, "old content")
        with pytest.raises(RuntimeError):
            with atomic_path(target) as tmp:
                tmp.write_text("new partial content")
                raise RuntimeError("writer died mid-write")
        assert target.read_text() == "old content"

    def test_failed_first_write_leaves_nothing(self, tmp_path):
        target = tmp_path / "doc.txt"
        with pytest.raises(RuntimeError):
            with atomic_path(target) as tmp:
                tmp.write_text("partial")
                raise RuntimeError("boom")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_no_tmp_sibling_survives_success(self, tmp_path):
        target = tmp_path / "doc.txt"
        atomic_write_text(target, "content")
        assert [p.name for p in tmp_path.iterdir()] == ["doc.txt"]


class TestQuarantine:
    def test_quarantine_moves_and_warns(self, tmp_path):
        victim = tmp_path / "entry.npz"
        victim.write_bytes(b"torn")
        with pytest.warns(CorruptArtifactWarning, match="entry.npz"):
            moved = quarantine_file(victim, "checksum mismatch")
        assert moved == tmp_path / "entry.npz.corrupt"
        assert not victim.exists()
        assert moved.read_bytes() == b"torn"

    def test_quarantine_of_missing_file_is_a_noop(self, tmp_path):
        assert quarantine_file(tmp_path / "gone", "whatever") is None


class TestWritersAreAtomic:
    """Every repro.io writer must go through the tmp-sibling protocol."""

    def test_results_writer(self, tmp_path, monkeypatch):
        from repro.core.outcomes import OperationalProfile, ScenarioMatrix
        from repro.core.states import OperationalState
        from repro.io.results_io import save_matrix_json

        matrix = ScenarioMatrix(placement_label="test")
        matrix.add(
            "s", "a", OperationalProfile({OperationalState.GREEN: 1})
        )
        target = tmp_path / "results.json"
        save_matrix_json(matrix, target)
        assert target.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_scenario_writer(self, tmp_path):
        from repro.hazards.hurricane.standard import standard_oahu_scenario
        from repro.io.scenario_io import load_scenario_json, save_scenario_json

        target = tmp_path / "scenario.json"
        save_scenario_json(standard_oahu_scenario(), target)
        assert load_scenario_json(target) == standard_oahu_scenario()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_catalog_writer(self, tmp_path):
        from repro.geo import build_oahu_catalog
        from repro.io.topology_io import load_catalog_json, save_catalog_json

        target = tmp_path / "catalog.json"
        save_catalog_json(build_oahu_catalog(), target)
        assert load_catalog_json(target) is not None
        assert list(tmp_path.glob("*.tmp")) == []

    def test_ensemble_csv_writer(self, tmp_path):
        from repro.hazards.hurricane.standard import standard_oahu_generator
        from repro.io.realization_io import load_ensemble_csv, save_ensemble_csv

        ensemble = standard_oahu_generator().generate(count=4, seed=1)
        target = tmp_path / "ensemble.csv"
        save_ensemble_csv(ensemble, target)
        assert len(load_ensemble_csv(target)) == 4
        assert list(tmp_path.glob("*.tmp")) == []
