"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.io.realization_io import load_ensemble_csv


class TestEnsembleCommand:
    def test_generates_csv(self, tmp_path, capsys):
        out = tmp_path / "ens.csv"
        code = main(["ensemble", "--count", "10", "--seed", "3", "--output", str(out)])
        assert code == 0
        assert out.exists()
        assert len(load_ensemble_csv(out)) == 10
        assert "flood probability" in capsys.readouterr().out


class TestAnalyzeCommand:
    @pytest.fixture(scope="class")
    def small_csv(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "small.csv"
        main(["ensemble", "--count", "40", "--seed", "2", "--output", str(path)])
        return str(path)

    def test_tables(self, small_csv, capsys):
        code = main(["analyze", "--ensemble", small_csv])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario: hurricane" in out
        assert "6+6+6" in out

    def test_csv_output(self, small_csv, capsys):
        code = main(["analyze", "--ensemble", small_csv, "--csv"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("placement,scenario,architecture")

    def test_filtered_configs_and_scenarios(self, small_csv, capsys):
        code = main(
            [
                "analyze",
                "--ensemble", small_csv,
                "--config", "6+6+6",
                "--scenario", "hurricane+isolation",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "6+6+6" in out
        assert "Scenario: hurricane+isolation" in out
        assert "Scenario: hurricane\n" not in out

    def test_unknown_config_is_an_error(self, small_csv, capsys):
        code = main(["analyze", "--ensemble", small_csv, "--config", "9"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_kahe_placement(self, small_csv, capsys):
        code = main(["analyze", "--ensemble", small_csv, "--placement", "kahe"])
        assert code == 0
        assert "Kahe Control Center" in capsys.readouterr().out

    def test_figures(self, small_csv, capsys):
        code = main(["figures", "--ensemble", small_csv])
        assert code == 0
        out = capsys.readouterr().out
        for figure in ("Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11"):
            assert figure in out
        assert "legend:" in out

    def test_siting(self, small_csv, capsys):
        code = main(["siting", "--ensemble", small_csv])
        assert code == 0
        out = capsys.readouterr().out
        assert "Backup ranking" in out
        assert "Kahe Control Center" in out


class TestSimulationCommands:
    def test_bft_demo(self, capsys):
        code = main(
            ["bft-demo", "--requests", "10", "--flood-site", "control-center-1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "safety preserved:     True" in out

    def test_grid_impact(self, capsys):
        code = main(["grid-impact"])
        assert code == 0
        out = capsys.readouterr().out
        assert "N-1 contingency" in out
        assert "average" in out
