"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io.realization_io import load_ensemble_csv


class TestEnsembleCommand:
    def test_generates_csv(self, tmp_path, capsys):
        out = tmp_path / "ens.csv"
        code = main(["ensemble", "--count", "10", "--seed", "3", "--output", str(out)])
        assert code == 0
        assert out.exists()
        assert len(load_ensemble_csv(out)) == 10
        assert "flood probability" in capsys.readouterr().out


class TestAnalyzeCommand:
    @pytest.fixture(scope="class")
    def small_csv(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "small.csv"
        main(["ensemble", "--count", "40", "--seed", "2", "--output", str(path)])
        return str(path)

    def test_tables(self, small_csv, capsys):
        code = main(["analyze", "--ensemble", small_csv])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario: hurricane" in out
        assert "6+6+6" in out

    def test_csv_output(self, small_csv, capsys):
        code = main(["analyze", "--ensemble", small_csv, "--csv"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("placement,scenario,architecture")

    def test_filtered_configs_and_scenarios(self, small_csv, capsys):
        code = main(
            [
                "analyze",
                "--ensemble", small_csv,
                "--config", "6+6+6",
                "--scenario", "hurricane+isolation",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "6+6+6" in out
        assert "Scenario: hurricane+isolation" in out
        assert "Scenario: hurricane\n" not in out

    def test_unknown_config_is_an_error(self, small_csv, capsys):
        code = main(["analyze", "--ensemble", small_csv, "--config", "9"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_kahe_placement(self, small_csv, capsys):
        code = main(["analyze", "--ensemble", small_csv, "--placement", "kahe"])
        assert code == 0
        assert "Kahe Control Center" in capsys.readouterr().out

    def test_figures(self, small_csv, capsys):
        code = main(["figures", "--ensemble", small_csv])
        assert code == 0
        out = capsys.readouterr().out
        for figure in ("Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11"):
            assert figure in out
        assert "legend:" in out

    def test_siting(self, small_csv, capsys):
        code = main(["siting", "--ensemble", small_csv])
        assert code == 0
        out = capsys.readouterr().out
        assert "Backup ranking" in out
        assert "Kahe Control Center" in out


class TestRunCommand:
    @pytest.fixture(scope="class")
    def small_csv(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-run") / "small.csv"
        main(["ensemble", "--count", "40", "--seed", "2", "--output", str(path)])
        return str(path)

    def test_tables(self, small_csv, capsys):
        code = main(["run", "--ensemble", small_csv])
        assert code == 0
        captured = capsys.readouterr()
        assert "Scenario: hurricane" in captured.out
        assert "6+6+6" in captured.out
        assert "deprecated" not in captured.err

    def test_csv_output(self, small_csv, capsys):
        code = main(["run", "--ensemble", small_csv, "--csv"])
        assert code == 0
        assert capsys.readouterr().out.startswith("placement,scenario,architecture")

    def test_matches_analyze_alias_exactly(self, small_csv, capsys):
        main(["run", "--ensemble", small_csv, "--csv"])
        via_run = capsys.readouterr().out
        main(["analyze", "--ensemble", small_csv, "--csv"])
        via_alias = capsys.readouterr().out
        assert via_run == via_alias

    def test_analyze_prints_deprecation_note(self, small_csv, capsys):
        code = main(["analyze", "--ensemble", small_csv, "--csv"])
        assert code == 0
        err = capsys.readouterr().err
        assert "deprecated alias" in err
        assert "run_study" in err

    def test_telemetry_outputs(self, small_csv, tmp_path, capsys):
        manifest_path = tmp_path / "run_manifest.json"
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "run",
                "--ensemble", small_csv,
                "--manifest-out", str(manifest_path),
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
                "--run-report",
            ]
        )
        assert code == 0
        manifest = json.loads(manifest_path.read_text())
        assert manifest["kind"] == "repro.run_manifest"
        assert "pipeline.stage.fragility" in manifest["stages"]
        assert manifest["chain"]["name"] == "paper"
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["pipeline.realizations"] > 0
        trace = json.loads(trace_path.read_text())
        assert trace["spans"][0]["name"] == "run_study"
        assert "Run report" in capsys.readouterr().out

    def test_failed_manifest_write_warns_but_run_succeeds(
        self, small_csv, tmp_path, capsys
    ):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory is needed")
        with pytest.warns(Warning, match="run manifest"):
            code = main(
                [
                    "run",
                    "--ensemble", small_csv,
                    "--manifest-out", str(blocker / "run_manifest.json"),
                ]
            )
        assert code == 0  # the analysis still completed and printed
        assert "Scenario: hurricane" in capsys.readouterr().out

    def test_no_observability_still_analyzes(self, small_csv, capsys):
        code = main(["run", "--ensemble", small_csv, "--no-observability"])
        assert code == 0
        assert "Scenario: hurricane" in capsys.readouterr().out

    def test_unknown_config_is_an_error(self, small_csv, capsys):
        code = main(["run", "--ensemble", small_csv, "--config", "9"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestChainFlag:
    @pytest.fixture(scope="class")
    def small_csv(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("chain") / "small.csv"
        main(["ensemble", "--count", "40", "--seed", "2", "--output", str(path)])
        return str(path)

    def test_run_with_grid_coupled_chain(self, small_csv, tmp_path, capsys):
        manifest_path = tmp_path / "run_manifest.json"
        code = main(
            [
                "run",
                "--ensemble", small_csv,
                "--chain", "grid-coupled",
                "--manifest-out", str(manifest_path),
            ]
        )
        assert code == 0
        assert "Scenario: hurricane" in capsys.readouterr().out
        manifest = json.loads(manifest_path.read_text())
        assert manifest["chain"]["name"] == "grid-coupled"
        for name in ("fragility", "interdependency", "cyberattack"):
            assert f"pipeline.stage.{name}" in manifest["stages"]

    def test_unknown_chain_is_an_error(self, small_csv, capsys):
        code = main(["run", "--ensemble", small_csv, "--chain", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "grid-coupled" in err  # the message lists registered names

    def test_sweep_chain_axis(self, small_csv, capsys):
        code = main(
            [
                "sweep",
                "--ensemble", small_csv,
                "--config", "2",
                "--scenario", "hurricane+isolation",
                "--chain", "paper",
                "--chain", "grid-coupled",
                "--compare", "chain",
            ]
        )
        assert code == 0
        out, err = capsys.readouterr()
        assert "2 studies, 1 ensemble group(s)" in err
        assert "chain" in out


class TestFacadeBackedSubcommands:
    """timeline / earthquake / grid-impact share run's config plumbing."""

    @pytest.fixture(scope="class")
    def small_csv(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("facade") / "small.csv"
        main(["ensemble", "--count", "40", "--seed", "2", "--output", str(path)])
        return str(path)

    def test_timeline_reports_downtime(self, small_csv, tmp_path, capsys):
        manifest_path = tmp_path / "timeline_manifest.json"
        code = main(
            [
                "timeline",
                "--ensemble", small_csv,
                "--realizations", "40",
                "--config", "2",
                "--manifest-out", str(manifest_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Downtime per compound event" in out
        # Satellite: the shared telemetry flags now work here too.
        manifest = json.loads(manifest_path.read_text())
        assert "timeline.rollout" in manifest["stages"]
        assert manifest["chain"] is None  # the rollout has no chain

    def test_earthquake_runs_the_earthquake_chain(self, tmp_path, capsys):
        manifest_path = tmp_path / "eq_manifest.json"
        code = main(
            [
                "earthquake",
                "--realizations", "50",
                "--config", "2",
                "--scenario", "hurricane",
                "--manifest-out", str(manifest_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Earthquake compound-threat analysis" in out
        manifest = json.loads(manifest_path.read_text())
        assert manifest["chain"]["name"] == "earthquake"


class TestTopLevelErrorHandler:
    """Any ReproError exits 2 with one `error:` line, never a traceback."""

    def test_configuration_error_is_one_line_exit_2(self, capsys):
        code = main(["run", "--realizations", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1  # exactly one line, no traceback
        assert "n_realizations" in err

    def test_serialization_error_is_one_line_exit_2(self, tmp_path, capsys):
        garbage = tmp_path / "not_an_ensemble.csv"
        garbage.write_text("this,is,not\nan,ensemble,file\n")
        code = main(["run", "--ensemble", str(garbage)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1
        assert "ensemble" in err

    def test_missing_ensemble_file_is_one_line_exit_2(self, tmp_path, capsys):
        code = main(["run", "--ensemble", str(tmp_path / "nope.csv")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no such ensemble file" in err


class TestSweepRobustnessFlags:
    @pytest.fixture(scope="class")
    def small_csv(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-sweep") / "small.csv"
        main(["ensemble", "--count", "40", "--seed", "2", "--output", str(path)])
        return str(path)

    def test_exhausted_budget_without_keep_going_exits_2(
        self, small_csv, capsys
    ):
        code = main(
            [
                "sweep",
                "--ensemble", small_csv,
                "--config", "2",
                "--scenario", "hurricane",
                "--scenario", "hurricane+isolation",
                "--sweep-budget", "1e-9",
            ]
        )
        assert code == 2  # strict mode: SweepBudgetError -> ReproError exit
        assert "budget" in capsys.readouterr().err

    def test_keep_going_lists_failures_and_exits_1(self, small_csv, capsys):
        code = main(
            [
                "sweep",
                "--ensemble", small_csv,
                "--config", "2",
                "--scenario", "hurricane",
                "--scenario", "hurricane+isolation",
                "--sweep-budget", "1e-9",
                "--keep-going",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "SweepBudgetError" in err


class TestSimulationCommands:
    def test_bft_demo(self, capsys):
        code = main(
            ["bft-demo", "--requests", "10", "--flood-site", "control-center-1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "safety preserved:     True" in out

    def test_grid_impact(self, capsys):
        code = main(["grid-impact", "--realizations", "30", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "N-1 contingency" in out
        assert "average" in out
        # The coupled ensemble study rides along after the N-1 table.
        assert "Scenario: hurricane" in out

    def test_grid_impact_no_study(self, capsys):
        code = main(["grid-impact", "--no-study"])
        assert code == 0
        out = capsys.readouterr().out
        assert "N-1 contingency" in out
        assert "Scenario:" not in out
