"""Round-trip tests for ensemble, catalog, and results serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.outcomes import OperationalProfile, ScenarioMatrix
from repro.core.states import OperationalState as S
from repro.errors import SerializationError
from repro.geo import HONOLULU_CC, build_oahu_catalog
from repro.hazards.hurricane.standard import standard_oahu_ensemble
from repro.io.realization_io import load_ensemble_csv, save_ensemble_csv
from repro.io.results_io import load_matrix_json, save_matrix_json
from repro.io.topology_io import load_catalog_json, save_catalog_json


class TestEnsembleRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        ensemble = standard_oahu_ensemble(count=25, seed=3)
        path = tmp_path / "ens.csv"
        save_ensemble_csv(ensemble, path)
        loaded = load_ensemble_csv(path)
        assert len(loaded) == 25
        assert loaded.scenario_name == ensemble.scenario_name
        assert loaded.seed == ensemble.seed
        assert loaded.asset_names == ensemble.asset_names
        assert np.allclose(
            loaded.depth_matrix(), ensemble.depth_matrix(), atol=1e-6
        )
        for a, b in zip(loaded, ensemble):
            assert a.params.central_pressure_mb == pytest.approx(
                b.params.central_pressure_mb, abs=1e-3
            )
            assert a.params.landfall.lat == pytest.approx(
                b.params.landfall.lat, abs=1e-5
            )

    def test_flood_statistics_survive_roundtrip(self, tmp_path):
        ensemble = standard_oahu_ensemble(count=50, seed=5)
        path = tmp_path / "ens.csv"
        save_ensemble_csv(ensemble, path)
        loaded = load_ensemble_csv(path)
        assert loaded.flood_probability(HONOLULU_CC) == pytest.approx(
            ensemble.flood_probability(HONOLULU_CC)
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_ensemble_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SerializationError):
            load_ensemble_csv(path)

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(SerializationError):
            load_ensemble_csv(path)

    def test_malformed_row(self, tmp_path):
        ensemble = standard_oahu_ensemble(count=3, seed=1)
        path = tmp_path / "ens.csv"
        save_ensemble_csv(ensemble, path)
        lines = path.read_text().splitlines()
        lines.append("not,a,valid,row")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SerializationError):
            load_ensemble_csv(path)


class TestCatalogRoundTrip:
    def test_roundtrip(self, tmp_path):
        catalog = build_oahu_catalog()
        path = tmp_path / "catalog.json"
        save_catalog_json(catalog, path)
        loaded = load_catalog_json(path)
        assert loaded.names == catalog.names
        hon = loaded.get(HONOLULU_CC)
        assert hon.elevation_m == catalog.get(HONOLULU_CC).elevation_m
        assert hon.role == catalog.get(HONOLULU_CC).role
        assert hon.location.lat == pytest.approx(
            catalog.get(HONOLULU_CC).location.lat
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_catalog_json(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_catalog_json(path)

    def test_malformed_entry(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"region": "X", "assets": [{"name": "a"}]}))
        with pytest.raises(SerializationError):
            load_catalog_json(path)

    def test_duplicate_assets_rejected(self, tmp_path):
        entry = {
            "name": "A", "role": "substation",
            "lat": 21.0, "lon": -158.0, "elevation_m": 3.0,
        }
        path = tmp_path / "dup.json"
        path.write_text(json.dumps({"region": "X", "assets": [entry, entry]}))
        with pytest.raises(SerializationError):
            load_catalog_json(path)


class TestMatrixRoundTrip:
    def make_matrix(self) -> ScenarioMatrix:
        matrix = ScenarioMatrix("label")
        matrix.add(
            "hurricane", "2",
            OperationalProfile({S.GREEN: 90, S.RED: 10}),
        )
        matrix.add(
            "hurricane+intrusion", "2",
            OperationalProfile({S.GRAY: 90, S.RED: 10}),
        )
        return matrix

    def test_roundtrip(self, tmp_path):
        matrix = self.make_matrix()
        path = tmp_path / "results.json"
        save_matrix_json(matrix, path)
        loaded = load_matrix_json(path)
        assert loaded.placement_label == "label"
        assert loaded.get("hurricane", "2").almost_equal(matrix.get("hurricane", "2"))
        assert loaded.scenario_names == matrix.scenario_names

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_matrix_json(tmp_path / "nope.json")

    def test_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"placement": "x", "entries": [{"oops": 1}]}))
        with pytest.raises(SerializationError):
            load_matrix_json(path)
