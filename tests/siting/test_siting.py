"""Tests for siting objectives and the placement optimizer."""

from __future__ import annotations

import pytest

from repro.core.outcomes import OperationalProfile
from repro.core.pipeline import CompoundThreatAnalysis
from repro.core.states import OperationalState as S
from repro.core.threat import HURRICANE, HURRICANE_INTRUSION, PAPER_SCENARIOS
from repro.errors import AnalysisError, TopologyError
from repro.geo.catalog import AssetCatalog
from repro.geo import ALOHANAP, DRFORTRESS, HONOLULU_CC, KAHE_CC, WAIAU_CC
from repro.scada.architectures import CONFIG_6_6, CONFIG_6_6_6
from repro.siting.candidates import control_site_candidates
from repro.siting.objectives import (
    OPERATIONAL_OBJECTIVE,
    GREEN_OBJECTIVE,
    ROBUST_GREEN_OBJECTIVE,
    SitingObjective,
    prob_eventually_operational,
    prob_green,
    prob_safe,
)
from repro.siting.optimizer import PlacementOptimizer


def profile(green=0, orange=0, red=0, gray=0) -> OperationalProfile:
    return OperationalProfile(
        {S.GREEN: green, S.ORANGE: orange, S.RED: red, S.GRAY: gray}
    )


class TestObjectives:
    def test_prob_green(self):
        assert prob_green(profile(green=9, red=1)) == 0.9

    def test_prob_eventually_operational(self):
        assert prob_eventually_operational(
            profile(green=7, orange=2, red=1)
        ) == pytest.approx(0.9)

    def test_prob_safe(self):
        assert prob_safe(profile(green=5, gray=5)) == 0.5

    def test_mean_vs_min_aggregation(self):
        profiles = {"a": profile(green=10), "b": profile(green=5, red=5)}
        assert GREEN_OBJECTIVE.score(profiles) == pytest.approx(0.75)
        assert ROBUST_GREEN_OBJECTIVE.score(profiles) == pytest.approx(0.5)

    def test_bad_aggregate_rejected(self):
        with pytest.raises(AnalysisError):
            SitingObjective("x", prob_green, aggregate="max")

    def test_empty_profiles_rejected(self):
        with pytest.raises(AnalysisError):
            GREEN_OBJECTIVE.score({})


class TestCandidates:
    def test_default_candidates(self, oahu_catalog):
        names = control_site_candidates(oahu_catalog)
        assert HONOLULU_CC in names and DRFORTRESS in names
        assert "Kahe Power Plant" not in names

    def test_include_plants(self, oahu_catalog):
        names = control_site_candidates(oahu_catalog, include_plants=True)
        assert "Kahe Power Plant" in names

    def test_exclude(self, oahu_catalog):
        names = control_site_candidates(
            oahu_catalog, exclude=frozenset({HONOLULU_CC})
        )
        assert HONOLULU_CC not in names

    def test_empty_catalog_rejected(self):
        with pytest.raises(TopologyError):
            control_site_candidates(AssetCatalog("empty"))


class TestPlacementOptimizer:
    @pytest.fixture(scope="class")
    def analysis(self, standard_ensemble):
        return CompoundThreatAnalysis(standard_ensemble)

    def test_kahe_beats_waiau_as_backup(self, analysis):
        # The paper's Section VII finding, recovered by optimization.  For
        # "6-6" the gain is availability (red -> orange), so the objective
        # must credit the orange state: green probability alone is
        # identical for any backup location (Fig. 10's green bars match
        # Fig. 6's).
        optimizer = PlacementOptimizer(
            analysis, CONFIG_6_6, PAPER_SCENARIOS, OPERATIONAL_OBJECTIVE
        )
        ranked = optimizer.rank_backups(
            primary=HONOLULU_CC,
            candidates=[WAIAU_CC, KAHE_CC],
        )
        assert ranked[0].placement.backup == KAHE_CC
        assert ranked[0].score > ranked[-1].score

    def test_green_objective_cannot_distinguish_6_6_backups(self, analysis):
        optimizer = PlacementOptimizer(
            analysis, CONFIG_6_6, PAPER_SCENARIOS, GREEN_OBJECTIVE
        )
        ranked = optimizer.rank_backups(
            primary=HONOLULU_CC, candidates=[WAIAU_CC, KAHE_CC]
        )
        assert ranked[0].score == pytest.approx(ranked[1].score)

    def test_kahe_green_gain_shows_for_666(self, analysis):
        optimizer = PlacementOptimizer(
            analysis, CONFIG_6_6_6, PAPER_SCENARIOS, GREEN_OBJECTIVE
        )
        ranked = optimizer.rank_backups(
            primary=HONOLULU_CC,
            candidates=[WAIAU_CC, KAHE_CC],
            data_centers=(DRFORTRESS,),
        )
        assert ranked[0].placement.backup == KAHE_CC
        assert ranked[0].score > ranked[-1].score

    def test_kahe_is_in_the_top_backup_group(self, analysis):
        optimizer = PlacementOptimizer(
            analysis, CONFIG_6_6, PAPER_SCENARIOS, OPERATIONAL_OBJECTIVE
        )
        ranked = optimizer.rank_backups(
            primary=HONOLULU_CC,
            candidates=[WAIAU_CC, KAHE_CC, ALOHANAP, DRFORTRESS],
        )
        # Any never-flooding backup ties; Kahe must be in the top group.
        top_score = ranked[0].score
        top = {r.placement.backup for r in ranked if r.score == top_score}
        assert KAHE_CC in top
        assert WAIAU_CC not in top

    def test_scenarios_required(self, analysis):
        with pytest.raises(AnalysisError):
            PlacementOptimizer(analysis, CONFIG_6_6, [], GREEN_OBJECTIVE)

    def test_no_usable_candidates(self, analysis):
        optimizer = PlacementOptimizer(analysis, CONFIG_6_6, [HURRICANE])
        with pytest.raises(AnalysisError):
            optimizer.rank_backups(primary=HONOLULU_CC, candidates=[HONOLULU_CC])

    def test_best_full_placement_for_666(self, standard_ensemble):
        analysis = CompoundThreatAnalysis(standard_ensemble.subset(200))
        optimizer = PlacementOptimizer(
            analysis, CONFIG_6_6_6, [HURRICANE, HURRICANE_INTRUSION], GREEN_OBJECTIVE
        )
        best = optimizer.best_full_placement(
            [HONOLULU_CC, WAIAU_CC, KAHE_CC, DRFORTRESS]
        )
        # A placement avoiding the correlated Honolulu+Waiau pair achieves
        # 100% green: at most one of its three sites can ever flood.
        assert best.score == pytest.approx(1.0)
        placed = {best.placement.primary, best.placement.backup, *best.placement.data_centers}
        assert not {HONOLULU_CC, WAIAU_CC} <= placed

    def test_best_full_placement_needs_enough_candidates(self, analysis):
        optimizer = PlacementOptimizer(analysis, CONFIG_6_6_6, [HURRICANE])
        with pytest.raises(AnalysisError):
            optimizer.best_full_placement([HONOLULU_CC, WAIAU_CC])
