"""Tests for the cost-resilience Pareto analysis."""

from __future__ import annotations

import pytest

from repro.core.pipeline import CompoundThreatAnalysis
from repro.core.threat import PAPER_SCENARIOS
from repro.errors import AnalysisError
from repro.scada.architectures import PAPER_CONFIGURATIONS
from repro.scada.placement import PLACEMENT_KAHE, PLACEMENT_WAIAU
from repro.siting.objectives import OPERATIONAL_OBJECTIVE
from repro.siting.pareto import (
    DeploymentPoint,
    evaluate_deployments,
    pareto_frontier,
)


def point(cost: float, resilience: float, name: str = "x") -> DeploymentPoint:
    return DeploymentPoint(name, "somewhere", cost, resilience)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert point(100, 0.9).dominates(point(200, 0.8))

    def test_cheaper_same_resilience_dominates(self):
        assert point(100, 0.9).dominates(point(200, 0.9))

    def test_identical_points_do_not_dominate(self):
        assert not point(100, 0.9).dominates(point(100, 0.9))

    def test_tradeoff_points_incomparable(self):
        cheap_weak = point(100, 0.5)
        dear_strong = point(500, 0.95)
        assert not cheap_weak.dominates(dear_strong)
        assert not dear_strong.dominates(cheap_weak)


class TestFrontier:
    def test_dominated_points_removed(self):
        points = [
            point(100, 0.5, "cheap"),
            point(500, 0.95, "strong"),
            point(600, 0.9, "dominated"),  # dearer and weaker than strong
        ]
        frontier = pareto_frontier(points)
        assert [p.architecture_name for p in frontier] == ["cheap", "strong"]

    def test_sorted_by_cost(self):
        points = [point(500, 0.95, "b"), point(100, 0.5, "a")]
        assert [p.architecture_name for p in pareto_frontier(points)] == ["a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            pareto_frontier([])


class TestEndToEnd:
    def test_paper_configurations_frontier(self, standard_ensemble):
        analysis = CompoundThreatAnalysis(standard_ensemble.subset(300))
        candidates = [
            (arch, placement)
            for arch in PAPER_CONFIGURATIONS
            for placement in (PLACEMENT_WAIAU, PLACEMENT_KAHE)
        ]
        points = evaluate_deployments(
            analysis, candidates, PAPER_SCENARIOS, OPERATIONAL_OBJECTIVE
        )
        assert len(points) == 10
        frontier = pareto_frontier(points)
        names = {(p.architecture_name, p.placement_label) for p in frontier}
        # "2" is on the frontier (cheapest) and "6-6"@Kahe tops it: under
        # the green-or-orange objective "6+6+6" ties "6-6" and its extra
        # data-center cost dominates it off the frontier.
        assert any(arch == "2" for arch, _ in names)
        assert any(arch == "6-6" and "Kahe" in label for arch, label in names)
        assert not any(arch == "6+6+6" for arch, _ in names)
        # The Waiau-backed "2-2" is dominated: same cost as the Kahe
        # variant, strictly less resilient.
        assert not any(
            arch == "2-2" and "Waiau" in label for arch, label in names
        )

    def test_green_objective_puts_666_on_the_frontier(self, standard_ensemble):
        # Paying for "6+6+6" is justified exactly when *uninterrupted*
        # operation (green, no failover downtime) is the objective.
        from repro.siting.objectives import GREEN_OBJECTIVE

        analysis = CompoundThreatAnalysis(standard_ensemble.subset(300))
        candidates = [
            (arch, PLACEMENT_KAHE) for arch in PAPER_CONFIGURATIONS
        ]
        points = evaluate_deployments(
            analysis, candidates, PAPER_SCENARIOS, GREEN_OBJECTIVE
        )
        frontier = pareto_frontier(points)
        assert any(p.architecture_name == "6+6+6" for p in frontier)
        best = max(frontier, key=lambda p: p.resilience)
        assert best.architecture_name == "6+6+6"

    def test_validation(self, standard_ensemble):
        analysis = CompoundThreatAnalysis(standard_ensemble.subset(50))
        with pytest.raises(AnalysisError):
            evaluate_deployments(analysis, [], PAPER_SCENARIOS)
        with pytest.raises(AnalysisError):
            evaluate_deployments(
                analysis, [(PAPER_CONFIGURATIONS[0], PLACEMENT_WAIAU)], []
            )
