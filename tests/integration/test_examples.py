"""Smoke tests: every example script runs end to end.

Each example is executed in-process via runpy with a temp working
directory; assertions check the headline lines of the printed study so a
silent regression in an example is caught by CI, not by a reader.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys, standard_ensemble):
        out = run_example("quickstart.py", [], capsys)
        assert "hurricane realizations" in out
        assert "Scenario: hurricane+intrusion+isolation" in out

    def test_oahu_case_study(self, capsys, tmp_path, standard_ensemble):
        out = run_example("oahu_case_study.py", [str(tmp_path)], capsys)
        assert "Figure 6" in out and "Figure 11" in out
        assert (tmp_path / "oahu_ensemble.csv").exists()
        assert (tmp_path / "oahu_results_waiau.json").exists()
        for number in range(6, 12):
            assert (tmp_path / f"figure_{number:02d}.svg").exists()

    def test_site_placement_study(self, capsys, standard_ensemble):
        out = run_example("site_placement_study.py", [], capsys)
        assert "Backup ranking" in out
        assert "Kahe Control Center" in out
        assert "Note the reversal" in out

    def test_bft_replication_demo(self, capsys):
        out = run_example("bft_replication_demo.py", [], capsys)
        assert out.count("safety preserved: True") == 5

    def test_grid_impact_study(self, capsys, standard_ensemble):
        out = run_example("grid_impact_study.py", [], capsys)
        assert "with SCADA control" in out
        assert "Expected load served" in out

    def test_custom_region_study(self, capsys):
        out = run_example("custom_region_study.py", [], capsys)
        assert "Portolan island flood statistics" in out
        assert "The Oahu lesson generalizes" in out

    def test_realistic_attacker_study(self, capsys, standard_ensemble):
        out = run_example("realistic_attacker_study.py", [], capsys)
        assert "Isolation cost per control site" in out
        assert "Hardening" in out

    def test_multi_hazard_timeline_study(self, capsys, standard_ensemble):
        out = run_example("multi_hazard_timeline_study.py", [], capsys)
        assert "EARTHQUAKE (disaster only)" in out
        assert "Downtime per full compound event" in out
